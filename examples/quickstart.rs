//! Quickstart: detect thermal targets in a synthetic WTC-like scene on
//! the paper's fully heterogeneous 16-workstation network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use heterospec::cube::synth::{wtc_scene, WtcConfig};
use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::hetero::eval::target_table;
use heterospec::simnet::engine::Engine;
use heterospec::simnet::presets;

fn main() {
    // 1. A synthetic AVIRIS-like scene standing in for the WTC data:
    //    224 bands, 7 debris classes, 7 thermal hot spots 'A'-'G'.
    let scene = wtc_scene(WtcConfig {
        lines: 192,
        samples: 128,
        ..Default::default()
    });
    println!("scene: {:?}", scene.cube);

    // 2. The paper's fully heterogeneous network (Tables 1-2): sixteen
    //    workstations, four communication segments.
    let platform = presets::fully_heterogeneous();
    println!(
        "platform: {} ({} processors, mean speed {:.0} Mflop/s)",
        platform.name(),
        platform.num_procs(),
        platform.mean_speed()
    );

    // 3. Run Hetero-ATDCA: WEA partitions the cube by processor speed,
    //    workers search their partitions, the master grows the target
    //    matrix U by orthogonal subspace projection.
    let engine = Engine::new(platform);
    let params = AlgoParams::default(); // t = 18 targets
    let run =
        heterospec::hetero::par::atdca::run(&engine, &scene.cube, &params, &RunOptions::hetero());

    // 4. Score against ground truth (the paper's Table 3 metric).
    println!("\ndetected {} targets; hot-spot matches:", run.result.len());
    for m in target_table(&scene, &run.result) {
        let verdict = if m.sad < 0.01 { "found" } else { "missed" };
        println!(
            "  hot spot '{}' ({:>4.0} F): SAD = {:.3}  [{verdict}]",
            m.name, m.temp_f, m.sad
        );
    }

    // 5. The virtual-time performance report.
    let d = run.report.decomposition();
    let i = run.report.imbalance();
    println!("\nvirtual execution time: {:.2} s", d.total);
    println!(
        "  COM {:.2} s | SEQ {:.2} s | PAR {:.2} s",
        d.com, d.seq, d.par
    );
    println!(
        "  load imbalance: D_all {:.2}, D_minus {:.2}",
        i.d_all, i.d_minus
    );
}
