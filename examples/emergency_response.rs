//! Emergency response: the paper's motivating scenario.
//!
//! After a disaster, response teams need (a) the locations of active
//! fires and (b) a map of what the dust blanketing the area is made of —
//! fast. This example runs the full pipeline on a Thunderhead-class
//! Beowulf cluster: Hetero-ATDCA for the hot spots, Hetero-MORPH for the
//! debris map, and reports whether the paper's "minutes, not hours"
//! turnaround holds.
//!
//! ```text
//! cargo run --release --example emergency_response
//! ```

use heterospec::cube::synth::{wtc_scene, WtcConfig};
use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::hetero::eval::{debris_accuracy, detection_rate, target_table};
use heterospec::hetero::OffloadPolicy;
use heterospec::simnet::engine::Engine;
use heterospec::simnet::presets;

fn main() {
    let scene = wtc_scene(WtcConfig {
        lines: 256,
        samples: 128,
        ..Default::default()
    });
    let params = AlgoParams::default();
    let cpus = 64;
    let engine = Engine::new(presets::thunderhead(cpus));
    println!("scene {:?}; cluster: thunderhead x{cpus}", scene.cube);

    // --- Fire detection -------------------------------------------------
    let detection =
        heterospec::hetero::par::atdca::run(&engine, &scene.cube, &params, &RunOptions::hetero());
    let matches = target_table(&scene, &detection.result);
    println!("\nfire detection (ATDCA, t = {}):", params.num_targets);
    for m in &matches {
        println!(
            "  '{}' {:>4.0} F -> SAD {:.3} {}",
            m.name,
            m.temp_f,
            m.sad,
            if m.sad < 0.01 { "LOCATED" } else { "uncertain" }
        );
    }
    println!(
        "  detection rate: {:.0}%  in {:.1} virtual seconds",
        100.0 * detection_rate(&matches, 0.01),
        detection.report.total_time
    );

    // --- Debris mapping --------------------------------------------------
    let mapping =
        heterospec::hetero::par::morph::run(&engine, &scene.cube, &params, &RunOptions::hetero());
    let acc = debris_accuracy(&scene, &mapping.result.0, 7);
    println!(
        "\ndebris mapping (MORPH, I_max = {}):",
        params.morph_iterations
    );
    for (class, pc) in &acc.per_class {
        println!("  {:24} {:5.1}%", scene.class_names[*class as usize], pc);
    }
    println!(
        "  overall {:.1}%  in {:.1} virtual seconds",
        acc.overall, mapping.report.total_time
    );

    // --- The response-time budget ----------------------------------------
    let total = detection.report.total_time + mapping.report.total_time;
    println!(
        "\ntotal turnaround: {:.1} virtual seconds on {cpus} processors",
        total
    );
    if total < 60.0 {
        println!(
            "=> within an emergency-response budget (paper: 7 s fires + 11 s map at 256 CPUs)"
        );
    } else {
        println!("=> consider more processors (Table 8 scaling applies)");
    }

    // --- Onboard accelerators --------------------------------------------
    // The paper's onboard real-time-processing story: the same pipeline
    // on a small GPU-equipped cluster with per-chunk offload decisions.
    // Outputs are bit-identical to the host runs — offloading changes
    // only where time is charged.
    let gpus = 8;
    let accel = Engine::new(presets::accel_thunderhead(gpus));
    let auto = RunOptions::hetero().with_offload(OffloadPolicy::Auto);
    let fires = heterospec::hetero::par::atdca::run(&accel, &scene.cube, &params, &auto);
    let debris = heterospec::hetero::par::morph::run(&accel, &scene.cube, &params, &auto);
    println!("\nonboard processing (accel-thunderhead x{gpus}, OffloadPolicy::Auto):");
    for (name, run) in [("ATDCA", &fires.report), ("MORPH", &debris.report)] {
        let launches: u64 = run.offloads.iter().map(|o| o.launches).sum();
        let h2d: u64 = run.offloads.iter().map(|o| o.bytes_h2d).sum();
        let device_ms: f64 = run.offloads.iter().map(|o| o.device_ms).sum();
        let host_ms: f64 = run.offloads.iter().map(|o| o.host_ms).sum();
        println!(
            "  {name:5} {:.1} virtual s | {launches} kernel launches, {:.1} MB staged, \
             {device_ms:.0} ms device vs {host_ms:.0} ms host kernel time",
            run.total_time,
            h2d as f64 / 1.0e6,
        );
        for (rank, o) in run
            .offloads
            .iter()
            .enumerate()
            .filter(|(_, o)| o.launches > 0)
        {
            println!(
                "    rank {rank}: {} launches, {:.0} ms on the GPU",
                o.launches, o.device_ms
            );
        }
    }
    let accel_total = fires.report.total_time + debris.report.total_time;
    println!(
        "  turnaround: {accel_total:.1} virtual s on {gpus} GPU nodes \
         (vs {total:.1} s on {cpus} CPUs)"
    );
}
