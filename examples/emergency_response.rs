//! Emergency response: the paper's motivating scenario.
//!
//! After a disaster, response teams need (a) the locations of active
//! fires and (b) a map of what the dust blanketing the area is made of —
//! fast. This example runs the full pipeline on a Thunderhead-class
//! Beowulf cluster: Hetero-ATDCA for the hot spots, Hetero-MORPH for the
//! debris map, and reports whether the paper's "minutes, not hours"
//! turnaround holds.
//!
//! ```text
//! cargo run --release --example emergency_response
//! ```

use heterospec::cube::synth::{wtc_scene, WtcConfig};
use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::hetero::eval::{debris_accuracy, detection_rate, target_table};
use heterospec::simnet::engine::Engine;
use heterospec::simnet::presets;

fn main() {
    let scene = wtc_scene(WtcConfig {
        lines: 256,
        samples: 128,
        ..Default::default()
    });
    let params = AlgoParams::default();
    let cpus = 64;
    let engine = Engine::new(presets::thunderhead(cpus));
    println!("scene {:?}; cluster: thunderhead x{cpus}", scene.cube);

    // --- Fire detection -------------------------------------------------
    let detection =
        heterospec::hetero::par::atdca::run(&engine, &scene.cube, &params, &RunOptions::hetero());
    let matches = target_table(&scene, &detection.result);
    println!("\nfire detection (ATDCA, t = {}):", params.num_targets);
    for m in &matches {
        println!(
            "  '{}' {:>4.0} F -> SAD {:.3} {}",
            m.name,
            m.temp_f,
            m.sad,
            if m.sad < 0.01 { "LOCATED" } else { "uncertain" }
        );
    }
    println!(
        "  detection rate: {:.0}%  in {:.1} virtual seconds",
        100.0 * detection_rate(&matches, 0.01),
        detection.report.total_time
    );

    // --- Debris mapping --------------------------------------------------
    let mapping =
        heterospec::hetero::par::morph::run(&engine, &scene.cube, &params, &RunOptions::hetero());
    let acc = debris_accuracy(&scene, &mapping.result.0, 7);
    println!(
        "\ndebris mapping (MORPH, I_max = {}):",
        params.morph_iterations
    );
    for (class, pc) in &acc.per_class {
        println!("  {:24} {:5.1}%", scene.class_names[*class as usize], pc);
    }
    println!(
        "  overall {:.1}%  in {:.1} virtual seconds",
        acc.overall, mapping.report.total_time
    );

    // --- The response-time budget ----------------------------------------
    let total = detection.report.total_time + mapping.report.total_time;
    println!(
        "\ntotal turnaround: {:.1} virtual seconds on {cpus} processors",
        total
    );
    if total < 60.0 {
        println!(
            "=> within an emergency-response budget (paper: 7 s fires + 11 s map at 256 CPUs)"
        );
    } else {
        println!("=> consider more processors (Table 8 scaling applies)");
    }
}
