//! Dynamic load balancing under surprise load — the paper's
//! future-work direction, demonstrated.
//!
//! A shared workstation rarely delivers its nominal speed. Here the
//! nominally fastest node of the paper's heterogeneous network (p3) is
//! secretly slowed by background load; static WEA keeps feeding it the
//! largest partition, while chunked self-scheduling reroutes work from
//! completion feedback alone.
//!
//! ```text
//! cargo run --release --example dynamic_balancing
//! ```

use heterospec::cube::synth::{wtc_scene, WtcConfig};
use heterospec::hetero::config::AlgoParams;
use heterospec::hetero::dynamic::{self_schedule_morph_policy, static_wea_morph, ChunkPolicy};
use heterospec::simnet::presets;

fn main() {
    let scene = wtc_scene(WtcConfig {
        lines: 240,
        samples: 64,
        bands: 96,
        ..Default::default()
    });
    let params = AlgoParams {
        morph_iterations: 3,
        ..Default::default()
    };
    let platform = presets::fully_heterogeneous();
    let nominal: Vec<f64> = platform.procs().iter().map(|p| p.cycle_time).collect();

    println!("MORPH debris mapping on the 16-node heterogeneous network");
    println!("p3 (nominally the fastest node) is secretly slowed:\n");
    println!(
        "{:>9} {:>12} {:>14} {:>14}",
        "slowdown", "static WEA", "dyn fixed(8)", "dyn guided"
    );
    for slowdown in [1.0, 2.0, 4.0, 8.0] {
        let mut true_cycle = nominal.clone();
        true_cycle[2] *= slowdown;
        let stat = static_wea_morph(&platform, &true_cycle, &scene.cube, &params);
        let fixed = self_schedule_morph_policy(
            &platform,
            &true_cycle,
            &scene.cube,
            &params,
            ChunkPolicy::Fixed(8),
            2.0e-3,
        );
        let guided = self_schedule_morph_policy(
            &platform,
            &true_cycle,
            &scene.cube,
            &params,
            ChunkPolicy::Guided { min: 2 },
            2.0e-3,
        );
        println!(
            "{:>8}x {:>10.2} s {:>12.2} s {:>12.2} s",
            slowdown, stat.total_time, fixed.total_time, guided.total_time
        );
    }

    // Show where the work actually went at 8x.
    let mut true_cycle = nominal.clone();
    true_cycle[2] *= 8.0;
    let out = self_schedule_morph_policy(
        &platform,
        &true_cycle,
        &scene.cube,
        &params,
        ChunkPolicy::Fixed(8),
        2.0e-3,
    );
    println!("\nchunks per node at 8x slowdown (self-scheduling, chunk = 8 lines):");
    for (i, (&chunks, &busy)) in out.chunks.iter().zip(&out.busy).enumerate() {
        let bar = "#".repeat(chunks);
        println!(
            "  {:>4} (w={:.4}{}) {:>2} chunks, busy {:>5.2} s  {bar}",
            platform.proc(i).name,
            platform.proc(i).cycle_time,
            if i == 2 { ", LOADED 8x" } else { "" },
            chunks,
            busy
        );
    }
    println!(
        "\ncompletion: {:.2} s, worker imbalance {:.2}",
        out.total_time, out.imbalance
    );
}
