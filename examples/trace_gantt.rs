//! Execution tracing: visualise *why* the homogeneous algorithm loses
//! on a heterogeneous network.
//!
//! Runs Hetero-ATDCA and Homo-ATDCA on the paper's fully heterogeneous
//! network with tracing enabled and prints Gantt charts: the homo run
//! shows every fast node idling (`r`) while the UltraSparc (rank 9)
//! grinds through its oversized equal share. Each run also prints the
//! profiler's exact phase accounting and critical-path bottleneck
//! (see `docs/PROF.md`).
//!
//! ```text
//! cargo run --release --example trace_gantt
//! ```

use heterospec::cube::synth::{wtc_scene, WtcConfig};
use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::hetero::framework::{distribute, plan_assignments};
use heterospec::hetero::kernels;
use heterospec::hetero::msg::Msg;
use heterospec::simnet::engine::{Ctx, Engine};
use heterospec::simnet::presets;

fn main() {
    let scene = wtc_scene(WtcConfig {
        lines: 128,
        samples: 64,
        ..Default::default()
    });
    let params = AlgoParams::default();
    let platform = presets::fully_heterogeneous();

    for options in [RunOptions::hetero(), RunOptions::homo()] {
        let label = match options.strategy {
            heterospec::hetero::config::PartitionStrategy::Heterogeneous(_) => "Hetero",
            heterospec::hetero::config::PartitionStrategy::Homogeneous => "Homo",
        };
        let assignments = plan_assignments(
            &platform,
            &scene.cube,
            &options,
            heterospec::hetero::par::atdca::row_cost(&scene.cube, &params),
        );
        let engine = Engine::new(platform.clone());
        // One representative round: brightest-pixel search + gather.
        let cube = &scene.cube;
        let (report, trace) = engine.run_traced(|ctx: &mut Ctx<Msg>| {
            let block = distribute(ctx, cube, &assignments, 0, options.scatter_mode);
            let (cand, mflops) = kernels::brightest(&block.cube, block.own_range());
            ctx.compute_par(mflops);
            let msg = Msg::candidate(match cand {
                Some(p) => p.to_candidate(&block.cube, block.first_line, block.pre),
                None => heterospec::hetero::msg::Candidate {
                    line: 0,
                    sample: 0,
                    score: f64::NEG_INFINITY,
                    spectrum: vec![0.0; block.cube.bands()],
                },
            });
            if ctx.is_root() {
                for src in 1..ctx.num_ranks() {
                    let _ = ctx.recv(src);
                }
                let _ = msg;
            } else {
                ctx.send(0, msg);
            }
            ctx.elapsed()
        });
        println!(
            "\n=== {label}-ATDCA round on {} (total {:.3} s) ===",
            platform.name(),
            report.total_time
        );
        println!("{}", trace.gantt(platform.num_procs(), 72));
        // `run_traced` always attaches the profile: print the exact
        // phase accounting and where the makespan actually went.
        if let Some(profile) = &report.profile {
            println!("{}", profile.summary());
        }
    }
    println!("legend: rank 2 = p3 (fastest Athlon), rank 9 = p10 (UltraSparc-5)");
}
