//! Cluster design: explore how WEA distributes a hyperspectral workload
//! over a custom heterogeneous platform, and validate the equivalent-
//! homogeneous-network methodology the paper evaluates with.
//!
//! ```text
//! cargo run --release --example cluster_design
//! ```

use heterospec::cube::synth::{wtc_scene, WtcConfig};
use heterospec::hetero::config::{AlgoParams, RunOptions};
use heterospec::hetero::framework::plan_assignments;
use heterospec::hetero::par::atdca;
use heterospec::simnet::engine::Engine;
use heterospec::simnet::equivalent::{check_equivalence, equivalent_homogeneous};
use heterospec::simnet::{Platform, ProcessorSpec};

fn main() {
    // A made-up departmental cluster: two fast nodes, four mid nodes,
    // two legacy machines, on two switched segments.
    let procs: Vec<ProcessorSpec> = [
        ("fast-1", 0.004, 4096, 0),
        ("fast-2", 0.004, 4096, 0),
        ("mid-1", 0.011, 2048, 0),
        ("mid-2", 0.011, 2048, 0),
        ("mid-3", 0.011, 2048, 1),
        ("mid-4", 0.011, 2048, 1),
        ("old-1", 0.035, 512, 1),
        ("old-2", 0.040, 512, 1),
    ]
    .iter()
    .map(|&(name, w, mem, seg)| ProcessorSpec {
        name: name.to_string(),
        arch: "example node",
        cycle_time: w,
        memory_mb: mem,
        cache_kb: 1024,
        segment: seg,
        device: None,
    })
    .collect();
    let n = procs.len();
    let links = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        0.0
                    } else if procs[i].segment == procs[j].segment {
                        15.0
                    } else {
                        80.0
                    }
                })
                .collect()
        })
        .collect();
    let cluster = Platform::new("department-cluster", procs, links);

    let scene = wtc_scene(WtcConfig {
        lines: 256,
        samples: 96,
        ..Default::default()
    });
    let params = AlgoParams::default();

    // How does WEA split the image?
    let options = RunOptions::hetero();
    let cost = atdca::row_cost(&scene.cube, &params);
    let assignments = plan_assignments(&cluster, &scene.cube, &options, cost);
    println!("WEA row assignments over {} lines:", scene.cube.lines());
    for (i, a) in assignments.iter().enumerate() {
        let p = cluster.proc(i);
        println!(
            "  {:8} (w = {:.4}, segment {}): lines {:>4}..{:<4} ({} rows, {:.1}%)",
            p.name,
            p.cycle_time,
            p.segment,
            a.first_line,
            a.first_line + a.n_lines,
            a.n_lines,
            100.0 * a.n_lines as f64 / scene.cube.lines() as f64
        );
    }

    // Lastovetsky's methodology: compare against the equivalent
    // homogeneous network.
    let equivalent = equivalent_homogeneous(&cluster);
    let report = check_equivalence(&cluster, &equivalent);
    println!(
        "\nequivalent homogeneous network: w = {:.4} s/Mflop, link = {:.1} ms/Mbit",
        1.0 / equivalent.mean_speed(),
        equivalent.mean_link()
    );
    println!(
        "  equivalence check: speeds within {:.1e}, links within {:.1e}",
        report.mean_speed_rel_diff, report.mean_link_rel_diff
    );

    // The paper's optimality criterion: a heterogeneous algorithm is
    // optimal if its efficiency on the heterogeneous network matches the
    // homogeneous version's efficiency on the equivalent network.
    let het_run = atdca::run(&Engine::new(cluster), &scene.cube, &params, &options);
    let hom_run = atdca::run(
        &Engine::new(equivalent),
        &scene.cube,
        &params,
        &RunOptions::homo(),
    );
    println!(
        "\nHetero-ATDCA on the heterogeneous cluster: {:.2} s",
        het_run.report.total_time
    );
    println!(
        "Homo-ATDCA on the equivalent homogeneous:  {:.2} s",
        hom_run.report.total_time
    );
    let ratio = het_run.report.total_time / hom_run.report.total_time;
    println!(
        "ratio {:.2} — {}",
        ratio,
        if ratio < 1.1 {
            "the heterogeneous algorithm is close to optimal (paper section 3.1)"
        } else {
            "room for improvement in the workload distribution"
        }
    );
}
