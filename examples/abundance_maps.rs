//! Sub-pixel abundance mapping with fully constrained least squares —
//! the machinery underneath UFCLS (Algorithm 3), used directly.
//!
//! Unmixes every pixel of a synthetic debris scene against the true
//! class endmembers and prints ASCII abundance maps: where each material
//! concentrates, and where the linear-mixing residual is large (the
//! thermal hot spots, which no reflectance mixture can explain).
//!
//! ```text
//! cargo run --release --example abundance_maps
//! ```

use heterospec::cube::synth::{wtc_scene, WtcConfig};
use heterospec::linalg::lstsq::FclsProblem;
use heterospec::linalg::Matrix;

fn main() {
    let scene = wtc_scene(WtcConfig {
        lines: 48,
        samples: 72,
        bands: 96,
        ..Default::default()
    });
    let cube = &scene.cube;

    // Endmember matrix U: one row per material signature.
    let rows: Vec<Vec<f64>> = scene
        .class_signatures
        .iter()
        .map(|s| s.iter().map(|&v| v as f64).collect())
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let problem = FclsProblem::new(Matrix::from_rows(&refs)).expect("endmembers");

    // Unmix everything once.
    let mut abundances = vec![vec![0.0f64; cube.num_pixels()]; scene.class_names.len()];
    let mut residual = vec![0.0f64; cube.num_pixels()];
    for i in 0..cube.num_pixels() {
        let r = problem.solve_f32(cube.pixel_flat(i)).expect("fcls");
        for (class, &a) in r.abundances.iter().enumerate() {
            abundances[class][i] = a;
        }
        residual[i] = r.residual_sq;
    }

    let ramp: &[u8] = b" .:-=+*#%@";
    let render = |values: &[f64], max: f64| {
        for line in 0..cube.lines() / 2 {
            let mut row = String::new();
            for sample in 0..cube.samples() {
                // Average two lines per text row for aspect ratio.
                let a = values[cube.index_of((2 * line, sample))];
                let b = values[cube.index_of((2 * line + 1, sample))];
                let v = ((a + b) / 2.0 / max).clamp(0.0, 0.999);
                row.push(ramp[(v * ramp.len() as f64) as usize] as char);
            }
            println!("  |{row}|");
        }
    };

    for class in [6usize, 7] {
        // Gypsum wall board and Vegetation: visually distinctive classes.
        println!(
            "\nabundance of {:?} (FCLS, darker = less):",
            scene.class_names[class]
        );
        render(&abundances[class], 1.0);
    }

    println!("\nFCLS residual (bright = unexplainable by any reflectance mixture):");
    let max_r = residual.iter().cloned().fold(0.0f64, f64::max);
    render(&residual, max_r * 0.25);

    println!("\nthermal hot spots (should coincide with the residual peaks):");
    for t in &scene.targets {
        println!(
            "  '{}' at (line {:>2}, sample {:>2})",
            t.name, t.coord.0, t.coord.1
        );
    }

    // Quantitative check: mean abundance of each debris class inside its
    // own ground-truth region.
    println!("\nmean own-region abundance per class:");
    for (class, name) in scene.class_names.iter().enumerate() {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, &a) in abundances[class].iter().enumerate() {
            let (l, s) = cube.coord_of(i);
            if scene.truth.get(l, s) as usize == class {
                sum += a;
                count += 1;
            }
        }
        if count > 0 {
            println!("  {:26} {:5.2}", name, sum / count as f64);
        }
    }
}
