//! Scene generation and ENVI-style persistence.
//!
//! Generates a synthetic AVIRIS-like scene, inspects its spectral
//! content, writes it out in ENVI raw+header format (readable by
//! standard hyperspectral tooling) and reads it back.
//!
//! ```text
//! cargo run --release --example scene_io
//! ```

use heterospec::cube::io::envi;
use heterospec::cube::metrics::{brightness, sad};
use heterospec::cube::synth::{wtc_scene, WtcConfig};

fn main() {
    let scene = wtc_scene(WtcConfig {
        lines: 64,
        samples: 64,
        ..Default::default()
    });
    println!("generated {:?}", scene.cube);

    // Class inventory.
    println!("\nmaterial classes:");
    let counts = scene.truth.class_counts();
    for (label, name) in scene.class_names.iter().enumerate() {
        let n = counts.get(&(label as u16)).copied().unwrap_or(0);
        println!("  {label:>2} {name:26} {n:>6} px");
    }

    // The brightest pixel should be the hottest fire.
    let ((line, sample), px) = scene.cube.brightest_pixel().unwrap();
    let target = scene.targets.iter().find(|t| t.coord == (line, sample));
    println!(
        "\nbrightest pixel at ({line},{sample}), xTx = {:.1} -> {}",
        brightness(px),
        match target {
            Some(t) => format!("hot spot '{}' ({} F)", t.name, t.temp_f),
            None => "not a target".to_string(),
        }
    );

    // Spectral separability of the debris classes.
    println!("\npairwise SAD of the first four debris classes (radians):");
    for i in 0..4 {
        let row: Vec<String> = (0..4)
            .map(|j| {
                format!(
                    "{:.3}",
                    sad(&scene.class_signatures[i], &scene.class_signatures[j])
                )
            })
            .collect();
        println!("  {:26} {}", scene.class_names[i], row.join("  "));
    }

    // ENVI round trip.
    let dir = std::env::temp_dir().join("heterospec-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("wtc_scene.raw");
    envi::write_cube(&scene.cube, &path).expect("write ENVI");
    println!(
        "\nwrote {} (+ .hdr), {} bytes",
        path.display(),
        scene.cube.size_bytes()
    );
    let back = envi::read_cube(&path).expect("read ENVI");
    assert_eq!(back, scene.cube);
    println!(
        "read back: identical ({} pixels verified)",
        back.num_pixels()
    );
}
