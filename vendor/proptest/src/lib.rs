//! Offline stand-in for `proptest`.
//!
//! Supports the slice of the API this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(...)]`) generating one `#[test]` per entry,
//! * [`Strategy`] implemented for primitive ranges and
//!   [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] reporting failures with the
//!   generated inputs' case number,
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, deliberately accepted: no shrinking
//! (a failing case reports its seed and values as-generated), and a
//! fixed deterministic seed per test function derived from the test
//! name — CI runs are reproducible by construction, so there is no
//! regression-file machinery either.
//!
//! One further deliberate difference: the `PROPTEST_CASES` environment
//! variable overrides the configured case count *even when the suite
//! pins one with [`ProptestConfig::with_cases`]* (upstream only reads
//! the variable into `Config::default()`). This lets CI dial the same
//! committed suites down for per-push smoke runs and up for nightly
//! soaks without editing the tests (see `docs/TESTING.md`).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The effective case count for a test run: the `PROPTEST_CASES`
/// environment variable (a positive integer) overrides the configured
/// count when set; malformed or non-positive values are ignored.
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    let raw = std::env::var("PROPTEST_CASES").ok();
    cases_override(raw.as_deref()).unwrap_or(config.cases)
}

fn cases_override(raw: Option<&str>) -> Option<u32> {
    raw?.trim().parse().ok().filter(|&n| n > 0)
}

/// The RNG handed to strategies (deterministic ChaCha8).
pub type TestRng = ChaCha8Rng;

/// Creates the deterministic RNG for a named test function.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// A value generator. `Value` is the generated type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_float_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    };
}

impl_float_strategy!(f32);
impl_float_strategy!(f64);

macro_rules! impl_int_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..self.end() + 1)
            }
        }
    };
}

impl_int_strategy!(usize);
impl_int_strategy!(u64);
impl_int_strategy!(u32);
impl_int_strategy!(i64);
impl_int_strategy!(i32);

/// A strategy producing a fixed value every time (`Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Selects a random `bool`.
impl Strategy for Range<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut TestRng) -> u8 {
        assert!(self.start < self.end);
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as u8
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Sizes acceptable to [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (with optional formatted context) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                ::std::format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Declares property tests. Each entry becomes a `#[test]` running
/// `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // The user's own `#[test]` (and doc comments, `#[ignore]`, …)
        // arrive through `$attr` and are re-emitted verbatim.
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::resolve_cases(&config);
            let mut rng = $crate::test_rng(::std::stringify!($name));
            $(let $arg = $strategy;)+
            for case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                // Render inputs up front: the body may move them.
                let mut inputs = ::std::string::String::new();
                $(
                    inputs.push_str("\n    ");
                    inputs.push_str(::std::stringify!($arg));
                    inputs.push_str(" = ");
                    inputs.push_str(&::std::format!("{:?}", $arg));
                )+
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\n  inputs:{}",
                        case + 1,
                        cases,
                        message,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = Vec<f64>> {
        crate::collection::vec(-1.0f64..1.0, 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 0.5f32..2.0, n in 3usize..9) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        /// Vec strategies honour fixed and ranged sizes.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0.0f64..1.0, 5),
                     w in crate::collection::vec(0u32..10, 1..4)) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!((1..4).contains(&w.len()));
        }

        /// Named helper strategies compose.
        #[test]
        fn helper_strategy(p in pair()) {
            prop_assert_eq!(p.len(), 2);
            prop_assert!(p.iter().all(|v| (-1.0..1.0).contains(v)));
        }
    }

    #[test]
    fn cases_override_parses_only_positive_integers() {
        assert_eq!(crate::cases_override(None), None);
        assert_eq!(crate::cases_override(Some("")), None);
        assert_eq!(crate::cases_override(Some("abc")), None);
        assert_eq!(crate::cases_override(Some("0")), None);
        assert_eq!(crate::cases_override(Some("-3")), None);
        assert_eq!(crate::cases_override(Some("17")), Some(17));
        assert_eq!(crate::cases_override(Some(" 8 ")), Some(8));
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::RngCore;
        let mut a = crate::test_rng("some_test");
        let mut b = crate::test_rng("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("other_test");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports() {
        // Expand a tiny failing property manually through the macro
        // plumbing by calling the generated test fn.
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[test]
                #[ignore]
                fn always_fails(x in 0.0f64..1.0) {
                    prop_assert!(x > 2.0, "x was {}", x);
                }
            }
            pub fn run() {
                always_fails();
            }
        }
        inner::run();
    }
}
