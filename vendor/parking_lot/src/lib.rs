//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` wrappers over
//! `std::sync` that return guards directly (no `Result`), recovering
//! from poisoning like parking_lot's poison-free locks do.

use std::fmt;
use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never fails (poisoning is swallowed).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn debug_formats() {
        let m = Mutex::new(1);
        assert!(format!("{m:?}").contains('1'));
        let l = RwLock::new(2);
        assert!(format!("{l:?}").contains('2'));
    }
}
