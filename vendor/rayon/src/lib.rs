//! Offline stand-in for the `rayon` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of rayon's API it actually
//! uses: indexed parallel iteration over ranges (`into_par_iter` +
//! `map`/`for_each`/`collect`/`reduce`) and size-bounded thread pools
//! (`ThreadPoolBuilder` → `ThreadPool::install`).
//!
//! Semantics matter more than raw scheduling sophistication here:
//!
//! * work is split into **contiguous index blocks**, one per worker
//!   thread, and `collect` preserves index order — so callers that keep
//!   their own deterministic chunking (as every kernel in this workspace
//!   does) observe results independent of the worker count;
//! * `ThreadPool::install` bounds the parallelism *within the calling
//!   thread* via a thread-local width, which is exactly what
//!   `simnet::engine` needs to run one OS thread per simulated rank
//!   without oversubscribing the host (`ranks × threads-per-rank ≤
//!   cores` by construction);
//! * when the effective width is 1 the iterators degenerate to plain
//!   sequential loops with no thread spawns at all.
//!
//! Worker threads are spawned per parallel call via `std::thread::scope`.
//! For the coarse-grained kernels this workspace runs (thousands of
//! pixels per chunk) the spawn cost is noise; a persistent work-stealing
//! pool is deliberately out of scope for the shim.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Parallelism width installed on this thread (None = use the
    /// process-wide default, i.e. the number of host cores).
    static INSTALLED_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of host cores (the default pool width).
fn default_width() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The parallelism width in effect on the current thread.
pub fn current_num_threads() -> usize {
    INSTALLED_WIDTH
        .with(|w| w.get())
        .unwrap_or_else(default_width)
        .max(1)
}

/// Error type returned by [`ThreadPoolBuilder::build`] (the shim never
/// actually fails to build).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with the default (host-core) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width; `0` selects the host default, as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool (infallible in the shim).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            width: self.num_threads.unwrap_or_else(default_width).max(1),
        })
    }
}

/// A size-bounded pool. In the shim a pool is only a *width*: `install`
/// publishes it thread-locally and the parallel iterators honour it.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's width governing any parallel iterators
    /// it executes (including on panics, the previous width is restored).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_WIDTH.with(|w| w.set(self.0));
            }
        }
        let previous = INSTALLED_WIDTH.with(|w| w.replace(Some(self.width)));
        let _restore = Restore(previous);
        f()
    }

    /// This pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// Runs `f(0..n)` across the current width, writing results in index
/// order. The work is split into one contiguous block per worker.
fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let width = current_num_threads().min(n.max(1));
    if width <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    let block = n.div_ceil(width);
    std::thread::scope(|scope| {
        for (b, chunk) in slots.chunks_mut(block).enumerate() {
            let f = &f;
            scope.spawn(move || {
                // Workers run sequentially inside: nested parallel calls
                // must not multiply the thread count.
                let inner = ThreadPool { width: 1 };
                inner.install(|| {
                    let base = b * block;
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(base + i));
                    }
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("rayon shim: worker skipped a slot"))
        .collect()
}

/// Runs `f(index, item)` for every item across the current width. Items
/// are moved into the workers in contiguous index blocks, mirroring
/// [`run_indexed`]'s split, so two calls with the same width visit items
/// under the same block layout.
fn run_items<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(usize, I) + Sync,
{
    let n = items.len();
    let width = current_num_threads().min(n.max(1));
    if width <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let mut slots: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let block = n.div_ceil(width);
    std::thread::scope(|scope| {
        for (b, chunk) in slots.chunks_mut(block).enumerate() {
            let f = &f;
            scope.spawn(move || {
                // Same nested-width pinning as `run_indexed`.
                let inner = ThreadPool { width: 1 };
                inner.install(|| {
                    let base = b * block;
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        let item = slot.take().expect("rayon shim: item taken twice");
                        f(base + i, item);
                    }
                });
            });
        }
    });
}

/// Parallel chunked iteration over mutable slices
/// (`rayon::slice::ParallelSliceMut`). Only the `par_chunks_mut` entry
/// point the workspace uses is provided.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into contiguous chunks of at most `chunk_size`
    /// elements (the last chunk is the remainder), to be visited in
    /// parallel. Panics if `chunk_size` is zero, as in rayon.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size != 0, "chunk size must not be zero");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over mutable slice chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run_items(self.chunks, |_, chunk| f(chunk));
    }
}

/// The `enumerate` stage of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Runs `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run_items(self.chunks, |i, chunk| f((i, chunk)));
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The concrete parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>`.
#[derive(Debug, Clone)]
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParRangeMap<T, F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs `f` on every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        run_indexed(n, |i| f(start + i));
    }
}

/// The `map` stage of a [`ParRange`].
pub struct ParRangeMap<T, F> {
    range: Range<usize>,
    f: F,
    _marker: std::marker::PhantomData<T>,
}

impl<T, F> ParRangeMap<T, F>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    /// Collects results **in index order**.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<T>,
    {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        let f = self.f;
        C::from_ordered(run_indexed(n, |i| f(start + i)))
    }

    /// Reduces the mapped values. The shim folds the ordered results
    /// left-to-right from `identity()`, which is deterministic for any
    /// worker count (a strictly stronger guarantee than rayon's
    /// unspecified reduction tree — callers relying on bit-stable
    /// floating-point reductions get them for free here).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        let f = self.f;
        run_indexed(n, |i| f(start + i))
            .into_iter()
            .fold(identity(), op)
    }
}

/// Ordered collection of parallel results (`rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in index order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_folds_in_order() {
        // String concatenation is order-sensitive: the fold must be
        // left-to-right regardless of the worker count.
        for width in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(width).build().unwrap();
            let s: String = pool.install(|| {
                (0..10)
                    .into_par_iter()
                    .map(|i| i.to_string())
                    .reduce(String::new, |a, b| a + &b)
            });
            assert_eq!(s, "0123456789");
        }
    }

    #[test]
    fn install_bounds_width_and_restores() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn for_each_visits_every_index() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_in_order() {
        for width in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(width).build().unwrap();
            let mut v = vec![0usize; 10];
            pool.install(|| {
                v.par_chunks_mut(3).enumerate().for_each(|(ci, chunk)| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = ci * 100 + i;
                    }
                });
            });
            assert_eq!(v, vec![0, 1, 2, 100, 101, 102, 200, 201, 202, 300]);
        }
    }

    #[test]
    fn par_chunks_mut_on_empty_slice_is_a_no_op() {
        let mut v: Vec<u8> = Vec::new();
        v.par_chunks_mut(4).for_each(|chunk| {
            panic!("unexpected chunk of len {}", chunk.len());
        });
    }

    #[test]
    #[should_panic(expected = "chunk size must not be zero")]
    fn par_chunks_mut_rejects_zero_chunk_size() {
        let mut v = [0u8; 4];
        v.par_chunks_mut(0).for_each(|_| {});
    }

    #[test]
    fn empty_range_collects_empty() {
        let v: Vec<u8> = (5..5).into_par_iter().map(|_| 0u8).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn workers_run_sequentially_inside() {
        // Nested parallel calls inside a worker must see width 1.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let widths: Vec<usize> = pool.install(|| {
            (0..4)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        // With >1 installed width the scoped workers pin themselves to 1.
        if pool.current_num_threads() > 1 {
            assert!(widths.iter().all(|&w| w == 1), "{widths:?}");
        }
    }
}
