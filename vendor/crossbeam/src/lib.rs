//! Offline stand-in for the `crossbeam` crate: only `crossbeam::channel`
//! with unbounded MPMC channels, which is all `simnet` uses.
//!
//! Disconnection semantics match crossbeam's: `recv` drains queued
//! messages even after all senders dropped, then errors; `send` errors
//! when every receiver is gone. Both endpoints are `Clone`.

pub mod channel {
    //! Unbounded MPMC channel on `Mutex<VecDeque>` + `Condvar`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half (cloneable).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the rejected message like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; errors only when every receiver has dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they can
                // observe the disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        /// Non-blocking receive: `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1)); // drains the queue first
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(99u32).unwrap();
            assert_eq!(handle.join().unwrap(), 99);
        }

        #[test]
        fn blocking_recv_wakes_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let handle = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(handle.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn cloned_endpoints_share_the_queue() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(7u32).unwrap();
            assert_eq!(rx2.recv().unwrap(), 7);
            drop(tx);
            tx2.send(8).unwrap(); // one sender still alive
            assert_eq!(rx.recv().unwrap(), 8);
        }

        #[test]
        fn try_recv_is_nonblocking() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), None);
            tx.send(5).unwrap();
            assert_eq!(rx.try_recv(), Some(5));
        }
    }
}
