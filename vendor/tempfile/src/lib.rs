//! Offline stand-in for `tempfile`: just [`tempdir`] / [`TempDir`],
//! which is all the workspace's tests use.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the handle *without* deleting the directory.
    pub fn keep(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Creates a uniquely named temporary directory.
pub fn tempdir() -> std::io::Result<TempDir> {
    let base = std::env::temp_dir();
    let pid = std::process::id();
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!(".heterospec-tmp-{pid}-{n}"));
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("x"), b"y").unwrap();
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn unique_paths() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn keep_preserves() {
        let dir = tempdir().unwrap();
        let path = dir.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
