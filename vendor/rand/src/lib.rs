//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides `RngCore`, `SeedableRng` (with the same SplitMix64-based
//! `seed_from_u64` expansion as `rand_core` 0.6, so seeded generators in
//! this workspace produce the same streams they would with the real
//! crate family), and the `Rng` extension trait with `gen` /
//! `gen_range` / `gen_bool` for the primitive types the workspace uses.

use std::ops::Range;

/// Core random source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (byte-compatible
    /// with `rand_core` 0.6's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from the full bit stream ("Standard"
/// distribution): floats land in `[0, 1)`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable uniformly (`rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    };
}

impl_float_range!(f32);
impl_float_range!(f64);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo sampling: bias < 2⁻⁶⁴ for the spans used here.
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    };
}

impl_int_range!(usize);
impl_int_range!(u64);
impl_int_range!(u32);
impl_int_range!(i64);
impl_int_range!(i32);

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Small self-contained generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, decent quality. Used as the shim's
    /// general-purpose generator where the real crate would offer
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

/// The prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0f64..7.0);
            assert!((3.0..7.0).contains(&x));
            let n = rng.gen_range(10usize..20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
