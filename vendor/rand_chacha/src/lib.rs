//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream
//! generator behind the vendored `rand` traits.
//!
//! The generator is the standard ChaCha block function (Bernstein) with
//! 8 rounds, a 256-bit key taken from the seed, zero nonce, and a 64-bit
//! block counter. Output words are the little-endian keystream words in
//! block order — cryptographic-quality uniformity is far more than the
//! synthetic-scene generator needs, but ChaCha8 is cheap and keeps
//! scenes bit-reproducible across platforms (pure integer arithmetic).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONST);
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        // Nonce words 14–15 stay zero.
        let mut working = input;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, i)) in self.block.iter_mut().zip(working.iter().zip(&input)) {
            *out = w.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} collisions in 32 draws");
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // 40 words spans three 16-word blocks.
        let stream: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(3);
        let replay: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(stream, replay);
    }

    #[test]
    fn uniformish_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_rounds_of_bias_in_bits() {
        // Every bit position should be ~50% set.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut counts = [0u32; 32];
        for _ in 0..4096 {
            let w = rng.next_u32();
            for (bit, c) in counts.iter_mut().enumerate() {
                *c += (w >> bit) & 1;
            }
        }
        for (bit, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - 2048).abs() < 300,
                "bit {bit} set {c} times of 4096"
            );
        }
    }
}
