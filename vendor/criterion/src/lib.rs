//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's `harness = false` benches compiling and
//! runnable without crates.io. Each `bench_function` runs a short
//! warm-up, then measures for a fixed wall-clock budget and prints the
//! mean iteration time — no statistics, plots or baselines. Honest
//! numbers for quick comparisons; the machine-readable perf trajectory
//! lives in `BENCH_kernels.json` (see `crates/bench`).

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement budget per benchmark.
const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    group: Option<String>,
}

impl Criterion {
    /// Starts a named group; names prefix the contained benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = match &self.group {
            Some(group) => format!("{group}/{}", id.as_ref()),
            None => id.as_ref().to_string(),
        };
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.elapsed.as_secs_f64() * 1e9 / bencher.iters as f64
        };
        println!(
            "bench {label:<50} {:>12.1} ns/iter ({} iters)",
            mean_ns, bencher.iters
        );
        self
    }
}

/// A benchmark group (shim: only a name prefix).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (the shim has no statistical sampling).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let previous = self.criterion.group.replace(self.name.clone());
        self.criterion.bench_function(id, f);
        self.criterion.group = previous;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Handed to the closure of `bench_function`; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f` repeatedly: short warm-up, then a fixed budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_until = Instant::now() + WARMUP;
        while Instant::now() < warm_until {
            black_box(f());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < MEASURE {
            black_box(f());
            iters += 1;
        }
        self.elapsed = started.elapsed();
        self.iters = iters;
    }
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10);
        g.bench_function("add", |b| b.iter(|| black_box(2) + black_box(3)));
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn runs_to_completion() {
        benches();
    }
}
