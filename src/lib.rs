//! # heterospec
//!
//! Heterogeneous parallel computing for hyperspectral remote sensing —
//! a full reproduction of **Plaza, "Heterogeneous Parallel Computing in
//! Remote Sensing Applications: Current Trends and Future Perspectives"
//! (IEEE CLUSTER 2006)** as a Rust workspace.
//!
//! This umbrella crate re-exports the five member crates:
//!
//! * [`linalg`] (`hsi-linalg`) — dense linear algebra: LU, Cholesky,
//!   Jacobi eigen, Gram–Schmidt/OSP projection, LS/SCLS/NNLS/FCLS
//!   unmixing, mergeable covariance accumulators.
//! * [`cube`] (`hsi-cube`) — the hyperspectral image substrate: BIP
//!   cubes, spectral metrics (SAD/SID), the synthetic AVIRIS-like WTC
//!   scene generator with exact ground truth, ENVI-style I/O.
//! * [`simnet`] — the virtual-time heterogeneous cluster simulator:
//!   the paper's Tables 1–2 platforms, an MPI-like message-passing
//!   engine over threads with deterministic virtual clocks, COM/SEQ/PAR
//!   decomposition and imbalance reporting.
//! * [`morpho`] (`hsi-morpho`) — multichannel mathematical morphology:
//!   cumulative-SAD erosion/dilation and the morphological eccentricity
//!   index.
//! * [`hetero`] (`hetero-hsi`) — the paper's contribution: the WEA
//!   workload partitioner and the four parallel algorithms
//!   (ATDCA, UFCLS, PCT, MORPH) in Hetero-/Homo- variants.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quick start
//!
//! ```
//! use heterospec::cube::synth::{wtc_scene, WtcConfig};
//! use heterospec::hetero::config::{AlgoParams, RunOptions};
//! use heterospec::simnet::engine::Engine;
//!
//! let scene = wtc_scene(WtcConfig::tiny());
//! let engine = Engine::new(heterospec::simnet::presets::fully_heterogeneous());
//! let params = AlgoParams { num_targets: 4, ..Default::default() };
//! let run = heterospec::hetero::par::atdca::run(
//!     &engine, &scene.cube, &params, &RunOptions::hetero());
//! assert_eq!(run.result.len(), 4);
//! assert!(run.report.total_time > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use hetero_hsi as hetero;
pub use hsi_cube as cube;
pub use hsi_linalg as linalg;
pub use hsi_morpho as morpho;
pub use simnet;
