//! The paper's optimality criterion as a library function.
//!
//! Section 3.1 (after Lastovetsky & Reddy): *"a heterogeneous algorithm
//! may be considered optimal if its efficiency on a heterogeneous
//! network is the same as that evidenced by its homogeneous version on
//! the equivalent homogeneous network."* This module runs both sides of
//! that comparison and reports the ratio — the number the paper's whole
//! evaluation methodology is built on.

use crate::config::{AlgoParams, RunOptions};
use hsi_cube::HyperCube;
use simnet::engine::Engine;
use simnet::equivalent::equivalent_homogeneous;
use simnet::Platform;

/// Result of an optimality assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimality {
    /// Heterogeneous algorithm's time on the heterogeneous platform.
    pub hetero_time: f64,
    /// Homogeneous version's time on the equivalent homogeneous platform.
    pub homo_equivalent_time: f64,
}

impl Optimality {
    /// `hetero_time / homo_equivalent_time`: `1.0` is optimal; values
    /// slightly above 1 are "close to the optimal heterogeneous
    /// modification of the basic homogeneous algorithm" (the paper's
    /// reading of its Table 5).
    pub fn ratio(&self) -> f64 {
        self.hetero_time / self.homo_equivalent_time.max(1e-300)
    }

    /// The paper's qualitative verdict at a tolerance (e.g. `0.1` for
    /// "within 10 % of optimal").
    pub fn is_optimal_within(&self, tol: f64) -> bool {
        self.ratio() <= 1.0 + tol
    }
}

/// Runs the paper's optimality assessment for one algorithm on one
/// heterogeneous platform: Hetero-X on `platform` versus Homo-X on the
/// Lastovetsky-equivalent homogeneous network.
pub fn assess(
    algorithm: Algorithm,
    platform: &Platform,
    cube: &HyperCube,
    params: &AlgoParams,
) -> Optimality {
    let het_engine = Engine::new(platform.clone());
    let hom_engine = Engine::new(equivalent_homogeneous(platform));
    let hetero_time = run_total(algorithm, &het_engine, cube, params, &RunOptions::hetero());
    let homo_equivalent_time = run_total(algorithm, &hom_engine, cube, params, &RunOptions::homo());
    Optimality {
        hetero_time,
        homo_equivalent_time,
    }
}

/// The four algorithms of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Automated target detection and classification (Algorithm 2).
    Atdca,
    /// Unsupervised fully constrained least squares (Algorithm 3).
    Ufcls,
    /// Principal component transform classification (Algorithm 4).
    Pct,
    /// Morphological classification (Algorithm 5).
    Morph,
}

fn run_total(
    algorithm: Algorithm,
    engine: &Engine,
    cube: &HyperCube,
    params: &AlgoParams,
    options: &RunOptions,
) -> f64 {
    match algorithm {
        Algorithm::Atdca => {
            crate::par::atdca::run(engine, cube, params, options)
                .report
                .total_time
        }
        Algorithm::Ufcls => {
            crate::par::ufcls::run(engine, cube, params, options)
                .report
                .total_time
        }
        Algorithm::Pct => {
            crate::par::pct::run(engine, cube, params, options)
                .report
                .total_time
        }
        Algorithm::Morph => {
            crate::par::morph::run(engine, cube, params, options)
                .report
                .total_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::presets;

    #[test]
    fn hetero_algorithms_are_near_optimal() {
        // The paper's headline finding: on the fully heterogeneous
        // network the heterogeneous algorithms are close to the optimal
        // heterogeneous modification of the homogeneous ones.
        let s = wtc_scene(WtcConfig {
            lines: 128,
            samples: 48,
            bands: 64,
            ..Default::default()
        });
        let p = AlgoParams {
            num_targets: 8,
            morph_iterations: 2,
            ..Default::default()
        };
        let platform = presets::fully_heterogeneous();
        // ATDCA has no per-node fixed cost: near-optimal at any scale.
        let o = assess(Algorithm::Atdca, &platform, &s.cube, &p);
        assert!(
            o.is_optimal_within(0.35),
            "Atdca: ratio {:.2} ({:.3} vs {:.3})",
            o.ratio(),
            o.hetero_time,
            o.homo_equivalent_time
        );
        // MORPH pays a fixed halo per node; on the slowest processor that
        // fixed cost is a completion-time floor that only amortises with
        // image height, so the tolerance is looser at this test size
        // (the ratio approaches 1 at the benchmark scene sizes).
        let o = assess(Algorithm::Morph, &platform, &s.cube, &p);
        assert!(
            o.is_optimal_within(0.75),
            "Morph: ratio {:.2} ({:.3} vs {:.3})",
            o.ratio(),
            o.hetero_time,
            o.homo_equivalent_time
        );
    }

    #[test]
    fn ratio_arithmetic() {
        let o = Optimality {
            hetero_time: 11.0,
            homo_equivalent_time: 10.0,
        };
        assert!((o.ratio() - 1.1).abs() < 1e-12);
        assert!(o.is_optimal_within(0.15));
        assert!(!o.is_optimal_within(0.05));
    }
}
