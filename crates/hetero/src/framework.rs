//! Master/worker plumbing shared by the four parallel algorithms.
//!
//! The root (rank 0) also acts as a worker on its own partition, as in
//! the paper's setup (16 processors, 16 partitions); its extra duties —
//! WEA, candidate selection, eigendecomposition, set merging — are the
//! SEQ component of Table 6.

use crate::config::{PartitionStrategy, RunOptions};
use crate::msg::{Candidate, Msg};
use crate::par::{best_candidate, better_candidate};
use crate::wea::{self, RowAssignment, RowCost};
use hsi_cube::{HyperCube, LabelImage};
use simnet::coll::{self, CollAlgorithm, CollectiveConfig, GatherEntry};
use simnet::comm::ScatterMode;
use simnet::engine::Engine;
use simnet::report::RunReport;
use simnet::Ctx;

/// A rank's local share of the image.
#[derive(Debug, Clone)]
pub struct LocalBlock {
    /// First global line owned by this rank.
    pub first_line: usize,
    /// Number of owned lines (may be zero on tiny images).
    pub n_lines: usize,
    /// Halo lines prepended before the owned region.
    pub pre: usize,
    /// The block, halo included.
    pub cube: HyperCube,
}

impl LocalBlock {
    /// Local line range of the **owned** region, `(lo, hi)`.
    pub fn own_range(&self) -> (usize, usize) {
        (self.pre, self.pre + self.n_lines)
    }

    /// Converts a local line to the global image line.
    pub fn to_global_line(&self, local: usize) -> usize {
        local + self.first_line - self.pre
    }
}

/// Computes workload fractions for a strategy.
pub fn plan_fractions(
    platform: &simnet::Platform,
    strategy: PartitionStrategy,
    cost: RowCost,
) -> Vec<f64> {
    match strategy {
        PartitionStrategy::Heterogeneous(cfg) => wea::hetero_fractions(platform, cost, cfg),
        PartitionStrategy::Homogeneous => wea::homo_fractions(platform),
    }
}

/// Computes the per-rank row assignments for a run. When the scatter is
/// free (pre-staged data), the WEA sees zero staging cost per row and
/// reduces to pure speed proportionality.
pub fn plan_assignments(
    platform: &simnet::Platform,
    cube: &HyperCube,
    options: &RunOptions,
    mut cost: RowCost,
) -> Vec<RowAssignment> {
    if options.scatter_mode == ScatterMode::Free {
        cost.mbits_per_row = 0.0;
    }
    let row_bytes = cube.samples() * cube.bands() * 4;
    // With offloading enabled, partition against *effective* node
    // speeds: a device-bearing node that would offload an even-split
    // partition reads proportionally faster, so the WEA hands it more
    // rows. The engine still runs on the real platform — only fraction
    // computation sees the folded speeds (memory bounds are unchanged).
    let effective;
    let platform = if options.offload == crate::offload::OffloadPolicy::Never {
        platform
    } else {
        let rep_lines = cube.lines().div_ceil(platform.num_procs().max(1)).max(1);
        let rep = crate::offload::ChunkCost::new(
            cost.mflops_per_row * rep_lines as f64 + cost.fixed_mflops,
            ((rep_lines * row_bytes) as u64, 0),
        );
        effective = crate::offload::effective_platform(platform, options.offload, &rep);
        &effective
    };
    let fractions = plan_fractions(platform, options.strategy, cost);
    let cfg = match options.strategy {
        PartitionStrategy::Heterogeneous(cfg) => cfg,
        PartitionStrategy::Homogeneous => wea::WeaConfig {
            respect_memory: false,
            ..Default::default()
        },
    };
    wea::assignments(platform, cube.lines(), row_bytes, &fractions, cfg)
        .expect("platform memory cannot hold the image")
}

/// Algorithm 2/3/4/5 step 1: the root carves the image into partitions
/// (optionally with overlap halos) and ships them; every rank returns
/// its [`LocalBlock`].
///
/// The `cube` reference is only dereferenced on the root, mirroring the
/// real system where only the master holds the full image.
pub fn distribute(
    ctx: &mut Ctx<Msg>,
    cube: &HyperCube,
    assignments: &[RowAssignment],
    overlap: usize,
    mode: ScatterMode,
) -> LocalBlock {
    assert_eq!(assignments.len(), ctx.num_ranks());
    let items = if ctx.is_root() {
        Some(
            assignments
                .iter()
                .map(|a| {
                    let (block, pre) =
                        cube.extract_lines_with_overlap(a.first_line, a.n_lines, overlap);
                    Msg::partition(a.first_line, a.n_lines, pre, &block)
                })
                .collect(),
        )
    } else {
        None
    };
    let (first_line, n_lines, pre, cube) = coll::scatter(ctx, 0, items, mode)
        .expect("distribute: scatter misuse")
        .into_partition()
        .expect("distribute: protocol violation");
    LocalBlock {
        first_line,
        n_lines,
        pre,
        cube,
    }
}

/// Final step of the classification algorithms: every rank sends the
/// labels of its owned lines; the root assembles the full label image.
/// Contributions of failed ranks are skipped, leaving their lines
/// unlabeled (an explicit hole rather than an abort).
pub fn gather_labels(
    ctx: &mut Ctx<Msg>,
    cfg: &CollectiveConfig,
    block: &LocalBlock,
    labels: Vec<u16>,
    image_lines: usize,
    image_samples: usize,
) -> Option<LabelImage> {
    assert_eq!(labels.len(), block.n_lines * image_samples);
    // Rank-uniform size hint (drives `Auto` selection only): every rank
    // carries ~lines/P owned lines of u16 labels.
    let bits = 32 + (image_lines.div_ceil(ctx.num_ranks()) * image_samples * 16) as u64;
    let msg = Msg::Labels {
        first_line: block.first_line as u32,
        labels,
    };
    coll::gather(ctx, cfg, 0, msg, bits).map(|entries| {
        let mut out = LabelImage::unlabeled(image_lines, image_samples);
        for msg in entries.into_iter().filter_map(GatherEntry::into_msg) {
            let (first, labs) = msg
                .into_labels()
                .expect("gather_labels: protocol violation");
            for (i, &l) in labs.iter().enumerate() {
                out.set(first + i / image_samples, i % image_samples, l);
            }
        }
        out
    })
}

/// Outcome of a parallel run: the root's result plus the timing report.
#[derive(Debug, Clone)]
pub struct ParallelRun<T> {
    /// The analysis result (targets or label image).
    pub result: T,
    /// Timing/imbalance report of the run.
    pub report: RunReport<()>,
}

/// Runs `program` on the engine and extracts the root's result.
///
/// # Panics
/// Panics if the root's closure returns `None`.
pub fn run_rooted<T: Send>(
    engine: &Engine,
    program: impl Fn(&mut Ctx<Msg>) -> Option<T> + Sync,
) -> ParallelRun<T> {
    let report = engine.run(program);
    let RunReport {
        platform_name,
        ledgers,
        mut results,
        failures,
        total_time,
        collectives,
        epochs,
        copies,
        offloads,
        ranks,
        profile,
    } = report;
    let result = results
        .get_mut(0)
        .and_then(Option::take)
        .flatten()
        .unwrap_or_else(|| panic!("root produced no result (failures: {failures:?})"));
    ParallelRun {
        result,
        report: RunReport {
            platform_name,
            ledgers,
            results: Vec::new(),
            failures,
            total_time,
            collectives,
            epochs,
            copies,
            offloads,
            ranks,
            profile,
        },
    }
}

/// Megabits needed to stage one image row (the WEA staging term).
pub fn row_mbits(cube: &HyperCube) -> f64 {
    (cube.samples() * cube.bands() * 32) as f64 / 1.0e6
}

/// One ATDCA/UFCLS winner-selection round: every rank contributes its
/// local `candidate`; every rank returns the round's global winner.
///
/// Two schedules, selected by `options.collectives.allreduce`:
///
/// * `Linear` (the default) — the legacy split path, bit- and
///   timing-identical to the historic code: gather `Msg::Candidate`s to
///   the root, re-score there (`rescore_flops` per surviving candidate,
///   charged sequential), broadcast the winning spectrum. Workers get a
///   zero-coordinate stand-in carrying the winning spectrum, exactly as
///   the historic per-algorithm code built it. When
///   `options.bcast_overlap` is set, the broadcast goes through
///   [`coll::broadcast_overlap`] and `post_mflops` is charged in
///   per-chunk slices as endmember bytes arrive.
/// * any tree algorithm — one fused [`coll::allreduce`] over the
///   candidates with the [`better_candidate`] fold. Scores travel with
///   the candidates, so the master re-scoring pass disappears and every
///   rank (workers included) learns the winner's real coordinates in a
///   single tree traversal. `post_mflops` is charged whole after the
///   collective: chunk overlap does not compose with the fused schedule
///   (see docs/COMMS.md).
///
/// `post_mflops` is the round's follow-up parallel compute (ATDCA's
/// basis growth, UFCLS's next-round Gram rebuild); pass `0.0` for none.
pub(crate) fn select_winner(
    ctx: &mut Ctx<Msg>,
    options: &RunOptions,
    candidate: Candidate,
    cand_bits: u64,
    u_row_bits: u64,
    rescore_flops: f64,
    post_mflops: f64,
) -> Candidate {
    if options.collectives.allreduce != CollAlgorithm::Linear {
        let winner = coll::allreduce(
            ctx,
            &options.collectives,
            0,
            Msg::candidate(candidate),
            |a, b| {
                Msg::candidate(better_candidate(
                    a.into_candidate()
                        .expect("select_winner: protocol violation"),
                    b.into_candidate()
                        .expect("select_winner: protocol violation"),
                ))
            },
            cand_bits,
        )
        .into_candidate()
        .expect("select_winner: protocol violation");
        if post_mflops > 0.0 {
            ctx.compute_par(post_mflops);
        }
        return winner;
    }
    let best = coll::gather(
        ctx,
        &options.collectives,
        0,
        Msg::candidate(candidate),
        cand_bits,
    )
    .map(|entries| {
        let cands: Vec<Candidate> = entries
            .into_iter()
            .filter_map(GatherEntry::into_msg)
            .map(|m| {
                m.into_candidate()
                    .expect("select_winner: protocol violation")
            })
            .collect();
        ctx.compute_seq(crate::flops::mflop(rescore_flops * cands.len() as f64));
        best_candidate(cands)
    });
    let selected = best
        .as_ref()
        .map(|b| Msg::spectra(vec![b.spectrum.clone()]));
    let delivered = if options.bcast_overlap {
        coll::broadcast_overlap(
            ctx,
            &options.collectives,
            0,
            selected,
            u_row_bits,
            |ctx, _chunk, k| {
                if post_mflops > 0.0 {
                    ctx.compute_par(post_mflops / k as f64);
                }
            },
        )
    } else {
        let d = coll::broadcast(ctx, &options.collectives, 0, selected, u_row_bits);
        if post_mflops > 0.0 {
            ctx.compute_par(post_mflops);
        }
        d
    };
    let spectrum = delivered
        .expect("select_winner: broadcast misuse")
        .into_spectra()
        .expect("select_winner: protocol violation")
        .remove(0);
    best.unwrap_or(Candidate {
        line: 0,
        sample: 0,
        score: 0.0,
        spectrum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoParams;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::presets;

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    fn cost(cube: &HyperCube) -> RowCost {
        RowCost {
            mflops_per_row: cube.samples() as f64 * 1e-3,
            mbits_per_row: row_mbits(cube),
            fixed_mflops: 0.0,
        }
    }

    #[test]
    fn distribute_reconstructs_the_image() {
        let s = scene();
        let cube = s.cube.clone();
        let platform = presets::fully_heterogeneous();
        let options = RunOptions::hetero();
        let assignments = plan_assignments(&platform, &cube, &options, cost(&cube));
        let engine = Engine::new(platform);
        let report = engine.run(|ctx: &mut Ctx<Msg>| {
            let block = distribute(ctx, &cube, &assignments, 0, ScatterMode::Free);
            // Every owned pixel must equal the original image pixel.
            for l in 0..block.n_lines {
                for smp in 0..cube.samples() {
                    let local = block.cube.pixel(block.pre + l, smp);
                    let global = cube.pixel(block.first_line + l, smp);
                    assert_eq!(local, global);
                }
            }
            block.n_lines
        });
        let total: usize = report.results.iter().map(|r| r.unwrap()).sum();
        assert_eq!(total, cube.lines());
    }

    #[test]
    fn distribute_with_overlap_has_halo() {
        let s = scene();
        let cube = s.cube.clone();
        let platform = presets::thunderhead(4);
        let options = RunOptions::homo();
        let assignments = plan_assignments(&platform, &cube, &options, cost(&cube));
        let engine = Engine::new(platform);
        let report = engine.run(|ctx: &mut Ctx<Msg>| {
            let block = distribute(ctx, &cube, &assignments, 2, ScatterMode::Free);
            (block.pre, block.cube.lines() - block.pre - block.n_lines)
        });
        // Interior ranks get halo on both sides; rank 0 has none above.
        assert_eq!(report.result(0).0, 0);
        assert_eq!(report.result(0).1, 2);
        assert_eq!(report.result(1).0, 2);
        assert_eq!(report.result(3).1, 0);
    }

    #[test]
    fn gather_labels_assembles_full_image() {
        let s = scene();
        let cube = s.cube.clone();
        let platform = presets::thunderhead(3);
        let options = RunOptions::homo();
        let assignments = plan_assignments(&platform, &cube, &options, cost(&cube));
        let engine = Engine::new(platform);
        let lines = cube.lines();
        let samples = cube.samples();
        let run = run_rooted(&engine, |ctx| {
            let block = distribute(ctx, &cube, &assignments, 0, ScatterMode::Free);
            // Label every pixel with its global line number.
            let labels: Vec<u16> = (0..block.n_lines * samples)
                .map(|i| (block.first_line + i / samples) as u16)
                .collect();
            gather_labels(
                ctx,
                &CollectiveConfig::linear(),
                &block,
                labels,
                lines,
                samples,
            )
        });
        for l in 0..lines {
            for smp in 0..samples {
                assert_eq!(run.result.get(l, smp), l as u16);
            }
        }
        assert!(run.report.total_time > 0.0);
    }

    #[test]
    fn local_block_coordinate_mapping() {
        let block = LocalBlock {
            first_line: 100,
            n_lines: 10,
            pre: 3,
            cube: HyperCube::zeros(16, 4, 2),
        };
        assert_eq!(block.own_range(), (3, 13));
        assert_eq!(block.to_global_line(3), 100);
        assert_eq!(block.to_global_line(12), 109);
    }

    #[test]
    fn hetero_assignments_favor_fast_nodes() {
        let s = scene();
        let cube = s.cube.clone();
        let platform = presets::fully_heterogeneous();
        let asg_het = plan_assignments(&platform, &cube, &RunOptions::hetero(), cost(&cube));
        let asg_hom = plan_assignments(&platform, &cube, &RunOptions::homo(), cost(&cube));
        // p3 (fastest) gets more rows under WEA than equal split.
        assert!(asg_het[2].n_lines > asg_hom[2].n_lines);
        // p10 (UltraSparc) gets fewer.
        assert!(asg_het[9].n_lines < asg_hom[9].n_lines);
        let _ = AlgoParams::default();
    }
}
