//! Algorithm parameters and run options.

use crate::wea::WeaConfig;
use simnet::coll::CollectiveConfig;
use simnet::comm::ScatterMode;

/// Parameters of the analysis algorithms, defaulting to the paper's
/// experimental settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoParams {
    /// Number of targets `t` extracted by ATDCA/UFCLS (paper: 18, the
    /// scene's estimated intrinsic dimensionality).
    pub num_targets: usize,
    /// Number of classes `c` for PCT/MORPH (paper: 7, the USGS
    /// dust/debris map classes).
    pub num_classes: usize,
    /// MORPH iterations `I_max` (paper: 5).
    pub morph_iterations: usize,
    /// Structuring-element radius (paper: a 3×3 square, radius 1).
    pub se_radius: usize,
    /// SAD threshold (radians) under which two spectra count as the same
    /// endmember when building unique sets.
    pub sad_threshold: f64,
}

impl Default for AlgoParams {
    fn default() -> Self {
        AlgoParams {
            num_targets: 18,
            num_classes: 7,
            morph_iterations: 5,
            se_radius: 1,
            sad_threshold: 0.04,
        }
    }
}

/// How the image is partitioned across processors — the Hetero-X /
/// Homo-X axis of the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionStrategy {
    /// WEA fractions (Algorithm 1): proportional to processor speed,
    /// memory-bounded, optionally link-aware.
    Heterogeneous(WeaConfig),
    /// Equal fractions — the "homogeneous version" of each algorithm.
    Homogeneous,
}

impl PartitionStrategy {
    /// The paper's heterogeneous default.
    pub fn hetero() -> Self {
        PartitionStrategy::Heterogeneous(WeaConfig::default())
    }
}

/// How many halo lines Hetero-MORPH's partitions carry on each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapPolicy {
    /// `2 · radius(B) · I_max` lines: interior MEI scores are
    /// bit-identical to the sequential computation (proved in
    /// `hsi-morpho`'s tests). Costly at high processor counts.
    Exact,
    /// `radius(B)` lines: enough for any single kernel application, as
    /// the paper's wording ("avoid accesses outside the local image
    /// domain") and its near-linear 256-processor MORPH scaling imply.
    /// Pixels within `2·r·I_max` lines of a partition boundary may score
    /// slightly differently than sequentially — the accuracy impact is
    /// bounded by the `ablation_overlap` bench.
    #[default]
    SingleKernel,
}

impl OverlapPolicy {
    /// Halo lines per side for a structuring-element radius and
    /// iteration count.
    pub fn halo_lines(self, se_radius: usize, iterations: usize) -> usize {
        match self {
            OverlapPolicy::Exact => 2 * se_radius * iterations,
            OverlapPolicy::SingleKernel => se_radius,
        }
    }
}

/// Options governing a parallel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Partitioning strategy (Hetero vs Homo).
    pub strategy: PartitionStrategy,
    /// Whether the initial partition scatter pays transfer cost.
    /// Default [`ScatterMode::Free`]: the paper states its workloads'
    /// "amount of communication is much less than the amount of
    /// computation", and its reported totals are impossible if the ~1 GB
    /// image had paid Table-2 transfer rates — i.e., the image was
    /// effectively pre-staged. The `ablation_scatter` bench flips this
    /// to [`ScatterMode::Charged`] to quantify staging effects (where
    /// the makespan WEA shows its network adaptation). See DESIGN.md.
    pub scatter_mode: ScatterMode,
    /// MORPH halo sizing (see [`OverlapPolicy`]).
    pub morph_overlap: OverlapPolicy,
    /// Collective-communication backend for the algorithms' broadcast /
    /// gather / reduce steps (see `simnet::coll` and docs/COMMS.md).
    /// Default [`CollectiveConfig::linear`], the paper's star schedule —
    /// existing timings are unchanged unless this is set explicitly.
    /// `collectives.allreduce` also selects ATDCA/UFCLS winner
    /// selection: `Linear` keeps the legacy gather → master re-score →
    /// broadcast split; any tree algorithm fuses it onto one
    /// `simnet::coll::allreduce` schedule.
    pub collectives: CollectiveConfig,
    /// Overlap the per-round endmember broadcast with the round's
    /// follow-up compute: when the broadcast resolves to
    /// `PipelinedChunked`, leaf workers charge a slice of their
    /// post-broadcast compute per received chunk (ATDCA basis update,
    /// UFCLS Gram rebuild) instead of all of it afterwards. Outputs are
    /// bit-identical; virtual time never increases. Default `false`.
    pub bcast_overlap: bool,
    /// When ranks offload their pixel-parallel kernels to an attached
    /// accelerator (see [`crate::offload`] and `simnet::accel`).
    /// Default [`crate::offload::OffloadPolicy::Never`] — existing runs
    /// are unchanged. `Auto` decides per kernel from the analytic cost
    /// model; WEA partitioning then reads *effective* (host + device)
    /// node speeds. Kernel outputs are bit-identical under every
    /// policy — only time accounting and partition sizing change.
    pub offload: crate::offload::OffloadPolicy,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            strategy: PartitionStrategy::hetero(),
            scatter_mode: ScatterMode::Free,
            morph_overlap: OverlapPolicy::default(),
            collectives: CollectiveConfig::linear(),
            bcast_overlap: false,
            offload: crate::offload::OffloadPolicy::Never,
        }
    }
}

impl RunOptions {
    /// Heterogeneous strategy with defaults.
    pub fn hetero() -> Self {
        RunOptions::default()
    }

    /// Homogeneous strategy with defaults.
    pub fn homo() -> Self {
        RunOptions {
            strategy: PartitionStrategy::Homogeneous,
            ..Default::default()
        }
    }

    /// Replaces the collective backend, builder-style.
    pub fn with_collectives(mut self, collectives: CollectiveConfig) -> Self {
        self.collectives = collectives;
        self
    }

    /// Enables or disables broadcast/compute chunk overlap,
    /// builder-style (see [`RunOptions::bcast_overlap`]).
    pub fn with_bcast_overlap(mut self, overlap: bool) -> Self {
        self.bcast_overlap = overlap;
        self
    }

    /// Replaces the offload policy, builder-style (see
    /// [`RunOptions::offload`]).
    pub fn with_offload(mut self, offload: crate::offload::OffloadPolicy) -> Self {
        self.offload = offload;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = AlgoParams::default();
        assert_eq!(p.num_targets, 18);
        assert_eq!(p.num_classes, 7);
        assert_eq!(p.morph_iterations, 5);
        assert_eq!(p.se_radius, 1);
    }

    #[test]
    fn strategy_constructors() {
        assert_eq!(RunOptions::homo().strategy, PartitionStrategy::Homogeneous);
        assert!(matches!(
            RunOptions::hetero().strategy,
            PartitionStrategy::Heterogeneous(_)
        ));
        assert_eq!(RunOptions::default().scatter_mode, ScatterMode::Free);
        assert!(!RunOptions::default().bcast_overlap);
        assert!(RunOptions::hetero().with_bcast_overlap(true).bcast_overlap);
        assert_eq!(
            RunOptions::default().offload,
            crate::offload::OffloadPolicy::Never
        );
        assert_eq!(
            RunOptions::hetero()
                .with_offload(crate::offload::OffloadPolicy::Auto)
                .offload,
            crate::offload::OffloadPolicy::Auto
        );
    }
}
