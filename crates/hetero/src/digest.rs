//! Bit-exact digests of algorithm outputs — the oracle hook the chaos
//! harness (and any differential test) compares instead of dragging
//! whole output structures around.
//!
//! Every digest is FNV-1a over the *bit patterns* of the output
//! (`f32::to_bits` / `f64::to_bits`, dimensions included), so two
//! outputs digest equal **iff** they are bit-identical — the same
//! contract as the suites' `assert_eq!(a.spectrum, b.spectrum)` checks,
//! collapsed to a `u64`. Digests are deterministic across runs, hosts
//! and (unlike `std::hash`) Rust releases.

use crate::seq::{DetectedTarget, PctModel};
use hsi_cube::LabelImage;

/// Streaming FNV-1a (64-bit) over structural words.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// Folds one 64-bit word into the digest, byte by byte.
    pub fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds an `f64` by bit pattern (`-0.0 != 0.0`, NaN payloads kept).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Folds an `f32` by bit pattern.
    pub fn write_f32(&mut self, value: f32) {
        self.write_u64(value.to_bits() as u64);
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Types with a deterministic bit-exact digest. Implemented for every
/// `ChunkedAlgo::Output` in the workspace so harnesses can compare
/// heterogeneous output types through one entry point.
pub trait OutputDigest {
    /// FNV-1a digest of the full output bit pattern.
    fn digest64(&self) -> u64;
}

impl OutputDigest for Vec<DetectedTarget> {
    fn digest64(&self) -> u64 {
        let mut h = Fnv64::default();
        h.write_u64(self.len() as u64);
        for t in self {
            h.write_u64(t.line as u64);
            h.write_u64(t.sample as u64);
            h.write_u64(t.spectrum.len() as u64);
            for &v in &t.spectrum {
                h.write_f32(v);
            }
        }
        h.finish()
    }
}

impl OutputDigest for LabelImage {
    fn digest64(&self) -> u64 {
        let mut h = Fnv64::default();
        h.write_u64(self.lines() as u64);
        h.write_u64(self.samples() as u64);
        for &label in self.as_slice() {
            h.write_u64(label as u64);
        }
        h.finish()
    }
}

impl OutputDigest for PctModel {
    fn digest64(&self) -> u64 {
        let mut h = Fnv64::default();
        h.write_u64(self.transform.rows() as u64);
        h.write_u64(self.transform.cols() as u64);
        for &v in self.transform.as_slice() {
            h.write_f64(v);
        }
        h.write_u64(self.mean.len() as u64);
        for &v in &self.mean {
            h.write_f64(v);
        }
        h.write_u64(self.class_reps.len() as u64);
        for rep in &self.class_reps {
            h.write_u64(rep.len() as u64);
            for &v in rep {
                h.write_f64(v);
            }
        }
        h.finish()
    }
}

/// PCT output: label image plus the broadcast model.
impl OutputDigest for (LabelImage, PctModel) {
    fn digest64(&self) -> u64 {
        let mut h = Fnv64::default();
        h.write_u64(self.0.digest64());
        h.write_u64(self.1.digest64());
        h.finish()
    }
}

/// MORPH output: label image plus endmember spectra.
impl OutputDigest for (LabelImage, Vec<Vec<f32>>) {
    fn digest64(&self) -> u64 {
        let mut h = Fnv64::default();
        h.write_u64(self.0.digest64());
        h.write_u64(self.1.len() as u64);
        for e in &self.1 {
            h.write_u64(e.len() as u64);
            for &v in e {
                h.write_f32(v);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(line: usize, sample: usize, s: &[f32]) -> DetectedTarget {
        DetectedTarget {
            line,
            sample,
            spectrum: s.to_vec(),
        }
    }

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let a = vec![target(0, 1, &[0.5, 0.25]), target(2, 3, &[1.0])];
        let b = vec![target(0, 1, &[0.5, 0.25]), target(2, 3, &[1.0])];
        assert_eq!(a.digest64(), b.digest64());
        let swapped = vec![target(2, 3, &[1.0]), target(0, 1, &[0.5, 0.25])];
        assert_ne!(a.digest64(), swapped.digest64());
    }

    #[test]
    fn digest_sees_single_bit_spectrum_flips() {
        let a = vec![target(0, 0, &[1.0])];
        let mut flipped = a.clone();
        flipped[0].spectrum[0] = f32::from_bits(1.0f32.to_bits() ^ 1);
        assert_ne!(a.digest64(), flipped.digest64());
    }

    #[test]
    fn digest_distinguishes_boundary_shifts() {
        // Same flattened words, different structure: the length prefixes
        // must keep [[1,2],[…]] apart from [[1],[2,…]].
        let a: Vec<DetectedTarget> = vec![target(0, 0, &[1.0, 2.0]), target(0, 0, &[])];
        let b: Vec<DetectedTarget> = vec![target(0, 0, &[1.0]), target(0, 0, &[2.0])];
        assert_ne!(a.digest64(), b.digest64());
    }

    #[test]
    fn label_image_digest_sees_geometry() {
        let a = LabelImage::from_vec(2, 3, vec![0, 1, 2, 3, 4, 5]);
        let b = LabelImage::from_vec(3, 2, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.digest64(), a.clone().digest64());
        assert_ne!(a.digest64(), b.digest64());
    }

    #[test]
    fn negative_zero_and_nan_are_distinct_bit_patterns() {
        let z = vec![target(0, 0, &[0.0])];
        let nz = vec![target(0, 0, &[-0.0])];
        assert_ne!(z.digest64(), nz.digest64());
    }
}
