//! The parallel heterogeneous algorithms (paper Algorithms 2–5).
//!
//! Each submodule exposes `run(engine, cube, params, options)` returning
//! a [`crate::framework::ParallelRun`] with the root's analysis result
//! and the timing report. The Hetero-X / Homo-X pairs of the paper's
//! tables are selected through
//! [`crate::config::RunOptions::strategy`].

pub mod atdca;
pub mod morph;
pub mod pct;
pub mod ufcls;

use crate::msg::Candidate;

/// The winner order: highest score, ties to the lowest `(line, sample)`
/// — a total order on candidates with distinct coordinates, which is
/// what makes the pairwise fold of [`better_candidate`] associative and
/// commutative (so tree allreduces agree bit-for-bit with a sequential
/// scan).
fn candidate_order(a: &Candidate, b: &Candidate) -> std::cmp::Ordering {
    a.score
        .partial_cmp(&b.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| (b.line, b.sample).cmp(&(a.line, a.sample)))
}

/// Deterministically selects the winning candidate: highest score, ties
/// to the lowest `(line, sample)` — the same order a sequential scan of
/// the whole image would produce.
pub(crate) fn best_candidate(cands: Vec<Candidate>) -> Candidate {
    cands
        .into_iter()
        .max_by(candidate_order)
        .expect("best_candidate: no candidates")
}

/// The pairwise max under [`candidate_order`] — the fold ATDCA/UFCLS
/// hand to `simnet::coll::allreduce`. Folding any grouping/ordering of
/// distinct-coordinate candidates with this equals [`best_candidate`]
/// over the same set.
pub(crate) fn better_candidate(a: Candidate, b: Candidate) -> Candidate {
    if candidate_order(&a, &b) == std::cmp::Ordering::Greater {
        a
    } else {
        b
    }
}

/// A sentinel candidate that never wins (sent by ranks with empty
/// partitions so the gather pattern stays uniform).
pub(crate) fn empty_candidate(bands: usize) -> Candidate {
    Candidate {
        line: u32::MAX,
        sample: u32::MAX,
        score: f64::NEG_INFINITY,
        spectrum: vec![0.0; bands],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(line: u32, sample: u32, score: f64) -> Candidate {
        Candidate {
            line,
            sample,
            score,
            spectrum: vec![],
        }
    }

    #[test]
    fn best_candidate_picks_highest_score() {
        let best = best_candidate(vec![cand(0, 0, 1.0), cand(1, 1, 3.0), cand(2, 2, 2.0)]);
        assert_eq!((best.line, best.sample), (1, 1));
    }

    #[test]
    fn ties_resolve_to_lowest_coordinates() {
        let best = best_candidate(vec![cand(5, 5, 2.0), cand(1, 9, 2.0), cand(1, 2, 2.0)]);
        assert_eq!((best.line, best.sample), (1, 2));
    }

    #[test]
    fn sentinel_never_wins() {
        let best = best_candidate(vec![empty_candidate(4), cand(3, 3, -1.0)]);
        assert_eq!((best.line, best.sample), (3, 3));
    }

    #[test]
    fn pairwise_fold_agrees_with_best_candidate_for_any_grouping() {
        let cands = [
            cand(5, 5, 2.0),
            cand(1, 9, 2.0),
            cand(0, 0, -1.0),
            cand(1, 2, 2.0),
            cand(7, 7, 1.5),
        ];
        let best = best_candidate(cands.to_vec());
        // Left fold, right fold, and a tree grouping all agree.
        let left = cands
            .iter()
            .cloned()
            .reduce(better_candidate)
            .expect("nonempty");
        let right = cands
            .iter()
            .rev()
            .cloned()
            .reduce(better_candidate)
            .expect("nonempty");
        let tree = better_candidate(
            better_candidate(cands[0].clone(), cands[1].clone()),
            better_candidate(
                cands[2].clone(),
                better_candidate(cands[3].clone(), cands[4].clone()),
            ),
        );
        for (label, got) in [("left", left), ("right", right), ("tree", tree)] {
            assert_eq!(
                (got.line, got.sample),
                (best.line, best.sample),
                "{label} fold"
            );
        }
    }
}
