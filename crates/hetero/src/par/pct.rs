//! Hetero-PCT (paper Algorithm 4).
//!
//! Principal-component classification with the paper's parallel
//! decomposition:
//!
//! * steps 2–3 — workers build local unique spectral sets; the master
//!   merges them into `c` class representatives;
//! * steps 4–6 — workers accumulate mean/covariance partial sums over
//!   their partitions; the master merges them (the covariance is the
//!   merge of the per-partition accumulators);
//! * step 7 — the master eigendecomposes the covariance **sequentially**
//!   (the paper notes this step's data dependency), yielding the
//!   transform `T`;
//! * steps 8–9 — workers transform and classify their partitions; the
//!   master assembles the label image.
//!
//! The heavy sequential eigen step is why PCT exhibits the largest SEQ
//! component in Table 6 and the worst Thunderhead scaling in Figure 2.

use crate::config::{AlgoParams, RunOptions};
use crate::flops;
use crate::framework::{
    distribute, gather_labels, plan_assignments, row_mbits, run_rooted, ParallelRun,
};
use crate::kernels;
use crate::msg::Msg;
use crate::seq::{transform_reps, PctModel};
use crate::wea::RowCost;
use hsi_cube::{HyperCube, LabelImage};
use hsi_linalg::covariance::CovarianceAccumulator;
use hsi_linalg::eigen::SymmetricEigen;
use hsi_linalg::Matrix;
use simnet::coll::{self, GatherEntry};
use simnet::engine::Engine;

/// Estimated per-row resource demand (drives the WEA fractions).
pub fn row_cost(cube: &HyperCube, params: &AlgoParams) -> RowCost {
    let n = cube.bands();
    let c = params.num_classes;
    let per_pixel = flops::covariance_accumulate(n)
        + flops::pct_transform(n, c)
        + flops::pct_classify(c, c)
        + (4 * c) as f64 * flops::sad(n);
    RowCost {
        mflops_per_row: flops::mflop(per_pixel * cube.samples() as f64),
        mbits_per_row: row_mbits(cube),
        fixed_mflops: 0.0,
    }
}

/// Runs parallel PCT classification on the engine's platform.
pub fn run(
    engine: &Engine,
    cube: &HyperCube,
    params: &AlgoParams,
    options: &RunOptions,
) -> ParallelRun<(LabelImage, PctModel)> {
    let assignments = plan_assignments(engine.platform(), cube, options, row_cost(cube, params));
    let lines = cube.lines();
    let samples = cube.samples();
    run_rooted(engine, |ctx| {
        if ctx.is_root() {
            ctx.compute_seq(flops::mflop(20.0 * ctx.num_ranks() as f64));
        }
        let block = distribute(ctx, cube, &assignments, 0, options.scatter_mode);
        let n = block.cube.bands();
        let c = params.num_classes;
        let cap = 4 * c;
        // Bytes a device stages for this rank's pixel-parallel steps:
        // the owned pixel block in each time, the step's partial out.
        let block_bytes = (block.n_lines * block.cube.samples() * n * 4) as u64;
        let own_pixels = (block.n_lines * block.cube.samples()) as u64;

        // Steps 2-3: local unique sets -> master merge.
        let (set, mflops) =
            kernels::unique_set(&block.cube, block.own_range(), params.sad_threshold, cap);
        crate::offload::charge_chunk(
            ctx,
            options.offload,
            &crate::offload::ChunkCost::new(mflops, (block_bytes, cap as u64 * (n as u64 * 4 + 8))),
        );
        let local_cands: Vec<crate::msg::Candidate> = set
            .iter()
            .map(|p| p.to_candidate(&block.cube, block.first_line, block.pre))
            .collect();

        // Steps 4-5: local covariance partials (computed before the
        // gather so worker compute overlaps the master's merge).
        let (acc, mflops) = kernels::covariance_partial(&block.cube, block.own_range());
        crate::offload::charge_chunk(
            ctx,
            options.offload,
            &crate::offload::ChunkCost::new(
                mflops,
                (block_bytes, (n as u64 * (n as u64 + 3) / 2 + 1) * 8),
            ),
        );

        // Rank-uniform size hints for `Auto` selection: at most `cap`
        // candidates of (128 + 32n) bits each; a flat accumulator is a
        // fixed f64 count for a given n; the model is bounded by the
        // (c.min(n) × n) transform + mean + c representatives.
        let cands_bits = (cap as u64) * (128 + 32 * n as u64);
        let stats_bits = (acc.to_flat().len() * 64) as u64;
        let model_bits = ((c.min(n) * n + n + c * c.min(n)) * 64) as u64;

        // Steps 3 & 6 gathers: unique sets, then covariance partials.
        let cand_entries = coll::gather(
            ctx,
            &options.collectives,
            0,
            Msg::candidates(local_cands),
            cands_bits,
        );
        let stat_entries = coll::gather(
            ctx,
            &options.collectives,
            0,
            Msg::Stats(acc.to_flat()),
            stats_bits,
        );

        let selected = cand_entries.map(|cand_entries| {
            // Merge unique sets (step 3) in rank order.
            let mut scored: Vec<(Vec<f32>, f64)> = Vec::new();
            for msg in cand_entries.into_iter().filter_map(GatherEntry::into_msg) {
                for cand in msg.into_candidates().expect("pct: protocol violation") {
                    scored.push((cand.spectrum, cand.score));
                }
            }
            let (reps, mflops) = crate::seq::reduce_candidates(&scored, params.sad_threshold, c);
            ctx.compute_seq(mflops);

            // Merge covariance partials (step 6).
            let mut total = CovarianceAccumulator::new(n);
            for msg in stat_entries
                .expect("pct: root sees both gathers")
                .into_iter()
                .filter_map(GatherEntry::into_msg)
            {
                let flat = msg.into_stats().expect("pct: protocol violation");
                let other = CovarianceAccumulator::from_flat(n, &flat).expect("flat shape");
                total.merge(&other).expect("dim");
            }
            ctx.compute_seq(flops::mflop((ctx.num_ranks() * n * (n + 3) / 2) as f64));
            let mean = total.mean().expect("pct: empty image");
            let cov = total.covariance().expect("pct: empty image");

            // Step 7: sequential eigendecomposition at the master.
            let eig = SymmetricEigen::new(&cov).expect("pct: eigen failed");
            ctx.compute_seq(flops::mflop(flops::jacobi_eigen(n)));
            let transform = eig.principal_transform(c.min(n)).expect("pct: transform");
            let class_reps = transform_reps(&transform, &mean, &reps);
            ctx.compute_seq(flops::mflop(
                reps.len() as f64 * flops::pct_transform(n, transform.rows()),
            ));
            Msg::pct_model(
                (0..transform.rows())
                    .map(|r| transform.row(r).to_vec())
                    .collect(),
                mean,
                class_reps,
            )
        });

        // Broadcast the model; every rank (root included) decodes it.
        let (transform, mean, classes) =
            coll::broadcast(ctx, &options.collectives, 0, selected, model_bits)
                .expect("pct: broadcast misuse")
                .into_pct_model()
                .expect("pct: protocol violation");
        let rows: Vec<&[f64]> = transform.iter().map(|r| r.as_slice()).collect();
        let model = PctModel {
            transform: Matrix::from_rows(&rows),
            mean,
            class_reps: classes,
        };

        // Steps 8-9: transform + classify own lines, gather labels.
        let (labels, mflops) = kernels::pct_label(
            &block.cube,
            block.own_range(),
            &model.transform,
            &model.mean,
            &model.class_reps,
        );
        crate::offload::charge_chunk(
            ctx,
            options.offload,
            &crate::offload::ChunkCost::new(
                mflops,
                (
                    block_bytes + ((c.min(n) * n + n + c * c.min(n)) * 8) as u64,
                    own_pixels * 2,
                ),
            ),
        );
        let image = gather_labels(ctx, &options.collectives, &block, labels, lines, samples);
        image.map(|img| (img, model))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::presets;

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    fn params() -> AlgoParams {
        AlgoParams::default()
    }

    #[test]
    fn parallel_accuracy_close_to_sequential() {
        let s = scene();
        let seq = crate::seq::pct(&s.cube, &params());
        let seq_acc = hsi_cube::labels::score(&seq.result.0, &s.truth).overall;
        let engine = Engine::new(presets::fully_heterogeneous());
        let par = run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let par_acc = hsi_cube::labels::score(&par.result.0, &s.truth).overall;
        // Parallel unique-set construction differs from sequential (the
        // paper's algorithm is defined per-partition and the 16-worker
        // candidate pool is richer), so demand closeness, not equality.
        assert!(
            (seq_acc - par_acc).abs() < 25.0,
            "seq {seq_acc} vs par {par_acc}"
        );
        assert!(par_acc > 25.0, "par accuracy {par_acc}");
    }

    #[test]
    fn every_pixel_labeled() {
        let s = scene();
        let engine = Engine::new(presets::thunderhead(6));
        let par = run(&engine, &s.cube, &params(), &RunOptions::homo());
        assert_eq!(par.result.0.lines(), s.cube.lines());
        for &l in par.result.0.as_slice() {
            assert!(l < params().num_classes as u16);
        }
    }

    #[test]
    fn seq_component_is_large() {
        // Table 6: PCT has the largest SEQ share of the four algorithms
        // (the sequential eigendecomposition).
        let s = scene();
        let engine = Engine::new(presets::fully_heterogeneous());
        let pct = run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let atdca = crate::par::atdca::run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let d_pct = pct.report.decomposition();
        let d_atdca = atdca.report.decomposition();
        assert!(
            d_pct.seq / d_pct.total > d_atdca.seq / d_atdca.total,
            "PCT SEQ share {} !> ATDCA SEQ share {}",
            d_pct.seq / d_pct.total,
            d_atdca.seq / d_atdca.total
        );
    }
}
