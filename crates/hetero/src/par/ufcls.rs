//! Hetero-UFCLS (paper Algorithm 3).
//!
//! Shares ATDCA's master/worker skeleton (the first target is the
//! brightest pixel), but grows the target set by fully-constrained
//! least-squares error: each round, every rank unmixes its pixels
//! against the current endmember set `U` (sum-to-one + non-negativity)
//! and nominates the pixel with the largest reconstruction error; the
//! master picks the global winner and broadcasts it.

use crate::config::{AlgoParams, RunOptions};
use crate::flops;
use crate::framework::{
    distribute, plan_assignments, row_mbits, run_rooted, select_winner, ParallelRun,
};
use crate::kernels;
use crate::par::empty_candidate;
use crate::seq::DetectedTarget;
use crate::wea::RowCost;
use hsi_cube::HyperCube;
use hsi_linalg::lstsq::FclsProblem;
use hsi_linalg::Matrix;
use simnet::engine::Engine;

/// Estimated per-row resource demand (drives the WEA fractions).
pub fn row_cost(cube: &HyperCube, params: &AlgoParams) -> RowCost {
    let n = cube.bands();
    let per_pixel: f64 = flops::brightness(n)
        + (1..params.num_targets)
            .map(|t| flops::fcls(n, t))
            .sum::<f64>();
    RowCost {
        mflops_per_row: flops::mflop(per_pixel * cube.samples() as f64),
        mbits_per_row: row_mbits(cube),
        fixed_mflops: 0.0,
    }
}

fn endmember_matrix(targets: &[DetectedTarget]) -> Matrix {
    let rows: Vec<Vec<f64>> = targets
        .iter()
        .map(|t| t.spectrum.iter().map(|&v| v as f64).collect())
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Matrix::from_rows(&refs)
}

/// Runs parallel UFCLS on the engine's platform.
pub fn run(
    engine: &Engine,
    cube: &HyperCube,
    params: &AlgoParams,
    options: &RunOptions,
) -> ParallelRun<Vec<DetectedTarget>> {
    let assignments = plan_assignments(engine.platform(), cube, options, row_cost(cube, params));
    run_rooted(engine, |ctx| {
        if ctx.is_root() {
            ctx.compute_seq(flops::mflop(20.0 * ctx.num_ranks() as f64));
        }
        let block = distribute(ctx, cube, &assignments, 0, options.scatter_mode);
        let n = block.cube.bands();
        // Every rank mirrors the target list so it can rebuild the FCLS
        // problem each round (the broadcast of U in the paper).
        let mut targets: Vec<DetectedTarget> = Vec::new();
        // Rank-uniform size hints for `Auto` selection.
        let cand_bits = 128 + 32 * n as u64;
        let u_row_bits = 32 * n as u64;
        // Bytes a device stages to unmix this rank's partition: the
        // owned pixel block in, one candidate out.
        let block_bytes = (block.n_lines * block.cube.samples() * n * 4) as u64;

        for k in 0..params.num_targets {
            let (cand, mflops) = if k == 0 {
                kernels::brightest(&block.cube, block.own_range())
            } else {
                // The Gram rebuild for this round was charged as the
                // previous round's follow-up compute (so the endmember
                // broadcast can overlap it); only the host-side factor
                // construction happens here.
                let u = endmember_matrix(&targets);
                let problem = FclsProblem::new(u).expect("ufcls: singular endmembers");
                kernels::max_fcls_error(&block.cube, &problem, block.own_range())
            };
            let cost = crate::offload::ChunkCost::new(
                mflops,
                (block_bytes + (k * n * 4) as u64, (n * 4 + 16) as u64),
            );
            crate::offload::charge_chunk(ctx, options.offload, &cost);
            let candidate = match cand {
                Some(p) => p.to_candidate(&block.cube, block.first_line, block.pre),
                None => empty_candidate(n),
            };

            // Winner selection (gather → master re-score → broadcast,
            // or one fused allreduce — see `select_winner`), with the
            // next round's Gram rebuild as the overlappable follow-up.
            let next_gram = if k + 1 < params.num_targets {
                flops::mflop(flops::gram(n, k + 1))
            } else {
                0.0
            };
            let winner = select_winner(
                ctx,
                options,
                candidate,
                cand_bits,
                u_row_bits,
                flops::fcls(n, k.max(1)),
                next_gram,
            );
            targets.push(DetectedTarget {
                line: winner.line as usize,
                sample: winner.sample as usize,
                spectrum: winner.spectrum,
            });
        }
        if ctx.is_root() {
            Some(targets)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::presets;

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    fn params() -> AlgoParams {
        AlgoParams {
            num_targets: 6,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_targets() {
        let s = scene();
        let seq = crate::seq::ufcls(&s.cube, &params());
        let engine = Engine::new(presets::fully_heterogeneous());
        let par = run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let seq_coords: Vec<_> = seq.result.iter().map(|t| (t.line, t.sample)).collect();
        let par_coords: Vec<_> = par
            .result
            .iter()
            .map(|t| (t.line, t.sample))
            .collect::<Vec<_>>();
        assert_eq!(seq_coords, par_coords);
    }

    #[test]
    fn first_target_is_brightest_pixel() {
        let s = scene();
        let engine = Engine::new(presets::thunderhead(4));
        let par = run(&engine, &s.cube, &params(), &RunOptions::homo());
        let ((bl, bs), _) = s.cube.brightest_pixel().unwrap();
        assert_eq!((par.result[0].line, par.result[0].sample), (bl, bs));
    }

    #[test]
    fn ufcls_cheaper_than_atdca_in_virtual_time() {
        // Table 5: UFCLS (51-56 s) runs faster than ATDCA (84-89 s).
        let s = scene();
        let engine = Engine::new(presets::fully_heterogeneous());
        let p = AlgoParams {
            num_targets: 8,
            ..Default::default()
        };
        let u = run(&engine, &s.cube, &p, &RunOptions::hetero());
        let a = crate::par::atdca::run(&engine, &s.cube, &p, &RunOptions::hetero());
        assert!(
            u.report.total_time < a.report.total_time,
            "UFCLS {} !< ATDCA {}",
            u.report.total_time,
            a.report.total_time
        );
    }
}
