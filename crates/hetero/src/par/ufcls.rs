//! Hetero-UFCLS (paper Algorithm 3).
//!
//! Shares ATDCA's master/worker skeleton (the first target is the
//! brightest pixel), but grows the target set by fully-constrained
//! least-squares error: each round, every rank unmixes its pixels
//! against the current endmember set `U` (sum-to-one + non-negativity)
//! and nominates the pixel with the largest reconstruction error; the
//! master picks the global winner and broadcasts it.

use crate::config::{AlgoParams, RunOptions};
use crate::flops;
use crate::framework::{distribute, plan_assignments, row_mbits, run_rooted, ParallelRun};
use crate::kernels;
use crate::msg::Msg;
use crate::par::{best_candidate, empty_candidate};
use crate::seq::DetectedTarget;
use crate::wea::RowCost;
use hsi_cube::HyperCube;
use hsi_linalg::lstsq::FclsProblem;
use hsi_linalg::Matrix;
use simnet::coll::{self, GatherEntry};
use simnet::engine::Engine;

/// Estimated per-row resource demand (drives the WEA fractions).
pub fn row_cost(cube: &HyperCube, params: &AlgoParams) -> RowCost {
    let n = cube.bands();
    let per_pixel: f64 = flops::brightness(n)
        + (1..params.num_targets)
            .map(|t| flops::fcls(n, t))
            .sum::<f64>();
    RowCost {
        mflops_per_row: flops::mflop(per_pixel * cube.samples() as f64),
        mbits_per_row: row_mbits(cube),
        fixed_mflops: 0.0,
    }
}

fn endmember_matrix(targets: &[DetectedTarget]) -> Matrix {
    let rows: Vec<Vec<f64>> = targets
        .iter()
        .map(|t| t.spectrum.iter().map(|&v| v as f64).collect())
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Matrix::from_rows(&refs)
}

/// Runs parallel UFCLS on the engine's platform.
pub fn run(
    engine: &Engine,
    cube: &HyperCube,
    params: &AlgoParams,
    options: &RunOptions,
) -> ParallelRun<Vec<DetectedTarget>> {
    let assignments = plan_assignments(engine.platform(), cube, options, row_cost(cube, params));
    run_rooted(engine, |ctx| {
        if ctx.is_root() {
            ctx.compute_seq(flops::mflop(20.0 * ctx.num_ranks() as f64));
        }
        let block = distribute(ctx, cube, &assignments, 0, options.scatter_mode);
        let n = block.cube.bands();
        // Every rank mirrors the target list so it can rebuild the FCLS
        // problem each round (the broadcast of U in the paper).
        let mut targets: Vec<DetectedTarget> = Vec::new();
        // Rank-uniform size hints for `Auto` selection.
        let cand_bits = 128 + 32 * n as u64;
        let u_row_bits = 32 * n as u64;

        for k in 0..params.num_targets {
            let (cand, mflops) = if k == 0 {
                kernels::brightest(&block.cube, block.own_range())
            } else {
                let u = endmember_matrix(&targets);
                let t = u.rows();
                let problem = FclsProblem::new(u).expect("ufcls: singular endmembers");
                ctx.compute_par(flops::mflop(flops::gram(n, t)));
                kernels::max_fcls_error(&block.cube, &problem, block.own_range())
            };
            ctx.compute_par(mflops);
            let candidate = match cand {
                Some(p) => p.to_candidate(&block.cube, block.first_line, block.pre),
                None => empty_candidate(n),
            };

            let entries = coll::gather(
                ctx,
                &options.collectives,
                0,
                Msg::Candidate(candidate),
                cand_bits,
            );
            let best = entries.map(|entries| {
                let cands: Vec<_> = entries
                    .into_iter()
                    .filter_map(GatherEntry::into_msg)
                    .map(|m| m.into_candidate().expect("ufcls: protocol violation"))
                    .collect();
                ctx.compute_seq(flops::mflop(flops::fcls(n, k.max(1)) * cands.len() as f64));
                best_candidate(cands)
            });
            let selected = best
                .as_ref()
                .map(|b| Msg::Spectra(vec![b.spectrum.clone()]));
            let spectrum = coll::broadcast(ctx, &options.collectives, 0, selected, u_row_bits)
                .expect("ufcls: broadcast misuse")
                .into_spectra()
                .expect("ufcls: protocol violation")
                .remove(0);
            let winner = best.unwrap_or(crate::msg::Candidate {
                line: 0,
                sample: 0,
                score: 0.0,
                spectrum,
            });
            targets.push(DetectedTarget {
                line: winner.line as usize,
                sample: winner.sample as usize,
                spectrum: winner.spectrum,
            });
        }
        if ctx.is_root() {
            Some(targets)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::presets;

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    fn params() -> AlgoParams {
        AlgoParams {
            num_targets: 6,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_targets() {
        let s = scene();
        let seq = crate::seq::ufcls(&s.cube, &params());
        let engine = Engine::new(presets::fully_heterogeneous());
        let par = run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let seq_coords: Vec<_> = seq.result.iter().map(|t| (t.line, t.sample)).collect();
        let par_coords: Vec<_> = par
            .result
            .iter()
            .map(|t| (t.line, t.sample))
            .collect::<Vec<_>>();
        assert_eq!(seq_coords, par_coords);
    }

    #[test]
    fn first_target_is_brightest_pixel() {
        let s = scene();
        let engine = Engine::new(presets::thunderhead(4));
        let par = run(&engine, &s.cube, &params(), &RunOptions::homo());
        let ((bl, bs), _) = s.cube.brightest_pixel().unwrap();
        assert_eq!((par.result[0].line, par.result[0].sample), (bl, bs));
    }

    #[test]
    fn ufcls_cheaper_than_atdca_in_virtual_time() {
        // Table 5: UFCLS (51-56 s) runs faster than ATDCA (84-89 s).
        let s = scene();
        let engine = Engine::new(presets::fully_heterogeneous());
        let p = AlgoParams {
            num_targets: 8,
            ..Default::default()
        };
        let u = run(&engine, &s.cube, &p, &RunOptions::hetero());
        let a = crate::par::atdca::run(&engine, &s.cube, &p, &RunOptions::hetero());
        assert!(
            u.report.total_time < a.report.total_time,
            "UFCLS {} !< ATDCA {}",
            u.report.total_time,
            a.report.total_time
        );
    }
}
