//! Hetero-ATDCA (paper Algorithm 2).
//!
//! Master/worker iterative target detection:
//!
//! 1. WEA partitions the cube; the master scatters the partitions.
//! 2. Every rank finds its brightest local pixel; candidates are
//!    gathered and the master selects the global brightest `t⁽¹⁾`.
//! 3. The master broadcasts the (new row of the) target matrix `U`.
//! 4. Every rank finds its local maximiser of the orthogonal-projection
//!    score `(P_U^⊥ x)ᵀ(P_U^⊥ x)`; the master selects the winner and
//!    grows `U`. Repeat until `t` targets are found.
//!
//! Workers keep the projector as an incrementally grown orthonormal
//! basis (`O(tN)` apply instead of the `O(N²)` explicit matrix — see
//! `hsi_linalg::ortho`).

use crate::config::{AlgoParams, RunOptions};
use crate::flops;
use crate::framework::{
    distribute, plan_assignments, row_mbits, run_rooted, select_winner, ParallelRun,
};
use crate::kernels;
use crate::par::empty_candidate;
use crate::seq::DetectedTarget;
use crate::wea::RowCost;
use hsi_cube::HyperCube;
use hsi_linalg::ortho::OrthoBasis;
use simnet::engine::Engine;

/// Estimated per-row resource demand (drives the WEA fractions).
pub fn row_cost(cube: &HyperCube, params: &AlgoParams) -> RowCost {
    let n = cube.bands();
    let per_pixel: f64 = (0..params.num_targets)
        .map(|k| flops::projection_score(n, k))
        .sum();
    RowCost {
        mflops_per_row: flops::mflop(per_pixel * cube.samples() as f64),
        mbits_per_row: row_mbits(cube),
        fixed_mflops: 0.0,
    }
}

/// Runs parallel ATDCA on the engine's platform.
pub fn run(
    engine: &Engine,
    cube: &HyperCube,
    params: &AlgoParams,
    options: &RunOptions,
) -> ParallelRun<Vec<DetectedTarget>> {
    let assignments = plan_assignments(engine.platform(), cube, options, row_cost(cube, params));
    run_rooted(engine, |ctx| {
        // Root's WEA planning (Algorithm 1): trivial arithmetic over P
        // processors, charged as sequential work.
        if ctx.is_root() {
            ctx.compute_seq(flops::mflop(20.0 * ctx.num_ranks() as f64));
        }
        let block = distribute(ctx, cube, &assignments, 0, options.scatter_mode);
        let n = block.cube.bands();
        let mut basis = OrthoBasis::new(n);
        let mut targets: Vec<DetectedTarget> = Vec::new();
        // Bytes a device stages to score this rank's partition: the
        // owned pixel block in, one candidate out.
        let block_bytes = (block.n_lines * block.cube.samples() * n * 4) as u64;
        // Rank-uniform size hints for `Auto` selection (see docs/COMMS.md):
        // a Candidate is 128 header bits + an n-band f32 spectrum; a
        // broadcast row of `U` is one n-band f32 spectrum.
        let cand_bits = 128 + 32 * n as u64;
        let u_row_bits = 32 * n as u64;

        for k in 0..params.num_targets {
            // Local candidate (step 2 for k = 0, step 4 otherwise).
            let (cand, mflops) = if k == 0 {
                kernels::brightest(&block.cube, block.own_range())
            } else {
                kernels::max_projection(&block.cube, &basis, block.own_range())
            };
            let cost = crate::offload::ChunkCost::new(
                mflops,
                (block_bytes + (k * n * 4) as u64, (n * 4 + 16) as u64),
            );
            crate::offload::charge_chunk(ctx, options.offload, &cost);
            let candidate = match cand {
                Some(p) => p.to_candidate(&block.cube, block.first_line, block.pre),
                None => empty_candidate(n),
            };

            // Winner selection (steps 3/5): gather → master re-score →
            // broadcast of the new target row of U, or one fused
            // allreduce — see `select_winner`. The basis-growth charge
            // is the round's overlappable follow-up compute.
            let winner = select_winner(
                ctx,
                options,
                candidate,
                cand_bits,
                u_row_bits,
                flops::projection_score(n, k),
                flops::mflop(flops::basis_push(n, k)),
            );
            if ctx.is_root() {
                targets.push(DetectedTarget {
                    line: winner.line as usize,
                    sample: winner.sample as usize,
                    spectrum: winner.spectrum.clone(),
                });
            }

            // All ranks grow their local orthonormal basis (host-side;
            // its flops were charged inside `select_winner`).
            let wide: Vec<f64> = winner.spectrum.iter().map(|&v| v as f64).collect();
            basis.push(&wide);
        }
        if ctx.is_root() {
            Some(targets)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::presets;

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    fn params() -> AlgoParams {
        AlgoParams {
            num_targets: 8,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_targets() {
        let s = scene();
        let seq = crate::seq::atdca(&s.cube, &params());
        for platform in [presets::fully_heterogeneous(), presets::thunderhead(5)] {
            let engine = Engine::new(platform);
            let par = run(&engine, &s.cube, &params(), &RunOptions::hetero());
            let seq_coords: Vec<_> = seq.result.iter().map(|t| (t.line, t.sample)).collect();
            let par_coords: Vec<_> = par.result.iter().map(|t| (t.line, t.sample)).collect();
            assert_eq!(
                seq_coords, par_coords,
                "parallel ATDCA must equal sequential on {}",
                par.report.platform_name
            );
        }
    }

    #[test]
    fn homo_strategy_also_matches_sequential() {
        let s = scene();
        let seq = crate::seq::atdca(&s.cube, &params());
        let engine = Engine::new(presets::fully_heterogeneous());
        let par = run(&engine, &s.cube, &params(), &RunOptions::homo());
        assert_eq!(par.result.len(), seq.result.len());
        for (a, b) in par.result.iter().zip(&seq.result) {
            assert_eq!((a.line, a.sample), (b.line, b.sample));
        }
    }

    #[test]
    fn hetero_beats_homo_on_heterogeneous_platform() {
        let s = scene();
        let engine = Engine::new(presets::fully_heterogeneous());
        let het = run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let hom = run(&engine, &s.cube, &params(), &RunOptions::homo());
        assert!(
            het.report.total_time < hom.report.total_time,
            "hetero {} !< homo {}",
            het.report.total_time,
            hom.report.total_time
        );
    }

    #[test]
    fn report_decomposition_is_consistent() {
        let s = scene();
        let engine = Engine::new(presets::fully_heterogeneous());
        let out = run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let d = out.report.decomposition();
        assert!(d.com >= 0.0 && d.seq > 0.0 && d.par > 0.0);
        assert!((d.com + d.seq + d.par - d.total).abs() < 1e-9);
        let imb = out.report.imbalance();
        assert!(imb.d_all >= 1.0 && imb.d_minus >= 1.0);
    }
}
