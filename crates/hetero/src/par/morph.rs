//! Hetero-MORPH (paper Algorithm 5).
//!
//! Spatial/spectral morphological classification:
//!
//! 1. WEA partitions the cube **with overlap borders** (redundant
//!    computation instead of halo communication — the paper's explicit
//!    design trade);
//! 2. every rank iterates erosion/dilation to build its MEI map and
//!    nominates its `c` highest-MEI pixels;
//! 3. the master merges the nominations into a unique spectral set of
//!    `p ≤ c` representatives;
//! 4. every rank labels its pixels by SAD to the representatives;
//! 5. the master assembles the classification map.
//!
//! MORPH is a windowing algorithm with almost no sequential or
//! communication component, which is why it shows the best load balance
//! (Table 7) and the best Thunderhead scaling (Figure 2) despite its
//! redundant overlap computation.

use crate::config::{AlgoParams, RunOptions};
use crate::flops;
use crate::framework::{
    distribute, gather_labels, plan_assignments, row_mbits, run_rooted, ParallelRun,
};
use crate::kernels;
use crate::msg::Msg;
use crate::wea::RowCost;
use hsi_cube::{HyperCube, LabelImage};
use hsi_morpho::StructuringElement;
use simnet::coll::{self, GatherEntry};
use simnet::engine::Engine;

/// Estimated per-row resource demand (drives the WEA fractions).
pub fn row_cost(cube: &HyperCube, params: &AlgoParams) -> RowCost {
    let n = cube.bands();
    let se_len = (2 * params.se_radius + 1).pow(2);
    let per_pixel = flops::mei_iteration(1, n, se_len) * params.morph_iterations as f64
        + flops::sad_classify(n, params.num_classes);
    // Every partition also pays MEI over its halo lines — a fixed
    // per-node cost the makespan allocator must see, or it starves
    // fast nodes whose tiny partitions would be all halo.
    let halo_pixels = 2 * params.se_radius * cube.samples();
    let fixed = flops::mei_iteration(halo_pixels, n, se_len) * params.morph_iterations as f64;
    RowCost {
        mflops_per_row: flops::mflop(per_pixel * cube.samples() as f64),
        mbits_per_row: row_mbits(cube),
        fixed_mflops: flops::mflop(fixed),
    }
}

/// Runs parallel MORPH classification on the engine's platform.
pub fn run(
    engine: &Engine,
    cube: &HyperCube,
    params: &AlgoParams,
    options: &RunOptions,
) -> ParallelRun<(LabelImage, Vec<Vec<f32>>)> {
    let assignments = plan_assignments(engine.platform(), cube, options, row_cost(cube, params));
    let lines = cube.lines();
    let samples = cube.samples();
    let se = StructuringElement::square(params.se_radius);
    let overlap = options
        .morph_overlap
        .halo_lines(params.se_radius, params.morph_iterations);
    run_rooted(engine, |ctx| {
        if ctx.is_root() {
            ctx.compute_seq(flops::mflop(20.0 * ctx.num_ranks() as f64));
        }
        // Step 1: scatter with overlap borders.
        let block = distribute(ctx, cube, &assignments, overlap, options.scatter_mode);

        // Step 2: local MEI + top-c candidates (halo pixels included in
        // the compute charge — that's the redundant work).
        let (top, mflops) = kernels::mei_top(
            &block.cube,
            &se,
            params.morph_iterations,
            block.own_range(),
            params.num_classes,
            params.sad_threshold,
        );
        // A device stages the full halo-padded block for the MEI step
        // and at most `c` scored candidates back.
        let nb = block.cube.bands();
        let padded_bytes = (block.cube.lines() * block.cube.samples() * nb * 4) as u64;
        crate::offload::charge_chunk(
            ctx,
            options.offload,
            &crate::offload::ChunkCost::new(
                mflops,
                (
                    padded_bytes,
                    params.num_classes as u64 * (nb as u64 * 4 + 8),
                ),
            ),
        );
        let cands: Vec<crate::msg::Candidate> = top
            .iter()
            .map(|p| p.to_candidate(&block.cube, block.first_line, block.pre))
            .collect();

        // Step 3: master merges nominations into p <= c representatives.
        // Rank-uniform size hints for `Auto` selection: each rank
        // nominates at most `c` candidates; at most `c` reps come back.
        let n = block.cube.bands();
        let cands_bits = (params.num_classes as u64) * (128 + 32 * n as u64);
        let reps_bits = (params.num_classes * n * 32) as u64;
        let entries = coll::gather(
            ctx,
            &options.collectives,
            0,
            Msg::candidates(cands),
            cands_bits,
        );
        let merged = entries.map(|entries| {
            let mut scored: Vec<(Vec<f32>, f64)> = Vec::new();
            for msg in entries.into_iter().filter_map(GatherEntry::into_msg) {
                for cand in msg.into_candidates().expect("morph: protocol violation") {
                    scored.push((cand.spectrum, cand.score));
                }
            }
            let (reps, mflops) =
                crate::seq::reduce_candidates(&scored, params.sad_threshold, params.num_classes);
            ctx.compute_seq(mflops);
            Msg::spectra(reps)
        });
        let reps: Vec<Vec<f32>> = coll::broadcast(ctx, &options.collectives, 0, merged, reps_bits)
            .expect("morph: broadcast misuse")
            .into_spectra()
            .expect("morph: protocol violation");

        // Step 4: SAD labelling of the owned lines.
        let (labels, mflops) = kernels::sad_label(&block.cube, block.own_range(), &reps);
        crate::offload::charge_chunk(
            ctx,
            options.offload,
            &crate::offload::ChunkCost::new(
                mflops,
                (
                    (block.n_lines * block.cube.samples() * n * 4) as u64
                        + (reps.len() * n * 4) as u64,
                    (block.n_lines * block.cube.samples() * 2) as u64,
                ),
            ),
        );

        // Step 5: assemble at the master.
        let image = gather_labels(ctx, &options.collectives, &block, labels, lines, samples);
        image.map(|img| (img, reps))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::presets;

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    fn params() -> AlgoParams {
        AlgoParams {
            morph_iterations: 2,
            ..Default::default()
        }
    }

    #[test]
    fn labels_all_pixels_with_bounded_classes() {
        let s = scene();
        let engine = Engine::new(presets::fully_heterogeneous());
        let par = run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let (labels, reps) = &par.result;
        assert!(!reps.is_empty() && reps.len() <= params().num_classes);
        for &l in labels.as_slice() {
            assert!((l as usize) < reps.len());
        }
    }

    #[test]
    fn accuracy_close_to_sequential() {
        let s = scene();
        let seq = crate::seq::morph(&s.cube, &params());
        let seq_acc = hsi_cube::labels::score(&seq.result.0, &s.truth).overall;
        let engine = Engine::new(presets::thunderhead(4));
        let par = run(&engine, &s.cube, &params(), &RunOptions::homo());
        let par_acc = hsi_cube::labels::score(&par.result.0, &s.truth).overall;
        assert!(
            (seq_acc - par_acc).abs() < 15.0,
            "seq {seq_acc} vs par {par_acc}"
        );
    }

    #[test]
    fn morph_balances_better_than_pct() {
        // Table 7: Hetero-MORPH achieves D_all closest to 1.
        let s = scene();
        let engine = Engine::new(presets::fully_heterogeneous());
        let m = run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let p = crate::par::pct::run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let im = m.report.imbalance();
        let ip = p.report.imbalance();
        assert!(
            im.d_all <= ip.d_all + 0.15,
            "MORPH D_all {} vs PCT D_all {}",
            im.d_all,
            ip.d_all
        );
    }

    #[test]
    fn seq_share_is_small() {
        // Table 6: MORPH's SEQ is the smallest of the four algorithms.
        let s = scene();
        let engine = Engine::new(presets::fully_heterogeneous());
        let par = run(&engine, &s.cube, &params(), &RunOptions::hetero());
        let d = par.report.decomposition();
        assert!(
            d.seq / d.total < 0.2,
            "MORPH SEQ share too large: {}",
            d.seq / d.total
        );
    }
}
