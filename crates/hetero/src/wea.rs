//! The Workload Estimation Algorithm (paper Algorithm 1).
//!
//! WEA chooses workload fractions `{αᵢ}` for the processors and turns
//! them into a spatial-domain decomposition of the image (contiguous
//! row blocks, full spectra per pixel — the paper's hybrid strategy).
//!
//! Three layers, matching the paper:
//!
//! 1. **Speed-proportional fractions** (Algorithm 1 step 2):
//!    `αᵢ ∝ 1/wᵢ`.
//! 2. **Link-aware generalisation.** The paper's platform model is the
//!    complete graph `G = (P, E)` with link weights `c_ij`, and its
//!    partially-homogeneous results (identical CPUs, heterogeneous
//!    links, yet Hetero ≫ Homo) show the heterogeneous algorithms adapt
//!    to link capacity too. We model a row's cost to processor `i` as
//!    `wᵢ·f + β·kᵢ·(c₀ᵢ/1000)·b` — compute plus staging over the path
//!    from the root, where `f`/`b` are the algorithm's megaflops and
//!    megabits per row and `kᵢ` counts the processors sharing `i`'s
//!    serial inter-segment link (the serialisation factor). `β = 0`
//!    recovers the literal Algorithm 1; the `ablation_wea` bench sweeps
//!    `β`.
//! 3. **Memory upper bounds** (Algorithm 1 step 3b): processors whose
//!    assignment exceeds their local-memory capacity are capped and the
//!    excess is redistributed recursively among the rest.

use simnet::Platform;

/// How WEA accounts for the network when choosing fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeaLinkModel {
    /// Ignore links entirely: `αᵢ ∝ 1/wᵢ` (the literal Algorithm 1).
    Ignore,
    /// Additive heuristic: `αᵢ ∝ 1/(wᵢ·f + β·kᵢ·c₀ᵢ·b)` with `kᵢ` the
    /// serialisation factor of `i`'s inter-segment link. Kept for the
    /// `ablation_wea` bench.
    Heuristic {
        /// Staging-cost weight (0 recovers `Ignore`).
        beta: f64,
    },
    /// Makespan equalisation: fractions are chosen so every processor
    /// finishes (staging + compute) at the same virtual time under the
    /// engine's exact communication model — switched intra-segment
    /// links, serial FIFO inter-segment links. This is the optimum of
    /// the paper's `G = (P, E)` formulation, found by binary search on
    /// the completion time.
    Makespan,
}

/// Configuration of the heterogeneous WEA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeaConfig {
    /// Network model used when choosing fractions.
    pub link_model: WeaLinkModel,
    /// Honour per-node memory upper bounds (Algorithm 1 step 3b).
    pub respect_memory: bool,
    /// Fraction of a node's memory usable for pixel data.
    pub memory_fill: f64,
}

impl Default for WeaConfig {
    fn default() -> Self {
        WeaConfig {
            link_model: WeaLinkModel::Makespan,
            respect_memory: true,
            memory_fill: 0.8,
        }
    }
}

/// Per-row resource demand of an algorithm on a given scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowCost {
    /// Megaflops of worker computation per image row.
    pub mflops_per_row: f64,
    /// Megabits shipped to stage one image row.
    pub mbits_per_row: f64,
    /// Megaflops of **fixed** per-node computation, independent of the
    /// partition size — MORPH's halo lines are the canonical case. The
    /// makespan allocator subtracts this from each node's time budget,
    /// which stops it from starving fast nodes with tiny partitions
    /// whose fixed cost dominates.
    pub fixed_mflops: f64,
}

impl RowCost {
    /// A purely row-proportional cost (no staging, no fixed part).
    pub fn compute_only(mflops_per_row: f64) -> Self {
        RowCost {
            mflops_per_row,
            mbits_per_row: 0.0,
            fixed_mflops: 0.0,
        }
    }
}

/// A processor's assigned block of image rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowAssignment {
    /// First global image line of the block.
    pub first_line: usize,
    /// Number of lines in the block (may be zero).
    pub n_lines: usize,
}

/// Errors from partitioning.
#[derive(Debug, Clone, PartialEq)]
pub enum WeaError {
    /// The platform's aggregate memory cannot hold the image.
    InsufficientMemory {
        /// Rows that fit across all processors.
        capacity: usize,
        /// Rows required.
        required: usize,
    },
}

impl std::fmt::Display for WeaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeaError::InsufficientMemory { capacity, required } => write!(
                f,
                "platform memory holds only {capacity} rows, image needs {required}"
            ),
        }
    }
}

impl std::error::Error for WeaError {}

/// Serialisation factor `kᵢ`: processors sharing `i`'s inter-segment
/// link toward the root (1 when `i` shares the root's segment).
fn serial_factor(platform: &Platform, i: usize) -> f64 {
    let root_seg = platform.segment_of(0);
    let seg = platform.segment_of(i);
    if seg == root_seg {
        1.0
    } else {
        platform.procs().iter().filter(|p| p.segment == seg).count() as f64
    }
}

/// Heterogeneous workload fractions (Algorithm 1 step 2, generalised to
/// the platform graph per [`WeaLinkModel`]).
///
/// ```
/// use hetero_hsi::wea::{hetero_fractions, RowCost, WeaConfig};
/// let platform = simnet::presets::fully_heterogeneous();
/// let f = hetero_fractions(
///     &platform,
///     RowCost::compute_only(1.0),
///     WeaConfig::default(),
/// );
/// // Fractions form a distribution, and the fastest processor (p3)
/// // receives the largest share.
/// assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// assert_eq!(f.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0, 2);
/// ```
pub fn hetero_fractions(platform: &Platform, cost: RowCost, cfg: WeaConfig) -> Vec<f64> {
    match cfg.link_model {
        WeaLinkModel::Ignore => speed_fractions(platform),
        WeaLinkModel::Heuristic { beta } => heuristic_fractions(platform, cost, beta),
        WeaLinkModel::Makespan => makespan_fractions(platform, cost),
    }
}

/// `αᵢ ∝ 1/wᵢ` — the literal Algorithm 1 step 2.
pub fn speed_fractions(platform: &Platform) -> Vec<f64> {
    let rates: Vec<f64> = platform.procs().iter().map(|p| p.speed()).collect();
    let total: f64 = rates.iter().sum();
    rates.into_iter().map(|r| r / total).collect()
}

fn heuristic_fractions(platform: &Platform, cost: RowCost, beta: f64) -> Vec<f64> {
    let rates: Vec<f64> = (0..platform.num_procs())
        .map(|i| {
            let w = platform.proc(i).cycle_time;
            let compute = w * cost.mflops_per_row.max(1e-12);
            let staging = beta
                * serial_factor(platform, i)
                * (platform.link_ms_per_mbit(0, i) / 1.0e3)
                * cost.mbits_per_row;
            1.0 / (compute + staging)
        })
        .collect();
    let total: f64 = rates.iter().sum();
    rates.into_iter().map(|r| r / total).collect()
}

/// Rows (possibly fractional) the platform can complete within virtual
/// time `t` under the engine's communication model: a node on the root's
/// segment receives over its own switched link (staging and compute both
/// bound by `t`); nodes on a remote segment share a serial FIFO link, so
/// node `j`'s compute can only start after all preceding transfers on
/// that link.
fn capacity_rows(platform: &Platform, cp: &[f64], tr: &[f64], fixed: &[f64], t: f64) -> f64 {
    let root_seg = platform.segment_of(0);
    let p = platform.num_procs();
    let mut total = 0.0;
    // Root-segment nodes (switched): rows_i = (t - fixed_i) / (tr_i + cp_i).
    for i in 0..p {
        if platform.segment_of(i) == root_seg {
            total += (t - fixed[i]).max(0.0) / (tr[i] + cp[i]).max(1e-300);
        }
    }
    // Remote segments: greedy front-tight fill in rank order (the order
    // the root scatters in).
    let mut segments: Vec<usize> = (0..p).map(|i| platform.segment_of(i)).collect();
    segments.sort_unstable();
    segments.dedup();
    for seg in segments {
        if seg == root_seg {
            continue;
        }
        let mut prefix = 0.0;
        for i in 0..p {
            if platform.segment_of(i) != seg {
                continue;
            }
            // Constraint: prefix + fixed_i + rows_i·(tr_i + cp_i) ≤ t.
            let room = (t - prefix - fixed[i]).max(0.0);
            let rows = room / (tr[i] + cp[i]).max(1e-300);
            prefix += rows * tr[i];
            total += rows;
        }
    }
    total
}

/// Makespan-equalising fractions: binary search the completion time `T`
/// at which the platform's capacity equals the whole image, then read
/// off each node's share.
fn makespan_fractions(platform: &Platform, cost: RowCost) -> Vec<f64> {
    let p = platform.num_procs();
    let f = cost.mflops_per_row.max(1e-12);
    let cp: Vec<f64> = (0..p).map(|i| platform.proc(i).cycle_time * f).collect();
    let tr: Vec<f64> = (0..p)
        .map(|i| cost.mbits_per_row * platform.link_ms_per_mbit(0, i) / 1.0e3)
        .collect();
    let fixed: Vec<f64> = (0..p)
        .map(|i| cost.fixed_mflops * platform.proc(i).cycle_time)
        .collect();

    // The fixed component is absolute, so the row budget matters: solve
    // for the actual total (callers pass fractions through apportioning
    // later, but the *shape* depends on the fixed/variable ratio). We
    // normalise to a nominal 1024-row image; the resulting fractions are
    // exact when the real image is near that and conservative otherwise.
    let target = 1024.0;
    let mut hi = (0..p)
        .map(|i| fixed[i] + (tr[i] + cp[i]) * target)
        .fold(0.0f64, f64::max);
    let mut lo = 0.0;
    // Grow hi until feasible (paranoia; the bound above suffices).
    while capacity_rows(platform, &cp, &tr, &fixed, hi) < target {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if capacity_rows(platform, &cp, &tr, &fixed, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let t = hi;
    // Reconstruct per-node rows at time t (same walk as capacity_rows).
    let root_seg = platform.segment_of(0);
    let mut rows = vec![0.0; p];
    for i in 0..p {
        if platform.segment_of(i) == root_seg {
            rows[i] = (t - fixed[i]).max(0.0) / (tr[i] + cp[i]).max(1e-300);
        }
    }
    let mut segments: Vec<usize> = (0..p).map(|i| platform.segment_of(i)).collect();
    segments.sort_unstable();
    segments.dedup();
    for seg in segments {
        if seg == root_seg {
            continue;
        }
        let mut prefix = 0.0;
        for i in 0..p {
            if platform.segment_of(i) != seg {
                continue;
            }
            let room = (t - prefix - fixed[i]).max(0.0);
            rows[i] = room / (tr[i] + cp[i]).max(1e-300);
            prefix += rows[i] * tr[i];
        }
    }
    let total: f64 = rows.iter().sum();
    rows.into_iter().map(|r| r / total).collect()
}

/// Homogeneous fractions: equal shares (the paper's "homogeneous
/// version" of each algorithm).
pub fn homo_fractions(platform: &Platform) -> Vec<f64> {
    vec![1.0 / platform.num_procs() as f64; platform.num_procs()]
}

/// Converts fractions into whole-row counts summing exactly to
/// `total_rows` (largest-remainder apportionment, deterministic ties by
/// processor index).
pub fn apportion_rows(fractions: &[f64], total_rows: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = fractions
        .iter()
        .map(|f| (f * total_rows as f64).floor() as usize)
        .collect();
    let assigned: usize = counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> = fractions
        .iter()
        .enumerate()
        .map(|(i, f)| (i, f * total_rows as f64 - counts[i] as f64))
        .collect();
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in remainders.iter().take(total_rows - assigned) {
        counts[i] += 1;
    }
    counts
}

/// Rows that fit in each processor's memory (Algorithm 1's upper bound).
pub fn memory_row_capacity(platform: &Platform, row_bytes: usize, fill: f64) -> Vec<usize> {
    platform
        .procs()
        .iter()
        .map(|p| ((p.memory_mb as f64 * 1.0e6 * fill) / row_bytes.max(1) as f64) as usize)
        .collect()
}

/// Applies memory caps with recursive redistribution (Algorithm 1 step
/// 3b): over-capacity processors are pinned to their cap and the excess
/// is re-apportioned among the rest by their fractions, repeating until
/// stable.
pub fn apply_memory_bounds(
    counts: &[usize],
    fractions: &[f64],
    caps: &[usize],
) -> Result<Vec<usize>, WeaError> {
    let total: usize = counts.iter().sum();
    let capacity: usize = caps.iter().sum();
    if capacity < total {
        return Err(WeaError::InsufficientMemory {
            capacity,
            required: total,
        });
    }
    let mut counts = counts.to_vec();
    let mut pinned = vec![false; counts.len()];
    loop {
        // Pin every processor exceeding its cap.
        let mut overflow = 0usize;
        for i in 0..counts.len() {
            if !pinned[i] && counts[i] > caps[i] {
                overflow += counts[i] - caps[i];
                counts[i] = caps[i];
                pinned[i] = true;
            }
        }
        if overflow == 0 {
            return Ok(counts);
        }
        // Redistribute the excess among unpinned processors by fraction.
        let free: Vec<usize> = (0..counts.len()).filter(|&i| !pinned[i]).collect();
        if free.is_empty() {
            // All pinned: by the capacity check above this cannot leave
            // overflow, but guard anyway.
            return Err(WeaError::InsufficientMemory {
                capacity: caps.iter().sum(),
                required: total,
            });
        }
        let free_frac: f64 = free.iter().map(|&i| fractions[i]).sum();
        let sub_fracs: Vec<f64> = free.iter().map(|&i| fractions[i] / free_frac).collect();
        let extra = apportion_rows(&sub_fracs, overflow);
        for (slot, &i) in free.iter().enumerate() {
            counts[i] += extra[slot];
        }
    }
}

/// Full WEA: fractions → row counts → memory bounds → contiguous
/// assignments in processor order.
pub fn assignments(
    platform: &Platform,
    total_rows: usize,
    row_bytes: usize,
    fractions: &[f64],
    cfg: WeaConfig,
) -> Result<Vec<RowAssignment>, WeaError> {
    let counts = apportion_rows(fractions, total_rows);
    let counts = if cfg.respect_memory {
        let caps = memory_row_capacity(platform, row_bytes, cfg.memory_fill);
        apply_memory_bounds(&counts, fractions, &caps)?
    } else {
        counts
    };
    let mut out = Vec::with_capacity(counts.len());
    let mut first = 0usize;
    for n in counts {
        out.push(RowAssignment {
            first_line: first,
            n_lines: n,
        });
        first += n;
    }
    debug_assert_eq!(first, total_rows);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::presets;

    fn unit_cost() -> RowCost {
        RowCost {
            mflops_per_row: 1.0,
            mbits_per_row: 0.0,
            fixed_mflops: 0.0,
        }
    }

    #[test]
    fn hetero_fractions_proportional_to_speed_when_compute_bound() {
        let p = presets::fully_heterogeneous();
        let f = hetero_fractions(&p, unit_cost(), WeaConfig::default());
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // With no communication term, αᵢ ∝ 1/wᵢ: p3 (0.0026) vs p10
        // (0.0451) must be in ratio 0.0451/0.0026.
        let ratio = f[2] / f[9];
        assert!((ratio - 0.0451 / 0.0026).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn link_aware_fractions_shift_load_toward_near_segments() {
        let p = presets::partially_homogeneous(); // equal CPUs, het links
        let cost = RowCost {
            mflops_per_row: 1.0,
            mbits_per_row: 0.5,
            fixed_mflops: 0.0,
        };
        let compute_only = hetero_fractions(
            &p,
            cost,
            WeaConfig {
                link_model: WeaLinkModel::Ignore,
                ..Default::default()
            },
        );
        // Ignoring links on equal CPUs: uniform.
        assert!((compute_only[0] - compute_only[15]).abs() < 1e-12);
        for model in [
            WeaLinkModel::Heuristic { beta: 1.0 },
            WeaLinkModel::Makespan,
        ] {
            let link_aware = hetero_fractions(
                &p,
                cost,
                WeaConfig {
                    link_model: model,
                    ..Default::default()
                },
            );
            // The root (segment s1, no staging) gets more than a
            // segment-4 node behind the slowest serial link.
            assert!(
                link_aware[0] > link_aware[15] * 1.5,
                "{model:?}: {} vs {}",
                link_aware[0],
                link_aware[15]
            );
        }
    }

    #[test]
    fn makespan_fractions_equalize_completion() {
        // Verify the defining property: staging + compute finishes at the
        // same virtual time on every node (within numerical tolerance).
        let p = presets::partially_homogeneous();
        let cost = RowCost {
            mflops_per_row: 2.0,
            mbits_per_row: 0.5,
            fixed_mflops: 0.0,
        };
        let fr = hetero_fractions(&p, cost, WeaConfig::default());
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Recompute completion per node under the engine model.
        let cp: Vec<f64> = (0..16).map(|i| p.proc(i).cycle_time * 2.0).collect();
        let tr: Vec<f64> = (0..16)
            .map(|i| 0.5 * p.link_ms_per_mbit(0, i) / 1.0e3)
            .collect();
        let root_seg = p.segment_of(0);
        let mut completions = Vec::new();
        for seg in 0..4 {
            let mut prefix = 0.0;
            for i in 0..16 {
                if p.segment_of(i) != seg {
                    continue;
                }
                if seg == root_seg {
                    completions.push(fr[i] * (tr[i] + cp[i]));
                } else {
                    prefix += fr[i] * tr[i];
                    completions.push(prefix + fr[i] * cp[i]);
                }
            }
        }
        let max = completions.iter().cloned().fold(0.0f64, f64::max);
        let min = completions.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (max - min) / max < 1e-6,
            "completions not equal: min {min}, max {max}"
        );
    }

    #[test]
    fn homo_fractions_equal() {
        let p = presets::fully_heterogeneous();
        let f = homo_fractions(&p);
        assert_eq!(f.len(), 16);
        assert!(f.iter().all(|&x| (x - 1.0 / 16.0).abs() < 1e-15));
    }

    #[test]
    fn apportion_conserves_total() {
        let f = [0.5, 0.3, 0.2];
        for total in [1usize, 7, 100, 2133] {
            let counts = apportion_rows(&f, total);
            assert_eq!(counts.iter().sum::<usize>(), total);
        }
        // Exact thirds with a remainder: deterministic assignment.
        let counts = apportion_rows(&[1.0 / 3.0; 3], 10);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts, apportion_rows(&[1.0 / 3.0; 3], 10));
    }

    #[test]
    fn memory_caps_pin_and_redistribute() {
        let counts = [60, 20, 20];
        let fractions = [0.6, 0.2, 0.2];
        let caps = [30, 100, 100];
        let out = apply_memory_bounds(&counts, &fractions, &caps).unwrap();
        assert_eq!(out[0], 30);
        assert_eq!(out.iter().sum::<usize>(), 100);
        // Excess split evenly between the two equal-fraction nodes.
        assert_eq!(out[1], 35);
        assert_eq!(out[2], 35);
    }

    #[test]
    fn cascading_caps() {
        // Redistribution itself overflows node 1, forcing a second round.
        let counts = [80, 15, 5];
        let fractions = [0.8, 0.15, 0.05];
        let caps = [10, 20, 100];
        let out = apply_memory_bounds(&counts, &fractions, &caps).unwrap();
        assert_eq!(out[0], 10);
        assert_eq!(out[1], 20);
        assert_eq!(out[2], 70);
    }

    #[test]
    fn insufficient_memory_detected() {
        let err = apply_memory_bounds(&[10, 10], &[0.5, 0.5], &[5, 4]).unwrap_err();
        assert_eq!(
            err,
            WeaError::InsufficientMemory {
                capacity: 9,
                required: 20
            }
        );
    }

    #[test]
    fn assignments_are_contiguous_and_complete() {
        let p = presets::fully_heterogeneous();
        let f = hetero_fractions(&p, unit_cost(), WeaConfig::default());
        let asg = assignments(&p, 1000, 512 * 224 * 4, &f, WeaConfig::default()).unwrap();
        assert_eq!(asg.len(), 16);
        let mut next = 0;
        for a in &asg {
            assert_eq!(a.first_line, next);
            next += a.n_lines;
        }
        assert_eq!(next, 1000);
        // Fast p3 gets the biggest block; slow p10 the smallest.
        let sizes: Vec<usize> = asg.iter().map(|a| a.n_lines).collect();
        assert_eq!(
            sizes.iter().enumerate().max_by_key(|(_, &n)| n).unwrap().0,
            2
        );
    }

    #[test]
    fn memory_bound_respected_in_assignments() {
        // UltraSparc p10 has 512 MB: with huge rows its block is capped.
        let p = presets::fully_heterogeneous();
        let f = homo_fractions(&p);
        let row_bytes = 50 * 1024 * 1024; // 50 MB per row
        let cfg = WeaConfig::default();
        let asg = assignments(&p, 160, row_bytes, &f, cfg).unwrap();
        let caps = memory_row_capacity(&p, row_bytes, cfg.memory_fill);
        for (a, cap) in asg.iter().zip(&caps) {
            assert!(a.n_lines <= *cap, "{} > {}", a.n_lines, cap);
        }
        assert_eq!(asg.iter().map(|a| a.n_lines).sum::<usize>(), 160);
    }

    #[test]
    fn wea_error_display() {
        let e = WeaError::InsufficientMemory {
            capacity: 5,
            required: 9,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('9'));
        let _: &dyn std::error::Error = &e;
    }

    #[test]
    fn compute_only_constructor() {
        let c = RowCost::compute_only(3.5);
        assert_eq!(c.mflops_per_row, 3.5);
        assert_eq!(c.mbits_per_row, 0.0);
        assert_eq!(c.fixed_mflops, 0.0);
    }

    #[test]
    fn serial_factor_counts_segment_population() {
        let p = presets::fully_heterogeneous();
        assert_eq!(serial_factor(&p, 0), 1.0); // root
        assert_eq!(serial_factor(&p, 1), 1.0); // same segment as root
        assert_eq!(serial_factor(&p, 4), 4.0); // s2 has 4 nodes
        assert_eq!(serial_factor(&p, 10), 6.0); // s4 has 6 nodes
    }
}
