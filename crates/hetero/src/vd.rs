//! Virtual dimensionality (VD) estimation.
//!
//! The paper sets the number of targets to `t = 18` "after calculating
//! the intrinsic dimensionality of the data" (citing Chang's
//! monograph). The standard estimator is Harsanyi–Farrand–Chang (HFC):
//! compare the eigenvalues of the sample **correlation** matrix
//! `R = E[xxᵀ]` with those of the **covariance** matrix
//! `K = R − mmᵀ`. A spectral dimension carries signal when the
//! correlation eigenvalue exceeds the covariance eigenvalue by more
//! than the noise allows — under pure noise the two spectra coincide,
//! while every deterministic endmember contributes mean energy that
//! appears in `R` but not in `K`.
//!
//! The Neyman–Pearson test at false-alarm probability `P_f` declares
//! dimension `i` signal-bearing when
//! `λ_R(i) − λ_K(i) > σ_i · z(P_f)`, with the variance of the
//! eigenvalue difference approximated (as in HFC) by
//! `σ_i² ≈ (2/N)(λ_R(i)² + λ_K(i)²)`.

use hsi_cube::HyperCube;
use hsi_linalg::covariance::CovarianceAccumulator;
use hsi_linalg::eigen::SymmetricEigen;
use hsi_linalg::Matrix;

/// Result of a VD estimation.
#[derive(Debug, Clone)]
pub struct VdEstimate {
    /// The estimated number of spectrally distinct signal sources.
    pub dimension: usize,
    /// Per-band eigenvalues of the correlation matrix (descending).
    pub corr_eigenvalues: Vec<f64>,
    /// Per-band eigenvalues of the covariance matrix (descending).
    pub cov_eigenvalues: Vec<f64>,
}

/// Standard-normal quantile via the Acklam rational approximation
/// (|error| < 1.2e-9; ample for HFC thresholds).
fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e1,
        2.209460984245205e2,
        -2.759285104469687e2,
        1.383_577_518_672_69e2,
        -3.066479806614716e1,
        2.506628277459239,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e1,
        1.615858368580409e2,
        -1.556989798598866e2,
        6.680131188771972e1,
        -1.328068155288572e1,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-3,
        -3.223964580411365e-1,
        -2.400758277161838,
        -2.549732539343734,
        4.374664141464968,
        2.938163982698783,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-3,
        3.224671290700398e-1,
        2.445134137142996,
        3.754408661907416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Estimates the virtual dimensionality of a cube with the HFC method
/// at false-alarm probability `p_fa` (the customary values are 1e-3 to
/// 1e-5; the paper's `t = 18` corresponds to ~1e-3 on its scene).
///
/// # Panics
/// Panics on an empty cube or `p_fa` outside `(0, 1)`.
pub fn hfc(cube: &HyperCube, p_fa: f64) -> VdEstimate {
    assert!(cube.num_pixels() > 0, "hfc: empty cube");
    let n = cube.bands();
    let samples = cube.num_pixels() as f64;

    // Accumulate covariance and mean in one pass; correlation follows
    // as K + m mᵀ.
    let mut acc = CovarianceAccumulator::new(n);
    for i in 0..cube.num_pixels() {
        acc.push_f32(cube.pixel_flat(i));
    }
    let mean = acc.mean().expect("non-empty");
    let cov = acc.covariance().expect("non-empty");
    let mut corr = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            corr[(i, j)] = cov[(i, j)] + mean[i] * mean[j];
        }
    }

    let e_corr = SymmetricEigen::new(&corr).expect("corr eigen");
    let e_cov = SymmetricEigen::new(&cov).expect("cov eigen");
    let z = -normal_quantile(p_fa); // threshold multiplier > 0

    let mut dimension = 0;
    for i in 0..n {
        let lr = e_corr.eigenvalues[i].max(0.0);
        let lk = e_cov.eigenvalues[i].max(0.0);
        let sigma = ((2.0 / samples) * (lr * lr + lk * lk)).sqrt();
        if lr - lk > z * sigma {
            dimension += 1;
        }
    }
    VdEstimate {
        dimension,
        corr_eigenvalues: e_corr.eigenvalues,
        cov_eigenvalues: e_cov.eigenvalues,
    }
}

/// Noise-floor VD estimator: counts covariance eigenvalues exceeding
/// `factor ×` the estimated noise level, where the noise level is the
/// median of the lower half of the eigenvalue spectrum (under the usual
/// assumption that most spectral dimensions are noise-only). More
/// liberal than HFC — closer to how practitioners eyeball a scree plot
/// — and the estimator whose output matches the material count of the
/// synthetic scenes.
pub fn noise_floor(cube: &HyperCube, factor: f64) -> VdEstimate {
    assert!(cube.num_pixels() > 0, "noise_floor: empty cube");
    let n = cube.bands();
    let mut acc = CovarianceAccumulator::new(n);
    for i in 0..cube.num_pixels() {
        acc.push_f32(cube.pixel_flat(i));
    }
    let mean = acc.mean().expect("non-empty");
    let cov = acc.covariance().expect("non-empty");
    let mut corr = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            corr[(i, j)] = cov[(i, j)] + mean[i] * mean[j];
        }
    }
    let e_cov = SymmetricEigen::new(&cov).expect("cov eigen");
    let e_corr = SymmetricEigen::new(&corr).expect("corr eigen");
    // Median of the lower half as the noise level.
    let tail = &e_cov.eigenvalues[n / 2..];
    let mut sorted: Vec<f64> = tail.iter().map(|l| l.max(0.0)).collect();
    sorted.sort_by(f64::total_cmp);
    let noise = sorted[sorted.len() / 2].max(1e-300);
    let dimension = e_cov
        .eigenvalues
        .iter()
        .filter(|&&l| l > factor * noise)
        .count();
    VdEstimate {
        dimension,
        corr_eigenvalues: e_corr.eigenvalues,
        cov_eigenvalues: e_cov.eigenvalues,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};

    #[test]
    fn quantile_matches_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.001) + 3.090232).abs() < 1e-4);
        // Symmetry.
        assert!((normal_quantile(0.01) + normal_quantile(0.99)).abs() < 1e-9);
    }

    #[test]
    fn pure_noise_has_low_dimension() {
        // A cube of i.i.d. noise around a constant: one mean direction,
        // nothing else.
        let mut cube = HyperCube::zeros(24, 24, 16);
        let mut state = 7u64;
        for v in cube.as_mut_slice() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v = 0.5 + 1e-3 * (((state >> 33) as f32) / (u32::MAX as f32) - 0.5);
        }
        let est = hfc(&cube, 1e-3);
        assert!(est.dimension <= 2, "noise VD = {}", est.dimension);
    }

    #[test]
    fn wtc_scene_dimensions() {
        let s = wtc_scene(WtcConfig {
            lines: 96,
            samples: 64,
            bands: 96,
            ..Default::default()
        });
        // HFC is conservative (it tests mean-energy only, and single-
        // pixel thermal targets are invisible to global second-order
        // statistics) but must find several signal dimensions.
        let est = hfc(&s.cube, 1e-3);
        assert!(
            (2..=24).contains(&est.dimension),
            "HFC VD = {}",
            est.dimension
        );
        // The noise-floor estimator should land near the material count
        // (11 materials; the paper's t = 18 includes thermal sources).
        let nf = noise_floor(&s.cube, 20.0);
        assert!(
            (6..=24).contains(&nf.dimension),
            "noise-floor VD = {}",
            nf.dimension
        );
    }

    #[test]
    fn more_materials_more_dimension() {
        use hsi_cube::synth::materials;
        use hsi_cube::synth::scene::SceneBuilder;
        let few = SceneBuilder::new(48, 48, 64)
            .seed(3)
            .materials(materials::full_library().into_iter().take(3).collect())
            .build();
        let many = SceneBuilder::new(48, 48, 64)
            .seed(3)
            .materials(materials::full_library())
            .build();
        let vd_few = noise_floor(&few.cube, 20.0).dimension;
        let vd_many = noise_floor(&many.cube, 20.0).dimension;
        assert!(
            vd_many > vd_few,
            "11 materials (VD {vd_many}) vs 3 (VD {vd_few})"
        );
    }

    #[test]
    fn eigen_spectra_are_descending() {
        let s = wtc_scene(WtcConfig::tiny());
        let est = hfc(&s.cube, 1e-4);
        for w in est.corr_eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        // Correlation eigenvalues dominate covariance eigenvalues in
        // the leading (signal) dimensions.
        assert!(est.corr_eigenvalues[0] > est.cov_eigenvalues[0]);
    }
}
