//! Offload scheduling: when does a chunk run on the node's accelerator?
//!
//! The paper's central "future perspective" is heterogeneous nodes with
//! *specialized hardware* — GPUs/FPGAs doing the pixel-parallel kernels
//! while the cluster fabric handles distribution. `simnet::accel` models
//! the devices; this module makes the **scheduling decision**:
//!
//! * [`OffloadPolicy`] selects host-only ([`OffloadPolicy::Never`]),
//!   device-whenever-possible ([`OffloadPolicy::Always`]), or
//!   cost-model-driven ([`OffloadPolicy::Auto`]) execution, wired
//!   through [`crate::config::RunOptions`] and [`crate::ft::FtOptions`].
//! * [`decide`] applies the policy per chunk: `Auto` offloads exactly
//!   when the analytic device time (launch + transfers + compute, see
//!   [`DeviceSpec::offload_secs`]) beats the host time `mflops · wᵢ`,
//!   with ties going to the host.
//! * [`charge_chunk`] charges a worker's chunk through the engine under
//!   the decision — device chunks via `Ctx::offload` (recorded in
//!   `RunReport::offloads` and as `D` trace spans), host chunks via
//!   `Ctx::compute_par_tracked`.
//! * [`chunk_secs`] is the *exact* analytic cost a fault-free
//!   [`charge_chunk`] charges — the same closed forms, the same `f64`
//!   arithmetic — so masters can derive deadlines that match worker
//!   behaviour to the bit (the `coll::cost` replay-equals-measured
//!   contract, extended to offloading).
//! * [`effective_platform`] / [`effective_speeds`] fold the device into
//!   a node's speed for the WEA partitioners: accelerator-rich nodes
//!   read as proportionally faster (device time amortized over a
//!   representative chunk) and receive larger partitions.
//!
//! **Bit-identity.** The policy changes *where time is charged*, never
//! *what is computed*: the same kernels run on the host threads in the
//! same order under every policy, so analysis outputs are identical
//! across `Never`/`Always`/`Auto` whenever the work grid is (fixed-grid
//! self-scheduling, identical partitions) — asserted by `tests/accel.rs`.

use simnet::accel::DeviceSpec;
use simnet::platform::{Platform, ProcessorSpec};
use simnet::{Ctx, Wire};

/// When workers offload chunks to their node's accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OffloadPolicy {
    /// Host CPUs only — devices (if any) stay idle. The default:
    /// existing runs are unchanged.
    #[default]
    Never,
    /// Every chunk that fits in device memory runs on the device, even
    /// when transfers + launch latency make it slower than the host.
    Always,
    /// Per-chunk cost-model decision: offload exactly when the analytic
    /// device time beats the host time (ties go to the host).
    Auto,
}

impl OffloadPolicy {
    /// Short display label (reports and benches).
    pub fn label(&self) -> &'static str {
        match self {
            OffloadPolicy::Never => "never",
            OffloadPolicy::Always => "always",
            OffloadPolicy::Auto => "auto",
        }
    }
}

/// Analytic resource demand of one offload-eligible chunk: compute
/// megaflops plus the bytes a device would stage in and out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkCost {
    /// Kernel compute in megaflops.
    pub mflops: f64,
    /// Bytes staged host → device (chunk pixels + round state).
    pub bytes_h2d: u64,
    /// Bytes staged device → host (the partial result).
    pub bytes_d2h: u64,
}

impl ChunkCost {
    /// Bundles a megaflop count with the `(h2d, d2h)` byte pair of
    /// [`crate::sched::ChunkedAlgo::chunk_bytes`].
    pub fn new(mflops: f64, bytes: (u64, u64)) -> Self {
        ChunkCost {
            mflops,
            bytes_h2d: bytes.0,
            bytes_d2h: bytes.1,
        }
    }
}

/// Where one chunk executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkTarget {
    /// On the host CPU at the node's cycle-time.
    Host,
    /// On the node's attached accelerator.
    Device,
}

/// Applies `policy` to one chunk on one processor. Pure and analytic —
/// a function of the spec and the cost only — so masters, workers and
/// the `predict_offload` replay all agree on every decision.
pub fn decide(proc: &ProcessorSpec, policy: OffloadPolicy, cost: &ChunkCost) -> ChunkTarget {
    let Some(device) = proc.device.as_ref() else {
        return ChunkTarget::Host;
    };
    if !device.fits(cost.bytes_h2d, cost.bytes_d2h) {
        return ChunkTarget::Host;
    }
    match policy {
        OffloadPolicy::Never => ChunkTarget::Host,
        OffloadPolicy::Always => ChunkTarget::Device,
        OffloadPolicy::Auto => {
            if device_secs(device, cost) < host_secs(proc, cost) {
                ChunkTarget::Device
            } else {
                ChunkTarget::Host
            }
        }
    }
}

#[inline]
fn host_secs(proc: &ProcessorSpec, cost: &ChunkCost) -> f64 {
    cost.mflops * proc.cycle_time
}

#[inline]
fn device_secs(device: &DeviceSpec, cost: &ChunkCost) -> f64 {
    device.offload_secs(cost.mflops, cost.bytes_h2d, cost.bytes_d2h)
}

/// The exact virtual-time cost a fault-free [`charge_chunk`] charges for
/// this chunk under `policy` — host `mflops · wᵢ` or the device closed
/// form, per [`decide`]. Masters use it for completion deadlines and
/// [`effective_speeds`]; `tests/accel.rs` asserts the prediction equals
/// the measured time exactly.
pub fn chunk_secs(proc: &ProcessorSpec, policy: OffloadPolicy, cost: &ChunkCost) -> f64 {
    match decide(proc, policy, cost) {
        ChunkTarget::Host => host_secs(proc, cost),
        ChunkTarget::Device => {
            let device = proc.device.as_ref().expect("decide returned Device");
            device_secs(device, cost)
        }
    }
}

/// Charges one offload-eligible chunk through the engine under `policy`:
/// the device path goes through `Ctx::offload` (launch + transfers +
/// device compute, `D` trace span, offload telemetry), the host path
/// through `Ctx::compute_par_tracked` (identical charge to a plain
/// `compute_par`, plus `host_ms` telemetry). Fault-plan slowdowns and
/// crash truncation compose unchanged on both paths.
pub fn charge_chunk<M: Wire>(ctx: &mut Ctx<M>, policy: OffloadPolicy, cost: &ChunkCost) {
    let proc = ctx.platform().proc(ctx.rank());
    match decide(proc, policy, cost) {
        ChunkTarget::Host => ctx.compute_par_tracked(cost.mflops),
        ChunkTarget::Device => ctx.offload(cost.mflops, cost.bytes_h2d, cost.bytes_d2h),
    }
}

/// A node's effective speed in Mflop/s for work shaped like `rep`:
/// the host speed `1/wᵢ` when [`decide`] keeps the chunk on the host
/// (bit-identical to [`ProcessorSpec::speed`], so `Never` reproduces
/// historic partitions exactly), or `rep.mflops / device_secs` when it
/// offloads — launch latency and transfers amortized over the chunk.
pub fn effective_speed(proc: &ProcessorSpec, policy: OffloadPolicy, rep: &ChunkCost) -> f64 {
    match decide(proc, policy, rep) {
        ChunkTarget::Host => proc.speed(),
        ChunkTarget::Device => {
            let device = proc.device.as_ref().expect("decide returned Device");
            rep.mflops / device_secs(device, rep)
        }
    }
}

/// Per-rank effective speeds (see [`effective_speed`]) — what the
/// re-planning master feeds [`crate::ft`]'s speed-proportional batch
/// split so accelerator-rich nodes receive larger batches.
pub fn effective_speeds(platform: &Platform, policy: OffloadPolicy, rep: &ChunkCost) -> Vec<f64> {
    platform
        .procs()
        .iter()
        .map(|p| effective_speed(p, policy, rep))
        .collect()
}

/// A clone of `platform` whose cycle-times are replaced by the
/// *effective* seconds-per-megaflop for work shaped like `rep` (see
/// [`effective_speed`]). Fed to the WEA partitioners **only** — the
/// engine always runs on the real platform — so fraction computation
/// sees host + device pairs while time accounting stays exact.
/// `Never` returns an identical copy (partitions are unchanged).
pub fn effective_platform(platform: &Platform, policy: OffloadPolicy, rep: &ChunkCost) -> Platform {
    let procs: Vec<ProcessorSpec> = platform
        .procs()
        .iter()
        .map(|p| {
            let mut q = p.clone();
            // Host-path cycle-times are carried over verbatim (not
            // re-derived through `1/speed`) so `Never` — and any node
            // the policy keeps on the host — partitions bit-identically
            // to the historic planner.
            if decide(p, policy, rep) == ChunkTarget::Device {
                let device = p.device.as_ref().expect("decide returned Device");
                q.cycle_time = device_secs(device, rep) / rep.mflops;
            }
            q
        })
        .collect();
    let n = platform.num_procs();
    let links = (0..n)
        .map(|i| (0..n).map(|j| platform.link_ms_per_mbit(i, j)).collect())
        .collect();
    Platform::new(platform.name().to_string(), procs, links)
        .with_msg_latency(platform.msg_latency_s())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::presets;

    fn gpu_proc() -> ProcessorSpec {
        presets::accel_heterogeneous().proc(2).clone() // p3: Athlon + GPU
    }

    fn plain_proc() -> ProcessorSpec {
        presets::accel_heterogeneous().proc(1).clone() // p2: Xeon, no device
    }

    fn big_chunk() -> ChunkCost {
        // 5000 Mflop over 40 MB in / 1 MB out: device compute wins big.
        ChunkCost::new(5000.0, (40_000_000, 1_000_000))
    }

    fn tiny_chunk() -> ChunkCost {
        // 0.001 Mflop: launch latency dominates; host wins.
        ChunkCost::new(0.001, (1_000, 100))
    }

    #[test]
    fn never_is_always_host() {
        assert_eq!(
            decide(&gpu_proc(), OffloadPolicy::Never, &big_chunk()),
            ChunkTarget::Host
        );
    }

    #[test]
    fn no_device_is_always_host() {
        for policy in [OffloadPolicy::Always, OffloadPolicy::Auto] {
            assert_eq!(
                decide(&plain_proc(), policy, &big_chunk()),
                ChunkTarget::Host
            );
        }
    }

    #[test]
    fn auto_offloads_when_device_wins_and_only_then() {
        let p = gpu_proc();
        assert_eq!(
            decide(&p, OffloadPolicy::Auto, &big_chunk()),
            ChunkTarget::Device
        );
        assert_eq!(
            decide(&p, OffloadPolicy::Auto, &tiny_chunk()),
            ChunkTarget::Host,
            "launch latency must keep tiny chunks on the host"
        );
        // Always offloads the tiny chunk anyway.
        assert_eq!(
            decide(&p, OffloadPolicy::Always, &tiny_chunk()),
            ChunkTarget::Device
        );
    }

    #[test]
    fn memory_bound_forces_host() {
        let p = gpu_proc(); // 512 MB GPU
        let huge = ChunkCost::new(1e6, (600_000_000, 0));
        for policy in [OffloadPolicy::Always, OffloadPolicy::Auto] {
            assert_eq!(decide(&p, policy, &huge), ChunkTarget::Host);
        }
    }

    #[test]
    fn chunk_secs_matches_the_closed_forms() {
        let p = gpu_proc();
        let c = big_chunk();
        assert_eq!(
            chunk_secs(&p, OffloadPolicy::Never, &c),
            c.mflops * p.cycle_time
        );
        let d = p.device.expect("gpu proc has a device");
        assert_eq!(
            chunk_secs(&p, OffloadPolicy::Always, &c),
            d.offload_secs(c.mflops, c.bytes_h2d, c.bytes_d2h)
        );
        assert_eq!(
            chunk_secs(&p, OffloadPolicy::Auto, &c),
            chunk_secs(&p, OffloadPolicy::Always, &c),
            "auto picked the device here"
        );
    }

    #[test]
    fn never_effective_platform_is_bit_identical() {
        let base = presets::accel_heterogeneous();
        let eff = effective_platform(&base, OffloadPolicy::Never, &big_chunk());
        for i in 0..base.num_procs() {
            assert_eq!(eff.proc(i).cycle_time, base.proc(i).cycle_time);
        }
        assert_eq!(
            effective_speeds(&base, OffloadPolicy::Never, &big_chunk()),
            base.procs().iter().map(|p| p.speed()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn auto_effective_platform_speeds_up_gpu_nodes_only() {
        let base = presets::accel_heterogeneous();
        let rep = big_chunk();
        let eff = effective_platform(&base, OffloadPolicy::Auto, &rep);
        // p3 (GPU) gets faster; p2 (no device) is untouched.
        assert!(eff.proc(2).cycle_time < base.proc(2).cycle_time);
        assert_eq!(eff.proc(1).cycle_time, base.proc(1).cycle_time);
        assert_eq!(eff.msg_latency_s(), base.msg_latency_s());
        let speeds = effective_speeds(&base, OffloadPolicy::Auto, &rep);
        assert!(speeds[2] > base.proc(2).speed());
        assert_eq!(speeds[1], base.proc(1).speed());
    }

    #[test]
    fn policy_labels() {
        assert_eq!(OffloadPolicy::Never.label(), "never");
        assert_eq!(OffloadPolicy::Always.label(), "always");
        assert_eq!(OffloadPolicy::Auto.label(), "auto");
        assert_eq!(OffloadPolicy::default(), OffloadPolicy::Never);
    }
}
