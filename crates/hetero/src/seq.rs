//! Sequential reference implementations.
//!
//! These are the single-processor baselines of the paper's Tables 3, 4
//! and 8 (and the denominators of Figure 2's speedups). Each runs the
//! same kernels as the parallel workers on the whole image and reports
//! its analytic cost in megaflops; virtual sequential time is
//! `mflops × w` for the processor of interest (Thunderhead-class
//! `w = 0.0131` in the paper's tables).

use crate::config::AlgoParams;
use crate::kernels;
use hsi_cube::{HyperCube, LabelImage};
use hsi_linalg::eigen::SymmetricEigen;
use hsi_linalg::lstsq::FclsProblem;
use hsi_linalg::ortho::OrthoBasis;
use hsi_linalg::Matrix;
use hsi_morpho::StructuringElement;

/// A detected target pixel in global image coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedTarget {
    /// Image line.
    pub line: usize,
    /// Image sample.
    pub sample: usize,
    /// The pixel's spectrum.
    pub spectrum: Vec<f32>,
}

/// Output of a sequential run: the result plus its megaflop cost.
#[derive(Debug, Clone)]
pub struct SeqOutput<T> {
    /// The analysis result.
    pub result: T,
    /// Total analytic cost in megaflops.
    pub mflops: f64,
}

impl<T> SeqOutput<T> {
    /// Virtual runtime in seconds on a processor with the given
    /// cycle-time (secs/megaflop).
    pub fn virtual_secs(&self, cycle_time: f64) -> f64 {
        self.mflops * cycle_time
    }
}

fn spectrum_f64(px: &[f32]) -> Vec<f64> {
    px.iter().map(|&v| v as f64).collect()
}

/// Sequential ATDCA: iterative orthogonal-subspace target extraction.
pub fn atdca(cube: &HyperCube, params: &AlgoParams) -> SeqOutput<Vec<DetectedTarget>> {
    let full = (0, cube.lines());
    let mut mflops = 0.0;
    let (first, mf) = kernels::brightest(cube, full);
    mflops += mf;
    let first = first.expect("atdca: empty image");
    let mut targets = vec![DetectedTarget {
        line: first.line,
        sample: first.sample,
        spectrum: cube.pixel(first.line, first.sample).to_vec(),
    }];
    let mut basis = OrthoBasis::new(cube.bands());
    basis.push(&spectrum_f64(&targets[0].spectrum));
    mflops += crate::flops::mflop(crate::flops::basis_push(cube.bands(), 0));

    while targets.len() < params.num_targets {
        let (best, mf) = kernels::max_projection(cube, &basis, full);
        mflops += mf;
        let best = best.expect("atdca: empty image");
        let spectrum = cube.pixel(best.line, best.sample).to_vec();
        basis.push(&spectrum_f64(&spectrum));
        mflops += crate::flops::mflop(crate::flops::basis_push(cube.bands(), basis.len() - 1));
        targets.push(DetectedTarget {
            line: best.line,
            sample: best.sample,
            spectrum,
        });
    }
    SeqOutput {
        result: targets,
        mflops,
    }
}

/// Sequential UFCLS: iterative fully-constrained least-squares target
/// generation.
pub fn ufcls(cube: &HyperCube, params: &AlgoParams) -> SeqOutput<Vec<DetectedTarget>> {
    let full = (0, cube.lines());
    let n = cube.bands();
    let mut mflops = 0.0;
    let (first, mf) = kernels::brightest(cube, full);
    mflops += mf;
    let first = first.expect("ufcls: empty image");
    let mut targets = vec![DetectedTarget {
        line: first.line,
        sample: first.sample,
        spectrum: cube.pixel(first.line, first.sample).to_vec(),
    }];

    while targets.len() < params.num_targets {
        let u = Matrix::from_rows(
            &targets
                .iter()
                .map(|t| spectrum_f64(&t.spectrum))
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice())
                .collect::<Vec<_>>(),
        );
        let t = u.rows();
        let problem = FclsProblem::new(u).expect("ufcls: singular endmember set");
        mflops += crate::flops::mflop(crate::flops::gram(n, t));
        let (best, mf) = kernels::max_fcls_error(cube, &problem, full);
        mflops += mf;
        let best = best.expect("ufcls: empty image");
        targets.push(DetectedTarget {
            line: best.line,
            sample: best.sample,
            spectrum: cube.pixel(best.line, best.sample).to_vec(),
        });
    }
    SeqOutput {
        result: targets,
        mflops,
    }
}

/// The PCT model built by the sequential algorithm (also broadcast by
/// the parallel one).
#[derive(Debug, Clone)]
pub struct PctModel {
    /// The `c × N` principal transform (rows = top eigenvectors).
    pub transform: Matrix,
    /// The image mean spectrum.
    pub mean: Vec<f64>,
    /// Class representatives in transformed space.
    pub class_reps: Vec<Vec<f64>>,
}

/// Transforms full-spectrum class representatives into PCT space.
pub fn transform_reps(transform: &Matrix, mean: &[f64], reps: &[Vec<f32>]) -> Vec<Vec<f64>> {
    reps.iter()
        .map(|r| {
            let centred: Vec<f64> = r.iter().zip(mean).map(|(&v, &m)| v as f64 - m).collect();
            transform.matvec(&centred).expect("transform shape")
        })
        .collect()
}

/// Sequential PCT classification (Algorithm 4 on one processor).
pub fn pct(cube: &HyperCube, params: &AlgoParams) -> SeqOutput<(LabelImage, PctModel)> {
    let full = (0, cube.lines());
    let n = cube.bands();
    let c = params.num_classes;
    let mut mflops = 0.0;

    // Step 2-3: unique spectral set, reduced to c representatives.
    let cap = 4 * c;
    let (set, mf) = kernels::unique_set(cube, full, params.sad_threshold, cap);
    mflops += mf;
    let scored: Vec<(Vec<f32>, f64)> = set
        .iter()
        .map(|p| (cube.pixel(p.line, p.sample).to_vec(), p.score))
        .collect();
    let (reps, mf) = reduce_candidates(&scored, params.sad_threshold, c);
    mflops += mf;

    // Steps 4-6: mean and covariance.
    let (acc, mf) = kernels::covariance_partial(cube, full);
    mflops += mf;
    let mean = acc.mean().expect("pct: empty image");
    let cov = acc.covariance().expect("pct: empty image");

    // Step 7: eigendecomposition (sequential at the master in the paper).
    let eig = SymmetricEigen::new(&cov).expect("pct: eigen failed");
    mflops += crate::flops::mflop(crate::flops::jacobi_eigen(n));
    let transform = eig.principal_transform(c.min(n)).expect("pct: transform");

    // Steps 8-9: transform + classify.
    let class_reps = transform_reps(&transform, &mean, &reps);
    let (labels, mf) = kernels::pct_label(cube, full, &transform, &mean, &class_reps);
    mflops += mf;
    let image = LabelImage::from_vec(cube.lines(), cube.samples(), labels);
    SeqOutput {
        result: (
            image,
            PctModel {
                transform,
                mean,
                class_reps,
            },
        ),
        mflops,
    }
}

/// Reduces scored candidate spectra into at most `c` mutually distinct
/// representatives (the master's unique-set formation, PCT step 3 /
/// MORPH step 3).
///
/// Candidates are greedily clustered in descending score order: a
/// candidate within `threshold` SAD of an existing representative joins
/// it (raising that representative's **support**); otherwise it founds a
/// new one. Representatives are then ranked by support (ties by score)
/// and the top `c` returned. Support — how many partitions nominated a
/// matching spectrum — is what makes the reduction robust to the
/// processor count: a class present across the scene is nominated by
/// many partitions, while a single anomalous neighbourhood is nominated
/// by one.
pub fn reduce_candidates(
    scored: &[(Vec<f32>, f64)],
    threshold: f64,
    c: usize,
) -> (Vec<Vec<f32>>, f64) {
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&a, &b| {
        scored[b]
            .1
            .partial_cmp(&scored[a].1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    // (spectrum, support, founding score). The cluster count is capped at
    // 4c: beyond that, unmatched (necessarily low-score) candidates are
    // dropped, which bounds the master's merge cost at O(candidates × 4c)
    // SAD evaluations — without the cap the sequential component grows
    // with the processor count and dominates at 256 CPUs, which the
    // paper's own reported SEQ values (≈ 1–2 s at 256) rule out.
    let cap = 4 * c.max(1);
    let mut reps: Vec<(Vec<f32>, usize, f64)> = Vec::new();
    let mut sad_evals = 0usize;
    for i in order {
        let (s, score) = (&scored[i].0, scored[i].1);
        let mut joined = false;
        for (rep, support, _) in reps.iter_mut() {
            sad_evals += 1;
            if hsi_cube::metrics::sad(s, rep) <= threshold {
                *support += 1;
                joined = true;
                break;
            }
        }
        if !joined && reps.len() < cap {
            reps.push((s.clone(), 1, score));
        }
    }
    reps.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
    });
    reps.truncate(c);
    let n = scored.first().map(|s| s.0.len()).unwrap_or(1);
    let mflops = crate::flops::mflop(crate::flops::sad(n) * sad_evals as f64);
    (reps.into_iter().map(|(s, _, _)| s).collect(), mflops)
}

/// Sequential MORPH classification (Algorithm 5 on one processor).
pub fn morph(cube: &HyperCube, params: &AlgoParams) -> SeqOutput<(LabelImage, Vec<Vec<f32>>)> {
    let full = (0, cube.lines());
    let se = StructuringElement::square(params.se_radius);
    let mut mflops = 0.0;

    // Step 2: MEI + top-c mutually distinct candidates.
    let (top, mf) = kernels::mei_top(
        cube,
        &se,
        params.morph_iterations,
        full,
        params.num_classes,
        params.sad_threshold,
    );
    mflops += mf;
    let scored: Vec<(Vec<f32>, f64)> = top
        .iter()
        .map(|p| (cube.pixel(p.line, p.sample).to_vec(), p.score))
        .collect();

    // Step 3: unique set of p <= c representatives.
    let (reps, mf) = reduce_candidates(&scored, params.sad_threshold, params.num_classes);
    mflops += mf;

    // Steps 4-5: SAD labelling.
    let (labels, mf) = kernels::sad_label(cube, full, &reps);
    mflops += mf;
    let image = LabelImage::from_vec(cube.lines(), cube.samples(), labels);
    SeqOutput {
        result: (image, reps),
        mflops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::metrics::sad;
    use hsi_cube::synth::{wtc_scene, WtcConfig};

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    fn params() -> AlgoParams {
        AlgoParams {
            num_targets: 10,
            num_classes: 7,
            morph_iterations: 2,
            ..Default::default()
        }
    }

    #[test]
    fn atdca_extracts_requested_targets() {
        let s = scene();
        let out = atdca(&s.cube, &params());
        assert_eq!(out.result.len(), 10);
        assert!(out.mflops > 0.0);
        // First target is the global brightest pixel (a hot spot).
        let ((bl, bs), _) = s.cube.brightest_pixel().unwrap();
        assert_eq!((out.result[0].line, out.result[0].sample), (bl, bs));
        // Targets are distinct pixels.
        for i in 0..out.result.len() {
            for j in (i + 1)..out.result.len() {
                assert_ne!(
                    (out.result[i].line, out.result[i].sample),
                    (out.result[j].line, out.result[j].sample)
                );
            }
        }
    }

    #[test]
    fn atdca_finds_thermal_targets() {
        let s = scene();
        let out = atdca(
            &s.cube,
            &AlgoParams {
                num_targets: 18,
                ..params()
            },
        );
        // Every ground-truth hot spot must be closely matched by some
        // detected target (the paper's Table 3 claim for ATDCA).
        for t in &s.targets {
            let truth = s.cube.pixel(t.coord.0, t.coord.1);
            let best = out
                .result
                .iter()
                .map(|d| sad(&d.spectrum, truth))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 0.1, "hot spot {} unmatched: best SAD {best}", t.name);
        }
    }

    #[test]
    fn ufcls_extracts_requested_targets() {
        let s = scene();
        let out = ufcls(&s.cube, &params());
        assert_eq!(out.result.len(), 10);
        assert!(out.mflops > 0.0);
    }

    #[test]
    fn pct_labels_every_pixel() {
        let s = scene();
        let out = pct(&s.cube, &params());
        let (labels, model) = &out.result;
        assert_eq!(labels.lines(), s.cube.lines());
        assert_eq!(model.transform.rows(), 7);
        assert_eq!(model.transform.cols(), s.cube.bands());
        // Labels fall in [0, c).
        for &l in labels.as_slice() {
            assert!(l < 7);
        }
    }

    #[test]
    fn pct_classification_is_meaningful() {
        let s = scene();
        let out = pct(&s.cube, &params());
        let report = hsi_cube::labels::score(&out.result.0, &s.truth);
        // Sequential PCT on the tiny 64-band scene: modest but far above
        // the ~9% chance level of an 11-class map.
        assert!(
            report.overall > 30.0,
            "PCT accuracy too low: {}",
            report.overall
        );
    }

    #[test]
    fn morph_labels_every_pixel_and_beats_chance() {
        let s = scene();
        let out = morph(&s.cube, &params());
        let (labels, reps) = &out.result;
        assert_eq!(labels.as_slice().len(), s.cube.num_pixels());
        assert!(!reps.is_empty() && reps.len() <= 7);
        let report = hsi_cube::labels::score(labels, &s.truth);
        assert!(
            report.overall > 30.0,
            "MORPH accuracy too low: {}",
            report.overall
        );
    }

    #[test]
    fn reduce_candidates_dedupes() {
        let a = (vec![1.0f32, 0.0], 3.0);
        let a2 = (vec![0.999f32, 0.001], 2.0);
        let b = (vec![0.0f32, 1.0], 1.0);
        let (reps, _) = reduce_candidates(&[a, a2, b], 0.05, 5);
        assert_eq!(reps.len(), 2);
    }

    #[test]
    fn reduce_candidates_caps_at_c_and_prefers_high_scores() {
        let scored: Vec<(Vec<f32>, f64)> = (0..6)
            .map(|i| {
                let angle = i as f32 * 0.3;
                (vec![angle.cos(), angle.sin()], i as f64)
            })
            .collect();
        let (reps, _) = reduce_candidates(&scored, 0.05, 3);
        assert_eq!(reps.len(), 3);
        // Highest-scoring candidate (index 5) must be kept first.
        assert_eq!(reps[0], scored[5].0);
    }

    #[test]
    fn virtual_secs_scale_with_cycle_time() {
        let s = scene();
        let out = atdca(&s.cube, &params());
        let fast = out.virtual_secs(0.0026);
        let slow = out.virtual_secs(0.0451);
        assert!((slow / fast - 0.0451 / 0.0026).abs() < 1e-9);
    }

    #[test]
    fn morph_cost_exceeds_pct_cost() {
        // Table 4: the morphological algorithm is the most expensive.
        let s = scene();
        let p = AlgoParams {
            morph_iterations: 5,
            ..params()
        };
        let c_pct = pct(&s.cube, &p).mflops;
        let c_morph = morph(&s.cube, &p).mflops;
        assert!(
            c_morph > c_pct,
            "MORPH ({c_morph}) should cost more than PCT ({c_pct})"
        );
    }
}
