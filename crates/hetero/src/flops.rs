//! Analytic kernel cost model (megaflops).
//!
//! Virtual compute time = megaflops × the processor's cycle-time. Every
//! kernel the algorithms execute has a documented flop-count formula
//! here, derived from its inner-loop structure; the same formulas govern
//! sequential baselines and parallel workers, so speedups are
//! self-consistent. Counts are *representative* (multiply-add = 2 flops,
//! transcendental ≈ 10), matching how the paper's cycle-times
//! (secs/megaflop) were themselves benchmarked.

/// Flops for one dot product of length `n` (mul + add per element).
#[inline]
pub fn dot(n: usize) -> f64 {
    2.0 * n as f64
}

/// Flops for one SAD evaluation over `n` bands: three interleaved dot
/// products plus `sqrt`, division and `acos` (≈ 10 flops of
/// transcendental work).
#[inline]
pub fn sad(n: usize) -> f64 {
    6.0 * n as f64 + 10.0
}

/// Flops for one brightness evaluation `xᵀx`.
#[inline]
pub fn brightness(n: usize) -> f64 {
    dot(n)
}

/// Flops to score one pixel against an orthonormal basis of size `k`
/// (`‖x‖² − Σ (qᵢᵀx)²`): `k + 1` dot products plus `k` multiply-adds.
#[inline]
pub fn projection_score(n: usize, k: usize) -> f64 {
    dot(n) * (k + 1) as f64 + 2.0 * k as f64
}

/// Flops to orthonormalise one new vector against `k` basis vectors
/// (two modified Gram–Schmidt passes + normalisation).
#[inline]
pub fn basis_push(n: usize, k: usize) -> f64 {
    2.0 * (k as f64) * (dot(n) + 2.0 * n as f64) + 3.0 * n as f64
}

/// Flops for one FCLS unmixing of a pixel against `t` endmembers over
/// `n` bands, modelled after the fast Gram-side implementation (Heinz &
/// Chang) the paper's runtimes imply: the correlation vector (`t` dots
/// of length `n`) plus the solve with cached factorisations (≈ `2t²`,
/// active-set iterations amortised). The residual uses the Pythagorean
/// identity on precomputed terms. Calibrated so UFCLS's total lands
/// just below ATDCA's, as in the paper's Table 3 (916 s vs 1263 s).
#[inline]
pub fn fcls(n: usize, t: usize) -> f64 {
    let t_f = t as f64;
    t_f * dot(n) + 2.0 * t_f * t_f
}

/// Flops to accumulate one pixel into a mean/covariance accumulator:
/// the upper triangle of `xxᵀ` (`n(n+1)/2` multiply-adds) plus the sum.
#[inline]
pub fn covariance_accumulate(n: usize) -> f64 {
    (n * (n + 1)) as f64 + 2.0 * n as f64
}

/// Flops for the master's Jacobi eigendecomposition of an `n × n`
/// symmetric matrix (≈ 10 sweeps × n²/2 rotations × 12n updates).
#[inline]
pub fn jacobi_eigen(n: usize) -> f64 {
    60.0 * (n as f64).powi(3)
}

/// Flops to PCT-transform one pixel into `c` components (`c` dots plus
/// the mean subtraction).
#[inline]
pub fn pct_transform(n: usize, c: usize) -> f64 {
    (c as f64) * dot(n) + n as f64
}

/// Flops to classify one `c`-dimensional transformed pixel against `p`
/// class representatives by SAD.
#[inline]
pub fn pct_classify(c: usize, p: usize) -> f64 {
    (p as f64) * sad(c)
}

/// Flops for one MEI iteration on a block of `pixels` pixels over `n`
/// bands with a structuring element of `se_len` offsets: two `D_B`
/// passes (`se_len` SADs per pixel each, for the erosion and dilation
/// rankings, as the paper's runtimes imply), the two extremum scans
/// (`2·se_len` compares) and the per-pixel erosion/dilation SAD.
/// Calibrated so MORPH is the most expensive algorithm, ≈ 1.9–2.3× the
/// ATDCA total, matching the paper's Tables 3–4 (2334 s vs 1263 s).
#[inline]
pub fn mei_iteration(pixels: usize, n: usize, se_len: usize) -> f64 {
    let per_pixel = 2.0 * (se_len as f64) * sad(n) + 2.0 * se_len as f64 + sad(n);
    per_pixel * pixels as f64
}

/// Flops to classify one pixel against `p` full-spectrum class
/// representatives by SAD (MORPH's final labelling step).
#[inline]
pub fn sad_classify(n: usize, p: usize) -> f64 {
    (p as f64) * sad(n)
}

/// Flops for greedily deduplicating `m` spectra against a growing unique
/// set bounded by `cap` (worst case `m × cap` SADs).
#[inline]
pub fn unique_set(n: usize, m: usize, cap: usize) -> f64 {
    (m as f64) * (cap as f64) * sad(n)
}

/// Flops to build the `t × t` endmember Gram matrix over `n` bands
/// (FCLS problem setup, once per UFCLS iteration).
#[inline]
pub fn gram(n: usize, t: usize) -> f64 {
    (t * t) as f64 * dot(n)
}

/// Converts flops to megaflops.
#[inline]
pub fn mflop(flops: f64) -> f64 {
    flops / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_scale_linearly_in_bands() {
        assert_eq!(dot(224), 448.0);
        assert!(sad(224) > 3.0 * dot(224));
        assert_eq!(brightness(100), 200.0);
    }

    #[test]
    fn projection_grows_with_basis() {
        assert!(projection_score(224, 5) > projection_score(224, 1));
        // k = 0 is just the brightness dot.
        assert_eq!(projection_score(224, 0), dot(224));
    }

    #[test]
    fn fcls_grows_with_endmember_count() {
        let small = fcls(224, 2);
        let big = fcls(224, 8);
        assert!(big > 3.9 * small, "fcls should be ~linear in t");
        // The quadratic solve term is visible but not dominant at small t.
        assert!(fcls(224, 8) < 5.0 * small);
    }

    #[test]
    fn paper_sequential_cost_ordering() {
        // The paper's single-processor times order the algorithms as
        // UFCLS < ATDCA < PCT < MORPH (916 < 1263 < 1884 < 2334 s).
        // Check the per-pixel cost model reproduces that ordering for
        // the paper's parameters (t = 18, c = 7, 3x3 SE, 5 iterations).
        let n = 224;
        let atdca: f64 = (0..18).map(|k| projection_score(n, k)).sum();
        let ufcls: f64 = brightness(n) + (1..18).map(|t| fcls(n, t)).sum::<f64>();
        let pct =
            covariance_accumulate(n) + pct_transform(n, 7) + pct_classify(7, 7) + 28.0 * sad(n); // unique-set scan at cap = 4c
        let morph = mei_iteration(1, n, 9) * 5.0 + sad_classify(n, 7);
        assert!(ufcls < atdca, "UFCLS {ufcls} !< ATDCA {atdca}");
        assert!(atdca < pct, "ATDCA {atdca} !< PCT {pct}");
        assert!(pct < morph, "PCT {pct} !< MORPH {morph}");
    }

    #[test]
    fn mei_linear_in_pixels_and_se() {
        let base = mei_iteration(100, 64, 9);
        assert!((mei_iteration(200, 64, 9) - 2.0 * base).abs() < 1e-9);
        assert!(mei_iteration(100, 64, 25) > 2.0 * base);
    }

    #[test]
    fn mflop_conversion() {
        assert_eq!(mflop(2_000_000.0), 2.0);
    }

    #[test]
    fn eigen_is_master_scale_work() {
        // 224-band eigendecomposition ≈ 674 Gflop-ish? No: 60·224³ ≈ 674 Mflop.
        let f = jacobi_eigen(224);
        assert!(f > 5.0e8 && f < 1.0e9, "got {f}");
    }
}
