//! Chunked work decomposition shared by every scheduler.
//!
//! PR 1 of the dynamic-scheduling work ([`crate::dynamic`]) hard-wired
//! chunked self-scheduling to the MORPH classifier. The fault-tolerant
//! drivers in [`crate::ft`] need the same decomposition for *all four*
//! algorithms, so this module factors it behind one trait:
//!
//! * a [`ChunkedAlgo`] describes an algorithm as a sequence of
//!   **rounds**; in every round the image lines are cut into chunks,
//!   each chunk yields a [`ChunkedAlgo::Partial`], and the master
//!   reduces the round's partials into the next
//!   [`ChunkedAlgo::State`];
//! * the four implementations — [`AtdcaChunks`], [`UfclsChunks`],
//!   [`PctChunks`], [`MorphChunks`] — reuse the exact worker kernels of
//!   [`crate::kernels`], so any chunk grid reproduces the partitioned
//!   algorithms' analysis results;
//! * [`ChunkPolicy`] (moved here from `dynamic`, which re-exports it)
//!   sizes the chunks a demand-driven scheduler hands out.
//!
//! **Determinism.** The argmax algorithms (ATDCA, UFCLS) produce the
//! *same* output for every chunk grid: chunk winners are folded with the
//! row-major tie-break of [`crate::par`]'s `best_candidate`, so the
//! global winner equals a sequential scan's. (The same total order is
//! what lets the partitioned algorithms fold winners pairwise inside a
//! tree `simnet::coll::allreduce` — any grouping of the fold agrees
//! with the flat scan, so chunked drivers, linear gathers, and fused
//! tree reductions all select identical targets.) PCT and MORPH outputs
//! depend on the grid (per-chunk candidate pools differ, exactly as the
//! paper's per-partition unique sets do), which is why the fault-tolerant
//! self-scheduler uses a *fixed* grid: results are then identical no
//! matter which worker computes which chunk — or which workers crash.

use crate::config::AlgoParams;
use crate::flops;
use crate::kernels;
use crate::msg::Candidate;
use crate::par::{best_candidate, empty_candidate};
use crate::seq::{reduce_candidates, transform_reps, DetectedTarget, PctModel};
use hsi_cube::{HyperCube, LabelImage};
use hsi_linalg::covariance::CovarianceAccumulator;
use hsi_linalg::eigen::SymmetricEigen;
use hsi_linalg::lstsq::FclsProblem;
use hsi_linalg::ortho::OrthoBasis;
use hsi_linalg::Matrix;
use hsi_morpho::StructuringElement;

/// How a demand-driven scheduler sizes its chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Fixed chunk size in image lines.
    Fixed(usize),
    /// Guided self-scheduling (Polychronopoulos & Kuck): each grab takes
    /// `ceil(remaining / P)` lines, floored at `min` — large chunks while
    /// plenty remains (low overhead), small chunks near the end (good
    /// balance).
    Guided {
        /// Smallest chunk the scheduler will hand out.
        min: usize,
    },
}

impl ChunkPolicy {
    /// Lines of the next chunk given the remaining lines and the worker
    /// count.
    pub fn next_chunk(&self, remaining: usize, workers: usize) -> usize {
        match *self {
            ChunkPolicy::Fixed(n) => n.min(remaining),
            ChunkPolicy::Guided { min } => {
                remaining.div_ceil(workers.max(1)).max(min).min(remaining)
            }
        }
    }
}

/// An algorithm decomposed into rounds of independent line chunks.
///
/// A driver executes `rounds()` rounds. Each round it ships the current
/// state to the workers, has chunks of lines computed via
/// [`ChunkedAlgo::run_chunk`], and reduces the partials — sorted by
/// first line — into the next state with [`ChunkedAlgo::reduce`]. After
/// the last round, [`ChunkedAlgo::finish`] extracts the output.
///
/// Chunks carry **global** line coordinates over the full cube; every
/// rank is assumed to reach the image data (the coordinator-only
/// master/worker model of [`crate::ft`] — data staging costs are the
/// drivers' concern, not the trait's).
pub trait ChunkedAlgo {
    /// Master-held state broadcast to workers at each round start
    /// (`Sync` because workers hold it behind an `Arc` wire body).
    type State: Clone + Send + Sync + 'static;
    /// Per-chunk result returned to the master.
    type Partial: Send + 'static;
    /// The final analysis result.
    type Output;
    /// Round-constant scratch built once per `(round, state)` by
    /// [`ChunkedAlgo::prepare`] and reused across every chunk of the
    /// round, so per-chunk work stops reallocating round-invariant
    /// structures (ATDCA's orthogonal basis, UFCLS's Gram system, PCT's
    /// transform matrix). Purely a host-allocation concern: the charged
    /// cost model ([`ChunkedAlgo::chunk_mflops`]) is unchanged.
    type Scratch;

    /// Short algorithm name (reports and benches).
    fn name(&self) -> &'static str;
    /// Total image lines to cover each round.
    fn lines(&self) -> usize;
    /// Number of rounds.
    fn rounds(&self) -> usize;
    /// The state before round 0.
    fn initial_state(&self) -> Self::State;
    /// Analytic compute cost (megaflops) of an `n`-line chunk in
    /// `round` — the cost a worker charges and a master uses for
    /// completion estimates. A pure function of `(round, n)` so every
    /// scheduler prices identical work identically.
    fn chunk_mflops(&self, round: usize, n: usize) -> f64;
    /// Bytes an accelerator would stage `(host → device, device → host)`
    /// to run an `n`-line chunk of `round`: the chunk's pixel block plus
    /// the round state in, the partial result out. Like
    /// [`ChunkedAlgo::chunk_mflops`] this is **analytic** — a pure
    /// function of `(round, n)`, never of the data — so offload
    /// decisions and deadline predictions ([`crate::offload`]) are
    /// identical on every rank and every rerun.
    fn chunk_bytes(&self, round: usize, n: usize) -> (u64, u64);
    /// Wire size (bits) of a state broadcast.
    fn state_bits(&self, state: &Self::State) -> u64;
    /// Wire size (bits) of a partial result.
    fn partial_bits(&self, partial: &Self::Partial) -> u64;
    /// Builds the scratch shared by every `run_chunk` call of `round`.
    fn prepare(&self, round: usize, state: &Self::State) -> Self::Scratch;
    /// Computes the partial for global lines `[first, first + n)`.
    fn run_chunk(
        &self,
        round: usize,
        state: &Self::State,
        scratch: &mut Self::Scratch,
        first: usize,
        n: usize,
    ) -> Self::Partial;
    /// Merges a round's partials (sorted by first line) into the next
    /// state; returns it with the master's merge cost in megaflops.
    fn reduce(
        &self,
        round: usize,
        state: Self::State,
        partials: Vec<(usize, Self::Partial)>,
    ) -> (Self::State, f64);
    /// Extracts the output from the final state.
    fn finish(&self, state: Self::State) -> Self::Output;
}

fn spectra_bits(spectra: &[Vec<f32>]) -> u64 {
    spectra.iter().map(|s| (s.len() * 32) as u64).sum()
}

fn candidate_bits(c: &Candidate) -> u64 {
    32 + 32 + 64 + (c.spectrum.len() * 32) as u64
}

// ---------------------------------------------------------------------
// ATDCA
// ---------------------------------------------------------------------

/// ATDCA (paper Algorithm 2) as a chunked algorithm: one round per
/// target; each chunk nominates its brightest (round 0) or
/// maximum-projection pixel, the reduce selects the global winner with
/// the sequential tie-break. Output is identical for **any** chunk
/// grid.
pub struct AtdcaChunks<'a> {
    cube: &'a HyperCube,
    params: &'a AlgoParams,
}

impl<'a> AtdcaChunks<'a> {
    /// Wraps a cube and parameters.
    pub fn new(cube: &'a HyperCube, params: &'a AlgoParams) -> Self {
        AtdcaChunks { cube, params }
    }

    fn basis_of(&self, targets: &[DetectedTarget]) -> OrthoBasis {
        let mut basis = OrthoBasis::new(self.cube.bands());
        for t in targets {
            let wide: Vec<f64> = t.spectrum.iter().map(|&v| v as f64).collect();
            basis.push(&wide);
        }
        basis
    }
}

impl ChunkedAlgo for AtdcaChunks<'_> {
    type State = Vec<DetectedTarget>;
    type Partial = Candidate;
    type Output = Vec<DetectedTarget>;
    type Scratch = OrthoBasis;

    fn name(&self) -> &'static str {
        "ATDCA"
    }

    fn lines(&self) -> usize {
        self.cube.lines()
    }

    fn rounds(&self) -> usize {
        self.params.num_targets
    }

    fn initial_state(&self) -> Self::State {
        Vec::new()
    }

    fn chunk_mflops(&self, round: usize, n: usize) -> f64 {
        let bands = self.cube.bands();
        let pixels = (n * self.cube.samples()) as f64;
        let per_pixel = if round == 0 {
            flops::brightness(bands)
        } else {
            flops::projection_score(bands, round)
        };
        // Rebuilding the basis from the broadcast targets is the chunked
        // equivalent of the per-round basis_push of `par::atdca`.
        let rebuild: f64 = (0..round).map(|k| flops::basis_push(bands, k)).sum();
        flops::mflop(per_pixel * pixels + rebuild)
    }

    fn chunk_bytes(&self, round: usize, n: usize) -> (u64, u64) {
        let bands = self.cube.bands() as u64;
        // In: the chunk's f32 pixel block plus the `round` target spectra
        // the projection basis is rebuilt from. Out: one candidate.
        let h2d = (n * self.cube.samples()) as u64 * bands * 4 + round as u64 * bands * 4;
        (h2d, bands * 4 + 16)
    }

    fn state_bits(&self, state: &Self::State) -> u64 {
        state.iter().map(|t| (t.spectrum.len() * 32) as u64).sum()
    }

    fn partial_bits(&self, partial: &Self::Partial) -> u64 {
        candidate_bits(partial)
    }

    fn prepare(&self, _round: usize, state: &Self::State) -> OrthoBasis {
        self.basis_of(state)
    }

    fn run_chunk(
        &self,
        round: usize,
        _state: &Self::State,
        scratch: &mut OrthoBasis,
        first: usize,
        n: usize,
    ) -> Candidate {
        let range = (first, first + n);
        let (cand, _) = if round == 0 {
            kernels::brightest(self.cube, range)
        } else {
            kernels::max_projection(self.cube, scratch, range)
        };
        match cand {
            Some(p) => p.to_candidate(self.cube, 0, 0),
            None => empty_candidate(self.cube.bands()),
        }
    }

    fn reduce(
        &self,
        round: usize,
        mut state: Self::State,
        partials: Vec<(usize, Candidate)>,
    ) -> (Self::State, f64) {
        let count = partials.len();
        let best = best_candidate(partials.into_iter().map(|(_, c)| c).collect());
        state.push(DetectedTarget {
            line: best.line as usize,
            sample: best.sample as usize,
            spectrum: best.spectrum,
        });
        let mflops = flops::mflop(flops::projection_score(self.cube.bands(), round) * count as f64);
        (state, mflops)
    }

    fn finish(&self, state: Self::State) -> Self::Output {
        state
    }
}

// ---------------------------------------------------------------------
// UFCLS
// ---------------------------------------------------------------------

/// UFCLS (paper Algorithm 3) as a chunked algorithm: rounds grow the
/// endmember set by the pixel with the largest fully-constrained
/// least-squares error. Output is identical for any chunk grid.
pub struct UfclsChunks<'a> {
    cube: &'a HyperCube,
    params: &'a AlgoParams,
}

impl<'a> UfclsChunks<'a> {
    /// Wraps a cube and parameters.
    pub fn new(cube: &'a HyperCube, params: &'a AlgoParams) -> Self {
        UfclsChunks { cube, params }
    }

    fn endmember_matrix(targets: &[DetectedTarget]) -> Matrix {
        let rows: Vec<Vec<f64>> = targets
            .iter()
            .map(|t| t.spectrum.iter().map(|&v| v as f64).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }
}

impl ChunkedAlgo for UfclsChunks<'_> {
    type State = Vec<DetectedTarget>;
    type Partial = Candidate;
    type Output = Vec<DetectedTarget>;
    /// `None` in round 0 (brightness needs no system); the factored
    /// least-squares problem afterwards.
    type Scratch = Option<FclsProblem>;

    fn name(&self) -> &'static str {
        "UFCLS"
    }

    fn lines(&self) -> usize {
        self.cube.lines()
    }

    fn rounds(&self) -> usize {
        self.params.num_targets
    }

    fn initial_state(&self) -> Self::State {
        Vec::new()
    }

    fn chunk_mflops(&self, round: usize, n: usize) -> f64 {
        let bands = self.cube.bands();
        let pixels = (n * self.cube.samples()) as f64;
        if round == 0 {
            flops::mflop(flops::brightness(bands) * pixels)
        } else {
            // Each chunk rebuilds the Gram system once, then unmixes its
            // pixels.
            flops::mflop(flops::fcls(bands, round) * pixels + flops::gram(bands, round))
        }
    }

    fn chunk_bytes(&self, round: usize, n: usize) -> (u64, u64) {
        let bands = self.cube.bands() as u64;
        // In: the chunk's f32 pixel block plus the `round` endmember
        // spectra of the unmixing system. Out: one candidate.
        let h2d = (n * self.cube.samples()) as u64 * bands * 4 + round as u64 * bands * 4;
        (h2d, bands * 4 + 16)
    }

    fn state_bits(&self, state: &Self::State) -> u64 {
        state.iter().map(|t| (t.spectrum.len() * 32) as u64).sum()
    }

    fn partial_bits(&self, partial: &Self::Partial) -> u64 {
        candidate_bits(partial)
    }

    fn prepare(&self, round: usize, state: &Self::State) -> Option<FclsProblem> {
        if round == 0 {
            None
        } else {
            let u = Self::endmember_matrix(state);
            Some(FclsProblem::new(u).expect("ufcls: singular endmembers"))
        }
    }

    fn run_chunk(
        &self,
        round: usize,
        _state: &Self::State,
        scratch: &mut Option<FclsProblem>,
        first: usize,
        n: usize,
    ) -> Candidate {
        let range = (first, first + n);
        let (cand, _) = if round == 0 {
            kernels::brightest(self.cube, range)
        } else {
            let problem = scratch.as_ref().expect("ufcls: round > 0 has a system");
            kernels::max_fcls_error(self.cube, problem, range)
        };
        match cand {
            Some(p) => p.to_candidate(self.cube, 0, 0),
            None => empty_candidate(self.cube.bands()),
        }
    }

    fn reduce(
        &self,
        round: usize,
        mut state: Self::State,
        partials: Vec<(usize, Candidate)>,
    ) -> (Self::State, f64) {
        let count = partials.len();
        let best = best_candidate(partials.into_iter().map(|(_, c)| c).collect());
        state.push(DetectedTarget {
            line: best.line as usize,
            sample: best.sample as usize,
            spectrum: best.spectrum,
        });
        let mflops = flops::mflop(flops::fcls(self.cube.bands(), round.max(1)) * count as f64);
        (state, mflops)
    }

    fn finish(&self, state: Self::State) -> Self::Output {
        state
    }
}

// ---------------------------------------------------------------------
// PCT
// ---------------------------------------------------------------------

/// PCT round-by-round state (see [`PctChunks`]).
#[derive(Debug, Clone)]
pub enum PctState {
    /// Before round 0.
    Fresh,
    /// After round 0: the merged class representatives. Master-held —
    /// the covariance round does not need them, so the broadcast is
    /// sized zero.
    Reps(Vec<Vec<f32>>),
    /// After round 1: the PCT model (what the real algorithm
    /// broadcasts before the labelling step).
    Model {
        /// Full-spectrum class representatives (master bookkeeping).
        reps: Vec<Vec<f32>>,
        /// Rows of the `c × N` principal transform.
        transform: Vec<Vec<f64>>,
        /// The image mean spectrum.
        mean: Vec<f64>,
        /// Class representatives in transformed space.
        classes: Vec<Vec<f64>>,
    },
    /// After round 2: the assembled labels plus the model.
    Done {
        /// Row-major labels of the full image.
        labels: Vec<u16>,
        /// Rows of the principal transform.
        transform: Vec<Vec<f64>>,
        /// The image mean spectrum.
        mean: Vec<f64>,
        /// Class representatives in transformed space.
        classes: Vec<Vec<f64>>,
    },
}

/// Per-chunk PCT partials (one variant per round).
#[derive(Debug, Clone)]
pub enum PctPartial {
    /// Round 0: scored unique-set spectra.
    Cands(Vec<(Vec<f32>, f64)>),
    /// Round 1: a flattened covariance accumulator shard.
    Stats(Vec<f64>),
    /// Round 2: labels of the chunk's lines.
    Labels(Vec<u16>),
}

/// PCT (paper Algorithm 4) as a chunked algorithm, three rounds:
/// unique-set construction, covariance accumulation, and labelling with
/// the eigendecomposition at the reduce between rounds 1 and 2. As with
/// the partitioned algorithm, the candidate pool — hence the exact
/// labelling — depends on the chunk grid; a fixed grid gives identical
/// output regardless of worker assignment.
pub struct PctChunks<'a> {
    cube: &'a HyperCube,
    params: &'a AlgoParams,
}

impl<'a> PctChunks<'a> {
    /// Wraps a cube and parameters.
    pub fn new(cube: &'a HyperCube, params: &'a AlgoParams) -> Self {
        PctChunks { cube, params }
    }
}

impl ChunkedAlgo for PctChunks<'_> {
    type State = PctState;
    type Partial = PctPartial;
    type Output = (LabelImage, PctModel);
    /// The assembled transform matrix for the labelling round; `None`
    /// in earlier rounds.
    type Scratch = Option<Matrix>;

    fn name(&self) -> &'static str {
        "PCT"
    }

    fn lines(&self) -> usize {
        self.cube.lines()
    }

    fn rounds(&self) -> usize {
        3
    }

    fn initial_state(&self) -> Self::State {
        PctState::Fresh
    }

    fn chunk_mflops(&self, round: usize, n: usize) -> f64 {
        let bands = self.cube.bands();
        let c = self.params.num_classes;
        let pixels = n * self.cube.samples();
        match round {
            0 => flops::mflop(flops::unique_set(bands, pixels, 4 * c)),
            1 => flops::mflop(flops::covariance_accumulate(bands) * pixels as f64),
            _ => flops::mflop(
                (flops::pct_transform(bands, c) + flops::pct_classify(c, c)) * pixels as f64,
            ),
        }
    }

    fn chunk_bytes(&self, round: usize, n: usize) -> (u64, u64) {
        let bands = self.cube.bands() as u64;
        let c = self.params.num_classes as u64;
        let pixels = (n * self.cube.samples()) as u64;
        let chunk = pixels * bands * 4;
        match round {
            // Unique-set: chunk in, up to 4c scored spectra out.
            0 => (chunk, 4 * c * (bands * 4 + 8)),
            // Covariance: chunk in, one flat accumulator shard out.
            1 => (chunk, (bands * (bands + 3) / 2 + 1) * 8),
            // Labelling: chunk + f64 model (transform, mean, transformed
            // class reps) in, u16 labels out.
            _ => (chunk + (c * bands + bands + c * c) * 8, pixels * 2),
        }
    }

    fn state_bits(&self, state: &Self::State) -> u64 {
        match state {
            // Reps stay at the master; workers need nothing until the
            // model broadcast.
            PctState::Fresh | PctState::Reps(_) => 0,
            PctState::Model {
                transform,
                mean,
                classes,
                ..
            }
            | PctState::Done {
                transform,
                mean,
                classes,
                ..
            } => {
                let t: u64 = transform.iter().map(|r| (r.len() * 64) as u64).sum();
                let cl: u64 = classes.iter().map(|r| (r.len() * 64) as u64).sum();
                t + (mean.len() * 64) as u64 + cl
            }
        }
    }

    fn partial_bits(&self, partial: &Self::Partial) -> u64 {
        match partial {
            PctPartial::Cands(cs) => cs.iter().map(|(s, _)| 64 + (s.len() * 32) as u64).sum(),
            PctPartial::Stats(v) => (v.len() * 64) as u64,
            PctPartial::Labels(l) => (l.len() * 16) as u64,
        }
    }

    fn prepare(&self, round: usize, state: &Self::State) -> Option<Matrix> {
        if round < 2 {
            return None;
        }
        let PctState::Model { transform, .. } = state else {
            panic!("pct: labelling round without a model")
        };
        let rows: Vec<&[f64]> = transform.iter().map(|r| r.as_slice()).collect();
        Some(Matrix::from_rows(&rows))
    }

    fn run_chunk(
        &self,
        round: usize,
        state: &Self::State,
        scratch: &mut Option<Matrix>,
        first: usize,
        n: usize,
    ) -> PctPartial {
        let range = (first, first + n);
        match round {
            0 => {
                let c = self.params.num_classes;
                let (set, _) =
                    kernels::unique_set(self.cube, range, self.params.sad_threshold, 4 * c);
                PctPartial::Cands(
                    set.iter()
                        .map(|p| (self.cube.pixel(p.line, p.sample).to_vec(), p.score))
                        .collect(),
                )
            }
            1 => {
                let (acc, _) = kernels::covariance_partial(self.cube, range);
                PctPartial::Stats(acc.to_flat())
            }
            _ => {
                let PctState::Model { mean, classes, .. } = state else {
                    panic!("pct: labelling round without a model")
                };
                let t = scratch
                    .as_ref()
                    .expect("pct: labelling round has a transform");
                let (labels, _) = kernels::pct_label(self.cube, range, t, mean, classes);
                PctPartial::Labels(labels)
            }
        }
    }

    fn reduce(
        &self,
        round: usize,
        state: Self::State,
        partials: Vec<(usize, PctPartial)>,
    ) -> (Self::State, f64) {
        let n = self.cube.bands();
        let c = self.params.num_classes;
        match round {
            0 => {
                let mut scored: Vec<(Vec<f32>, f64)> = Vec::new();
                for (_, p) in partials {
                    let PctPartial::Cands(cs) = p else {
                        panic!("pct: wrong partial in round 0")
                    };
                    scored.extend(cs);
                }
                let (reps, mflops) = reduce_candidates(&scored, self.params.sad_threshold, c);
                (PctState::Reps(reps), mflops)
            }
            1 => {
                let PctState::Reps(reps) = state else {
                    panic!("pct: covariance round without reps")
                };
                let shards = partials.len();
                let mut total = CovarianceAccumulator::new(n);
                for (_, p) in partials {
                    let PctPartial::Stats(flat) = p else {
                        panic!("pct: wrong partial in round 1")
                    };
                    let other =
                        CovarianceAccumulator::from_flat(n, &flat).expect("pct: flat shape");
                    total.merge(&other).expect("pct: dim");
                }
                let mean = total.mean().expect("pct: empty image");
                let cov = total.covariance().expect("pct: empty image");
                let eig = SymmetricEigen::new(&cov).expect("pct: eigen failed");
                let transform = eig.principal_transform(c.min(n)).expect("pct: transform");
                let classes = transform_reps(&transform, &mean, &reps);
                let mflops = flops::mflop(
                    (shards * n * (n + 3) / 2) as f64
                        + flops::jacobi_eigen(n)
                        + reps.len() as f64 * flops::pct_transform(n, transform.rows()),
                );
                let rows = (0..transform.rows())
                    .map(|r| transform.row(r).to_vec())
                    .collect();
                (
                    PctState::Model {
                        reps,
                        transform: rows,
                        mean,
                        classes,
                    },
                    mflops,
                )
            }
            _ => {
                let PctState::Model {
                    transform,
                    mean,
                    classes,
                    ..
                } = state
                else {
                    panic!("pct: labelling round without a model")
                };
                let samples = self.cube.samples();
                let mut labels = vec![0u16; self.cube.lines() * samples];
                for (first, p) in partials {
                    let PctPartial::Labels(l) = p else {
                        panic!("pct: wrong partial in round 2")
                    };
                    labels[first * samples..first * samples + l.len()].copy_from_slice(&l);
                }
                (
                    PctState::Done {
                        labels,
                        transform,
                        mean,
                        classes,
                    },
                    0.0,
                )
            }
        }
    }

    fn finish(&self, state: Self::State) -> Self::Output {
        let PctState::Done {
            labels,
            transform,
            mean,
            classes,
        } = state
        else {
            panic!("pct: finish before the labelling round")
        };
        let rows: Vec<&[f64]> = transform.iter().map(|r| r.as_slice()).collect();
        let image = LabelImage::from_vec(self.cube.lines(), self.cube.samples(), labels);
        (
            image,
            PctModel {
                transform: Matrix::from_rows(&rows),
                mean,
                class_reps: classes,
            },
        )
    }
}

// ---------------------------------------------------------------------
// MORPH
// ---------------------------------------------------------------------

/// MORPH round-by-round state (see [`MorphChunks`]).
#[derive(Debug, Clone)]
pub enum MorphState {
    /// Before round 0.
    Fresh,
    /// After round 0: merged class representatives (broadcast before
    /// labelling).
    Reps(Vec<Vec<f32>>),
    /// After round 1: labels plus the representatives.
    Done {
        /// Row-major labels of the full image.
        labels: Vec<u16>,
        /// The class representatives.
        reps: Vec<Vec<f32>>,
    },
}

/// Per-chunk MORPH partials.
#[derive(Debug, Clone)]
pub enum MorphPartial {
    /// Round 0: scored MEI candidates.
    Cands(Vec<(Vec<f32>, f64)>),
    /// Round 1: labels of the chunk's lines.
    Labels(Vec<u16>),
}

/// MORPH (paper Algorithm 5) as a chunked algorithm, two rounds: MEI
/// candidate nomination (each chunk is extracted with its halo, the
/// paper's overlap border) and SAD labelling against the merged class
/// representatives. [`crate::dynamic`]'s MORPH-only scheduler delegates
/// its kernel work here.
pub struct MorphChunks<'a> {
    cube: &'a HyperCube,
    params: &'a AlgoParams,
    se: StructuringElement,
    halo: usize,
}

impl<'a> MorphChunks<'a> {
    /// Wraps a cube and parameters (halo = structuring-element radius).
    pub fn new(cube: &'a HyperCube, params: &'a AlgoParams) -> Self {
        MorphChunks {
            cube,
            params,
            se: StructuringElement::square(params.se_radius),
            halo: params.se_radius,
        }
    }

    /// Halo lines each chunk is padded with on either side.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Runs MEI on chunk `[first, first + n)` (halo included in the
    /// computation) and returns scored candidate spectra.
    pub fn candidates(&self, first: usize, n: usize) -> Vec<(Vec<f32>, f64)> {
        let (block, pre) = self.cube.extract_lines_with_overlap(first, n, self.halo);
        let (top, _) = kernels::mei_top(
            &block,
            &self.se,
            self.params.morph_iterations,
            (pre, pre + n),
            self.params.num_classes,
            self.params.sad_threshold,
        );
        top.iter()
            .map(|p| (block.pixel(p.line, p.sample).to_vec(), p.score))
            .collect()
    }

    /// SAD-labels chunk `[first, first + n)` against `reps`, writing
    /// into `out` at global coordinates.
    pub fn label_into(&self, first: usize, n: usize, reps: &[Vec<f32>], out: &mut LabelImage) {
        for (i, &l) in self.label_chunk(first, n, reps).iter().enumerate() {
            out.set(first + i / self.cube.samples(), i % self.cube.samples(), l);
        }
    }

    fn label_chunk(&self, first: usize, n: usize, reps: &[Vec<f32>]) -> Vec<u16> {
        let block = self.cube.extract_lines(first, n);
        let (labels, _) = kernels::sad_label(&block, (0, n), reps);
        labels
    }
}

impl ChunkedAlgo for MorphChunks<'_> {
    type State = MorphState;
    type Partial = MorphPartial;
    type Output = (LabelImage, Vec<Vec<f32>>);
    /// Chunk extraction is inherent to MORPH's overlap decomposition;
    /// no round-constant structure exists to cache.
    type Scratch = ();

    fn name(&self) -> &'static str {
        "MORPH"
    }

    fn lines(&self) -> usize {
        self.cube.lines()
    }

    fn rounds(&self) -> usize {
        2
    }

    fn initial_state(&self) -> Self::State {
        MorphState::Fresh
    }

    fn chunk_mflops(&self, round: usize, n: usize) -> f64 {
        let bands = self.cube.bands();
        let samples = self.cube.samples();
        let se_len = self.se.len();
        match round {
            0 => flops::mflop(
                flops::mei_iteration((n + 2 * self.halo) * samples, bands, se_len)
                    * self.params.morph_iterations as f64,
            ),
            _ => flops::mflop(
                flops::sad_classify(bands, self.params.num_classes) * (n * samples) as f64,
            ),
        }
    }

    fn chunk_bytes(&self, round: usize, n: usize) -> (u64, u64) {
        let bands = self.cube.bands() as u64;
        let samples = self.cube.samples() as u64;
        let c = self.params.num_classes as u64;
        match round {
            // MEI: the halo-padded chunk in, up to c scored spectra out.
            0 => (
                (n as u64 + 2 * self.halo as u64) * samples * bands * 4,
                c * (bands * 4 + 8),
            ),
            // Labelling: chunk + class representatives in, labels out.
            _ => (
                n as u64 * samples * bands * 4 + c * bands * 4,
                n as u64 * samples * 2,
            ),
        }
    }

    fn state_bits(&self, state: &Self::State) -> u64 {
        match state {
            MorphState::Fresh => 0,
            MorphState::Reps(reps) | MorphState::Done { reps, .. } => spectra_bits(reps),
        }
    }

    fn partial_bits(&self, partial: &Self::Partial) -> u64 {
        match partial {
            MorphPartial::Cands(cs) => cs.iter().map(|(s, _)| 64 + (s.len() * 32) as u64).sum(),
            MorphPartial::Labels(l) => (l.len() * 16) as u64,
        }
    }

    fn prepare(&self, _round: usize, _state: &Self::State) {}

    fn run_chunk(
        &self,
        round: usize,
        state: &Self::State,
        _scratch: &mut (),
        first: usize,
        n: usize,
    ) -> MorphPartial {
        match round {
            0 => MorphPartial::Cands(self.candidates(first, n)),
            _ => {
                let MorphState::Reps(reps) = state else {
                    panic!("morph: labelling round without reps")
                };
                MorphPartial::Labels(self.label_chunk(first, n, reps))
            }
        }
    }

    fn reduce(
        &self,
        round: usize,
        state: Self::State,
        partials: Vec<(usize, MorphPartial)>,
    ) -> (Self::State, f64) {
        match round {
            0 => {
                let mut scored: Vec<(Vec<f32>, f64)> = Vec::new();
                for (_, p) in partials {
                    let MorphPartial::Cands(cs) = p else {
                        panic!("morph: wrong partial in round 0")
                    };
                    scored.extend(cs);
                }
                let (reps, mflops) =
                    reduce_candidates(&scored, self.params.sad_threshold, self.params.num_classes);
                (MorphState::Reps(reps), mflops)
            }
            _ => {
                let MorphState::Reps(reps) = state else {
                    panic!("morph: labelling round without reps")
                };
                let samples = self.cube.samples();
                let mut labels = vec![0u16; self.cube.lines() * samples];
                for (first, p) in partials {
                    let MorphPartial::Labels(l) = p else {
                        panic!("morph: wrong partial in round 1")
                    };
                    labels[first * samples..first * samples + l.len()].copy_from_slice(&l);
                }
                (MorphState::Done { labels, reps }, 0.0)
            }
        }
    }

    fn finish(&self, state: Self::State) -> Self::Output {
        let MorphState::Done { labels, reps } = state else {
            panic!("morph: finish before the labelling round")
        };
        (
            LabelImage::from_vec(self.cube.lines(), self.cube.samples(), labels),
            reps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};

    /// Executes a chunked algorithm locally (no simulator) on a fixed
    /// chunk grid — the reference driver the fault-tolerant schedulers
    /// must agree with.
    fn run_local<A: ChunkedAlgo>(algo: &A, chunk: usize) -> A::Output {
        let mut state = algo.initial_state();
        for round in 0..algo.rounds() {
            let mut scratch = algo.prepare(round, &state);
            let mut partials = Vec::new();
            let mut first = 0;
            while first < algo.lines() {
                let n = chunk.min(algo.lines() - first);
                partials.push((first, algo.run_chunk(round, &state, &mut scratch, first, n)));
                first += n;
            }
            let (next, _) = algo.reduce(round, state, partials);
            state = next;
        }
        algo.finish(state)
    }

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    #[test]
    fn atdca_chunked_matches_sequential_for_any_grid() {
        let s = scene();
        let p = AlgoParams {
            num_targets: 6,
            ..Default::default()
        };
        let seq = crate::seq::atdca(&s.cube, &p);
        let seq_coords: Vec<_> = seq.result.iter().map(|t| (t.line, t.sample)).collect();
        let algo = AtdcaChunks::new(&s.cube, &p);
        for chunk in [5usize, 17, s.cube.lines()] {
            let out = run_local(&algo, chunk);
            let coords: Vec<_> = out.iter().map(|t| (t.line, t.sample)).collect();
            assert_eq!(coords, seq_coords, "chunk {chunk}");
        }
    }

    #[test]
    fn ufcls_chunked_matches_sequential_for_any_grid() {
        let s = scene();
        let p = AlgoParams {
            num_targets: 5,
            ..Default::default()
        };
        let seq = crate::seq::ufcls(&s.cube, &p);
        let seq_coords: Vec<_> = seq.result.iter().map(|t| (t.line, t.sample)).collect();
        let algo = UfclsChunks::new(&s.cube, &p);
        for chunk in [7usize, s.cube.lines()] {
            let out = run_local(&algo, chunk);
            let coords: Vec<_> = out.iter().map(|t| (t.line, t.sample)).collect();
            assert_eq!(coords, seq_coords, "chunk {chunk}");
        }
    }

    #[test]
    fn pct_single_chunk_equals_sequential() {
        let s = scene();
        let p = AlgoParams::default();
        let seq = crate::seq::pct(&s.cube, &p);
        let algo = PctChunks::new(&s.cube, &p);
        let (labels, model) = run_local(&algo, s.cube.lines());
        assert_eq!(labels.as_slice(), seq.result.0.as_slice());
        assert_eq!(model.mean, seq.result.1.mean);
    }

    #[test]
    fn pct_chunked_labelling_is_sound() {
        let s = scene();
        let p = AlgoParams::default();
        let algo = PctChunks::new(&s.cube, &p);
        let (labels, _) = run_local(&algo, 8);
        assert_eq!(labels.lines(), s.cube.lines());
        for &l in labels.as_slice() {
            assert!((l as usize) < p.num_classes);
        }
        let acc = hsi_cube::labels::score(&labels, &s.truth).overall;
        assert!(acc > 25.0, "chunked PCT accuracy only {acc:.1}%");
    }

    #[test]
    fn morph_single_chunk_equals_sequential() {
        let s = scene();
        let p = AlgoParams {
            morph_iterations: 2,
            ..Default::default()
        };
        let seq = crate::seq::morph(&s.cube, &p);
        let algo = MorphChunks::new(&s.cube, &p);
        let (labels, reps) = run_local(&algo, s.cube.lines());
        assert_eq!(labels.as_slice(), seq.result.0.as_slice());
        assert_eq!(reps, seq.result.1);
    }

    #[test]
    fn morph_chunked_labelling_is_sound() {
        let s = scene();
        let p = AlgoParams {
            morph_iterations: 2,
            ..Default::default()
        };
        let algo = MorphChunks::new(&s.cube, &p);
        let (labels, _) = run_local(&algo, 8);
        for &l in labels.as_slice() {
            assert!((l as usize) < p.num_classes);
        }
        let acc = crate::eval::debris_accuracy(&s, &labels, 7).overall;
        assert!(acc > 30.0, "chunked MORPH accuracy only {acc:.1}%");
    }

    #[test]
    fn chunk_costs_are_positive_and_monotone() {
        let s = scene();
        let p = AlgoParams::default();
        let atdca = AtdcaChunks::new(&s.cube, &p);
        let pct = PctChunks::new(&s.cube, &p);
        let morph = MorphChunks::new(&s.cube, &p);
        for round in 0..3 {
            assert!(pct.chunk_mflops(round, 8) > 0.0);
            assert!(pct.chunk_mflops(round, 16) > pct.chunk_mflops(round, 8));
        }
        assert!(atdca.chunk_mflops(1, 8) > atdca.chunk_mflops(0, 8) * 0.1);
        assert!(morph.chunk_mflops(0, 8) > 0.0 && morph.chunk_mflops(1, 8) > 0.0);
        assert_eq!(atdca.name(), "ATDCA");
        assert_eq!(morph.rounds(), 2);
    }

    #[test]
    fn chunk_bytes_are_positive_and_monotone_in_lines() {
        let s = scene();
        let p = AlgoParams::default();
        let atdca = AtdcaChunks::new(&s.cube, &p);
        let ufcls = UfclsChunks::new(&s.cube, &p);
        let pct = PctChunks::new(&s.cube, &p);
        let morph = MorphChunks::new(&s.cube, &p);
        for round in 0..3 {
            let (h8, d8) = pct.chunk_bytes(round, 8);
            let (h16, _) = pct.chunk_bytes(round, 16);
            assert!(h8 > 0 && d8 > 0, "pct round {round}");
            assert!(h16 > h8, "pct round {round} not monotone");
        }
        // Later argmax rounds ship more state (the growing target set).
        assert!(atdca.chunk_bytes(3, 8).0 > atdca.chunk_bytes(0, 8).0);
        assert!(ufcls.chunk_bytes(3, 8).0 > ufcls.chunk_bytes(0, 8).0);
        // The MEI round stages the halo-padded block; labelling does not.
        assert!(morph.chunk_bytes(0, 8).0 > morph.chunk_bytes(1, 8).0);
        // Pure in (round, n): two queries agree exactly.
        assert_eq!(morph.chunk_bytes(1, 13), morph.chunk_bytes(1, 13));
    }

    #[test]
    fn chunk_policy_arithmetic() {
        assert_eq!(ChunkPolicy::Fixed(8).next_chunk(100, 4), 8);
        assert_eq!(ChunkPolicy::Fixed(8).next_chunk(5, 4), 5);
        assert_eq!(ChunkPolicy::Guided { min: 2 }.next_chunk(100, 4), 25);
        assert_eq!(ChunkPolicy::Guided { min: 2 }.next_chunk(5, 4), 2);
        assert_eq!(ChunkPolicy::Guided { min: 2 }.next_chunk(1, 4), 1);
    }
}
