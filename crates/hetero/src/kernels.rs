//! Worker-side computational kernels.
//!
//! Every kernel returns its result **plus its analytic cost in
//! megaflops** (from [`crate::flops`]), so the caller — a `simnet` rank
//! or a sequential baseline — charges the identical virtual time for the
//! identical computation. The parallel algorithms are exactly these
//! kernels applied to partitions, which is why they reproduce the
//! sequential analysis results bit-for-bit (asserted by the integration
//! tests).
//!
//! All argmax scans break ties toward the lowest `(line, sample)` in
//! row-major order, keeping results independent of partitioning.
//!
//! The scan kernels (argmax family, covariance, labelling) are
//! **data-parallel over a fixed line-chunk grid** ([`PAR_CHUNK_LINES`])
//! with order-preserving reduction, so their outputs are bit-identical
//! for any thread count; the thread budget is whatever `rayon` pool the
//! caller installed (one per simulated rank under `simnet::engine`).
//! Wall-clock speed changes, **virtual time does not**: the returned
//! megaflop counts are analytic in the scan size either way.

use crate::flops;
use crate::msg::Candidate;
use hsi_cube::metrics::{brightness, sad};
use hsi_cube::HyperCube;
use hsi_linalg::covariance::CovarianceAccumulator;
use hsi_linalg::lstsq::FclsProblem;
use hsi_linalg::ortho::OrthoBasis;
use hsi_linalg::Matrix;
use rayon::prelude::*;

/// Fixed line-chunk granularity of the data-parallel kernels.
///
/// The chunk grid depends only on the requested line range — never on
/// the worker count — and chunk results are folded in chunk order, so
/// every kernel returns bit-identical results for **any** thread count
/// (including 1). See `docs/PERF.md` for the determinism argument.
pub const PAR_CHUNK_LINES: usize = 8;

/// Splits `[lo, hi)` into the fixed chunk grid: chunk `c` covers
/// `[lo + c·PAR_CHUNK_LINES, min(lo + (c+1)·PAR_CHUNK_LINES, hi))`.
#[inline]
fn chunk_bounds(range: (usize, usize), c: usize) -> (usize, usize) {
    let clo = range.0 + c * PAR_CHUNK_LINES;
    ((clo), (clo + PAR_CHUNK_LINES).min(range.1))
}

/// Number of chunks covering `[lo, hi)` (0 for empty ranges).
#[inline]
fn chunk_count(range: (usize, usize)) -> usize {
    range.1.saturating_sub(range.0).div_ceil(PAR_CHUNK_LINES)
}

/// A scored pixel in **local** block coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPixel {
    /// Local line within the block.
    pub line: usize,
    /// Sample (column).
    pub sample: usize,
    /// Kernel-specific score.
    pub score: f64,
}

impl ScoredPixel {
    /// Converts to a wire [`Candidate`] with global coordinates
    /// (`global_line = local_line - pre + first_line`).
    pub fn to_candidate(&self, cube: &HyperCube, first_line: usize, pre: usize) -> Candidate {
        Candidate {
            line: (self.line + first_line - pre) as u32,
            sample: self.sample as u32,
            score: self.score,
            spectrum: cube.pixel(self.line, self.sample).to_vec(),
        }
    }
}

/// Chunk-parallel argmax over the pixels of a line range.
///
/// `make_scorer` builds one (possibly stateful) scoring closure per
/// chunk, so scorers may own scratch buffers without synchronisation.
/// Each chunk is scanned sequentially in row-major order keeping its
/// first strict maximum; chunk winners are then folded **in chunk
/// order**, replacing only on a strictly greater score. Both levels use
/// the same strict `>`, so the overall winner is exactly the first
/// row-major maximum — identical to a sequential scan for any worker
/// count, including on duplicate scores.
fn argmax_pixels<S>(
    cube: &HyperCube,
    range: (usize, usize),
    make_scorer: impl Fn() -> S + Sync,
) -> Option<ScoredPixel>
where
    S: FnMut(&[f32]) -> f64,
{
    let bests: Vec<Option<ScoredPixel>> = (0..chunk_count(range))
        .into_par_iter()
        .map(|c| {
            let (clo, chi) = chunk_bounds(range, c);
            let mut score_fn = make_scorer();
            let mut best: Option<ScoredPixel> = None;
            for line in clo..chi {
                for sample in 0..cube.samples() {
                    let s = score_fn(cube.pixel(line, sample));
                    let better = match &best {
                        None => true,
                        Some(b) => s > b.score,
                    };
                    if better {
                        best = Some(ScoredPixel {
                            line,
                            sample,
                            score: s,
                        });
                    }
                }
            }
            best
        })
        .collect();
    let mut overall: Option<ScoredPixel> = None;
    for b in bests.into_iter().flatten() {
        let better = match &overall {
            None => true,
            Some(o) => b.score > o.score,
        };
        if better {
            overall = Some(b);
        }
    }
    overall
}

/// ATDCA step 2: the brightest pixel (`argmax xᵀx`) within lines
/// `[range.0, range.1)` of the block. Returns `None` on empty ranges.
pub fn brightest(cube: &HyperCube, range: (usize, usize)) -> (Option<ScoredPixel>, f64) {
    let n = cube.bands();
    let pixels = (range.1 - range.0) * cube.samples();
    let result = argmax_pixels(cube, range, || brightness);
    (result, flops::mflop(flops::brightness(n) * pixels as f64))
}

/// ATDCA step 4: the pixel maximising the orthogonal-projection score
/// `(P_U^⊥ x)ᵀ(P_U^⊥ x)` against the current basis.
pub fn max_projection(
    cube: &HyperCube,
    basis: &OrthoBasis,
    range: (usize, usize),
) -> (Option<ScoredPixel>, f64) {
    let n = cube.bands();
    let k = basis.len();
    let pixels = (range.1 - range.0) * cube.samples();
    let result = argmax_pixels(cube, range, || {
        let mut buf = vec![0.0f64; n];
        move |px: &[f32]| {
            for (b, &v) in buf.iter_mut().zip(px) {
                *b = v as f64;
            }
            basis.complement_score(&buf)
        }
    });
    (
        result,
        flops::mflop(flops::projection_score(n, k) * pixels as f64),
    )
}

/// UFCLS steps 2–3: the pixel with the largest fully-constrained
/// least-squares reconstruction error against the endmember set.
pub fn max_fcls_error(
    cube: &HyperCube,
    problem: &FclsProblem,
    range: (usize, usize),
) -> (Option<ScoredPixel>, f64) {
    let n = cube.bands();
    let t = problem.num_endmembers();
    let pixels = (range.1 - range.0) * cube.samples();
    let result = argmax_pixels(cube, range, || {
        |px: &[f32]| {
            problem
                .solve_f32(px)
                .map(|u| u.residual_sq)
                .unwrap_or(f64::NEG_INFINITY)
        }
    });
    (result, flops::mflop(flops::fcls(n, t) * pixels as f64))
}

/// PCT step 2: greedily builds a set of spectrally distinct pixels — a
/// pixel joins when its SAD to every current member exceeds
/// `threshold`; the set is capped at `cap` members. Returns local
/// scored pixels (score = min SAD to the set at admission time).
pub fn unique_set(
    cube: &HyperCube,
    range: (usize, usize),
    threshold: f64,
    cap: usize,
) -> (Vec<ScoredPixel>, f64) {
    let n = cube.bands();
    let (lo, hi) = range;
    let mut members: Vec<(ScoredPixel, Vec<f32>)> = Vec::new();
    // Charged as a full scan of the current set for every pixel ("SAD
    // for all vector pairs", paper step 2); the real loop exits early on
    // a near-duplicate or a full set, which does not change the result.
    let mut sad_evals = 0usize;
    for line in lo..hi {
        for sample in 0..cube.samples() {
            sad_evals += members.len();
            if members.len() >= cap {
                continue;
            }
            let px = cube.pixel(line, sample);
            let mut min_sad = f64::INFINITY;
            for (_, m) in &members {
                let d = sad(px, m);
                if d < min_sad {
                    min_sad = d;
                }
                if d <= threshold {
                    break;
                }
            }
            if min_sad > threshold {
                members.push((
                    ScoredPixel {
                        line,
                        sample,
                        score: min_sad.min(f64::MAX),
                    },
                    px.to_vec(),
                ));
            }
        }
    }
    let mflops = flops::mflop(flops::sad(n) * sad_evals as f64);
    (members.into_iter().map(|(p, _)| p).collect(), mflops)
}

/// PCT steps 4–5: accumulates the block's mean/covariance partial sums.
///
/// Each fixed line chunk feeds the cache-blocked
/// [`CovarianceAccumulator::push_pixels_f32`] over its contiguous BIP
/// region; chunk partials are merged **in chunk order**, so the result
/// is identical for any thread count. (The chunked summation groups
/// floating-point additions differently from a single unchunked stream,
/// but virtual-time accounting is analytic in the pixel count, so
/// experiment timings are unaffected — see `docs/PERF.md`.)
pub fn covariance_partial(cube: &HyperCube, range: (usize, usize)) -> (CovarianceAccumulator, f64) {
    let n = cube.bands();
    let (lo, hi) = range;
    let stride = cube.samples() * n;
    let partials: Vec<CovarianceAccumulator> = (0..chunk_count(range))
        .into_par_iter()
        .map(|c| {
            let (clo, chi) = chunk_bounds(range, c);
            let mut acc = CovarianceAccumulator::new(n);
            acc.push_pixels_f32(&cube.as_slice()[clo * stride..chi * stride]);
            acc
        })
        .collect();
    let mut acc = CovarianceAccumulator::new(n);
    for p in &partials {
        acc.merge(p).expect("covariance_partial: same dim");
    }
    let pixels = hi.saturating_sub(lo) * cube.samples();
    (
        acc,
        flops::mflop(flops::covariance_accumulate(n) * pixels as f64),
    )
}

/// PCT steps 8–9: transforms each pixel with `T·(x − m)` and labels it
/// by the most SAD-similar class representative in transformed space.
/// Returns row-major labels for the range.
pub fn pct_label(
    cube: &HyperCube,
    range: (usize, usize),
    transform: &Matrix,
    mean: &[f64],
    class_reps: &[Vec<f64>],
) -> (Vec<u16>, f64) {
    let n = cube.bands();
    let c = transform.rows();
    let (lo, hi) = range;
    let mut reps32: Vec<Vec<f32>> = class_reps
        .iter()
        .map(|r| r.iter().map(|&v| v as f32).collect())
        .collect();
    // Guard degenerate models.
    if reps32.is_empty() {
        reps32.push(vec![0.0; c]);
    }
    let reps32 = &reps32;
    // One preassembled label buffer, written in place by the chunk
    // workers; `par_chunks_mut` at `PAR_CHUNK_LINES × samples` pixels
    // yields exactly the fixed chunk grid (the last chunk is the
    // remainder), so no per-chunk Vec or final concat is needed. Each
    // chunk reuses its three scratch buffers across every pixel.
    let samples = cube.samples();
    let pixels = (hi - lo) * samples;
    let mut labels = vec![0u16; pixels];
    labels
        .par_chunks_mut((PAR_CHUNK_LINES * samples).max(1))
        .enumerate()
        .for_each(|(ci, part)| {
            let (clo, chi) = chunk_bounds(range, ci);
            debug_assert_eq!(part.len(), (chi - clo) * samples);
            let mut centred = vec![0.0f64; n];
            let mut projected = vec![0.0f64; c];
            let mut proj32 = vec![0.0f32; c];
            for line in clo..chi {
                for sample in 0..samples {
                    let px = cube.pixel(line, sample);
                    for (i, &v) in px.iter().enumerate() {
                        centred[i] = v as f64 - mean[i];
                    }
                    transform
                        .matvec_into(&centred, &mut projected)
                        .expect("pct_label: transform shape");
                    for (o, &v) in proj32.iter_mut().zip(projected.iter()) {
                        *o = v as f32;
                    }
                    let best = hsi_cube::metrics::nearest_by_sad(&proj32, reps32).unwrap_or(0);
                    part[(line - clo) * samples + sample] = best as u16;
                }
            }
        });
    let mflops = flops::mflop(
        (flops::pct_transform(n, c) + flops::pct_classify(c, class_reps.len().max(1)))
            * pixels as f64,
    );
    (labels, mflops)
}

/// MORPH step 4: labels each pixel by the most SAD-similar class
/// spectrum (full spectral space).
pub fn sad_label(cube: &HyperCube, range: (usize, usize), classes: &[Vec<f32>]) -> (Vec<u16>, f64) {
    let n = cube.bands();
    let (lo, hi) = range;
    // Same in-place chunk-grid write as `pct_label`: one output buffer,
    // no per-chunk Vecs, no concat.
    let samples = cube.samples();
    let pixels = (hi - lo) * samples;
    let mut labels = vec![0u16; pixels];
    labels
        .par_chunks_mut((PAR_CHUNK_LINES * samples).max(1))
        .enumerate()
        .for_each(|(ci, part)| {
            let (clo, chi) = chunk_bounds(range, ci);
            debug_assert_eq!(part.len(), (chi - clo) * samples);
            for line in clo..chi {
                for sample in 0..samples {
                    let best = hsi_cube::metrics::nearest_by_sad(cube.pixel(line, sample), classes)
                        .unwrap_or(0);
                    part[(line - clo) * samples + sample] = best as u16;
                }
            }
        });
    (
        labels,
        flops::mflop(flops::sad_classify(n, classes.len().max(1)) * pixels as f64),
    )
}

/// MORPH step 2: the MEI map over the whole block (halo included in the
/// computation), returning the `c` top-scoring **mutually distinct**
/// pixels among the owned lines `[range.0, range.1)`: scanning down the
/// MEI ranking, a pixel is nominated only when its SAD to every
/// already-nominated pixel exceeds `threshold` — so the nomination is a
/// *unique spectral set* (step 3's requirement) rather than `c` near
/// copies of the single most eccentric neighbourhood.
pub fn mei_top(
    cube: &HyperCube,
    se: &hsi_morpho::StructuringElement,
    iterations: usize,
    range: (usize, usize),
    c: usize,
    threshold: f64,
) -> (Vec<ScoredPixel>, f64) {
    let result = hsi_morpho::mei::mei(cube, se, iterations);
    let (lo, hi) = range;
    // Rank owned pixels by MEI score with row-major tie-break.
    let mut owned: Vec<ScoredPixel> = (lo..hi)
        .flat_map(|line| (0..cube.samples()).map(move |sample| (line, sample)))
        .map(|(line, sample)| ScoredPixel {
            line,
            sample,
            score: result.at(line, sample),
        })
        .collect();
    owned.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then((a.line, a.sample).cmp(&(b.line, b.sample)))
    });
    let mut kept: Vec<ScoredPixel> = Vec::with_capacity(c);
    let mut sad_evals = 0usize;
    for p in owned {
        if kept.len() >= c {
            break;
        }
        if p.score <= 0.0 && !kept.is_empty() {
            break; // zero-MEI pixels carry no information
        }
        let px = cube.pixel(p.line, p.sample);
        let distinct = kept.iter().all(|k| {
            sad_evals += 1;
            sad(px, cube.pixel(k.line, k.sample)) > threshold
        });
        if distinct {
            kept.push(p);
        }
    }
    let mflops = flops::mflop(
        flops::mei_iteration(cube.num_pixels(), cube.bands(), se.len()) * iterations as f64
            + flops::sad(cube.bands()) * sad_evals as f64,
    );
    (kept, mflops)
}

/// Greedy maximum-minimum-distance selection of `c` mutually distinct
/// spectra (the master's unique-set reduction in PCT step 3 and MORPH
/// step 3). Deterministic: seeds with the first spectrum, then
/// repeatedly adds the spectrum whose minimum SAD to the selected set is
/// largest (ties to the lowest index). Returns selected indices and the
/// megaflop cost.
pub fn select_distinct(spectra: &[Vec<f32>], c: usize) -> (Vec<usize>, f64) {
    if spectra.is_empty() || c == 0 {
        return (Vec::new(), 0.0);
    }
    let n = spectra[0].len();
    let mut selected = vec![0usize];
    let mut min_dist: Vec<f64> = spectra.iter().map(|s| sad(s, &spectra[0])).collect();
    let mut sad_evals = spectra.len();
    while selected.len() < c.min(spectra.len()) {
        let mut best = None;
        for (i, &d) in min_dist.iter().enumerate() {
            if selected.contains(&i) {
                continue;
            }
            match best {
                Some((_, bd)) if d <= bd => {}
                _ => best = Some((i, d)),
            }
        }
        let Some((idx, _)) = best else { break };
        selected.push(idx);
        for (i, s) in spectra.iter().enumerate() {
            let d = sad(s, &spectra[idx]);
            sad_evals += 1;
            if d < min_dist[i] {
                min_dist[i] = d;
            }
        }
    }
    (selected, flops::mflop(flops::sad(n) * sad_evals as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    #[test]
    fn brightest_matches_cube_method() {
        let s = scene();
        let (best, mflops) = brightest(&s.cube, (0, s.cube.lines()));
        let best = best.unwrap();
        let ((l, smp), _) = s.cube.brightest_pixel().unwrap();
        assert_eq!((best.line, best.sample), (l, smp));
        assert!(mflops > 0.0);
    }

    #[test]
    fn brightest_on_subrange_stays_in_range() {
        let s = scene();
        let (best, _) = brightest(&s.cube, (10, 20));
        let best = best.unwrap();
        assert!((10..20).contains(&best.line));
        let (none, _) = brightest(&s.cube, (5, 5));
        assert!(none.is_none());
    }

    #[test]
    fn projection_score_excludes_basis_member() {
        let s = scene();
        let (b0, _) = brightest(&s.cube, (0, s.cube.lines()));
        let b0 = b0.unwrap();
        let mut basis = OrthoBasis::new(s.cube.bands());
        let spec: Vec<f64> = s
            .cube
            .pixel(b0.line, b0.sample)
            .iter()
            .map(|&v| v as f64)
            .collect();
        basis.push(&spec);
        let (second, _) = max_projection(&s.cube, &basis, (0, s.cube.lines()));
        let second = second.unwrap();
        // The first target projects to ~zero, so the new argmax differs.
        assert_ne!((second.line, second.sample), (b0.line, b0.sample));
        assert!(second.score > 0.0);
    }

    #[test]
    fn fcls_error_highest_off_simplex() {
        let s = scene();
        // Endmember set = first two class signatures: pixels of other
        // classes should carry larger residuals than class-0 pixels.
        let u = Matrix::from_rows(&[
            &s.class_signatures[0]
                .iter()
                .map(|&v| v as f64)
                .collect::<Vec<_>>()[..],
            &s.class_signatures[1]
                .iter()
                .map(|&v| v as f64)
                .collect::<Vec<_>>()[..],
        ]);
        let prob = FclsProblem::new(u).unwrap();
        let (best, _) = max_fcls_error(&s.cube, &prob, (0, s.cube.lines()));
        let best = best.unwrap();
        assert!(best.score > 0.0);
        // The argmax must be one of the thermal targets (way off the
        // two-endmember simplex).
        let coords: Vec<(usize, usize)> = s.targets.iter().map(|t| t.coord).collect();
        assert!(
            coords.contains(&(best.line, best.sample)),
            "best = {:?}",
            (best.line, best.sample)
        );
    }

    #[test]
    fn unique_set_respects_threshold_and_cap() {
        let s = scene();
        let (set, _) = unique_set(&s.cube, (0, s.cube.lines()), 0.08, 10);
        assert!(!set.is_empty());
        assert!(set.len() <= 10);
        // Members must be pairwise distinct beyond the threshold.
        for i in 0..set.len() {
            for j in (i + 1)..set.len() {
                let a = s.cube.pixel(set[i].line, set[i].sample);
                let b = s.cube.pixel(set[j].line, set[j].sample);
                assert!(sad(a, b) > 0.08, "members {i},{j} too close");
            }
        }
    }

    #[test]
    fn covariance_partials_merge_to_whole() {
        let s = scene();
        let lines = s.cube.lines();
        let (whole, _) = covariance_partial(&s.cube, (0, lines));
        let (mut a, _) = covariance_partial(&s.cube, (0, lines / 2));
        let (b, _) = covariance_partial(&s.cube, (lines / 2, lines));
        a.merge(&b).unwrap();
        assert_eq!(a.count(), whole.count());
        assert!(a
            .covariance()
            .unwrap()
            .approx_eq(&whole.covariance().unwrap(), 1e-9));
    }

    #[test]
    fn sad_label_assigns_nearest_class() {
        let s = scene();
        let classes: Vec<Vec<f32>> = s.class_signatures.clone();
        let (labels, _) = sad_label(&s.cube, (0, s.cube.lines()), &classes);
        assert_eq!(labels.len(), s.cube.num_pixels());
        // Most pixels should match their ground-truth class (the class
        // signatures ARE the generators).
        let mut hits = 0;
        for (i, &l) in labels.iter().enumerate() {
            let (line, sample) = s.cube.coord_of(i);
            if l == s.truth.get(line, sample) {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / labels.len() as f64 > 0.6,
            "{hits}/{}",
            labels.len()
        );
    }

    #[test]
    fn select_distinct_prefers_spread() {
        let a = vec![1.0f32, 0.0, 0.0];
        let b = vec![0.0f32, 1.0, 0.0];
        let a2 = vec![0.99f32, 0.01, 0.0];
        let c = vec![0.0f32, 0.0, 1.0];
        let (sel, _) = select_distinct(&[a, a2, b, c], 3);
        assert_eq!(sel.len(), 3);
        assert!(sel.contains(&0));
        assert!(sel.contains(&2));
        assert!(sel.contains(&3));
        assert!(!sel.contains(&1), "near-duplicate must lose");
    }

    #[test]
    fn select_distinct_edge_cases() {
        assert_eq!(select_distinct(&[], 3).0, Vec::<usize>::new());
        let one = vec![vec![1.0f32, 2.0]];
        assert_eq!(select_distinct(&one, 5).0, vec![0]);
        assert_eq!(select_distinct(&one, 0).0, Vec::<usize>::new());
    }

    #[test]
    fn mei_top_returns_owned_lines_only() {
        let s = scene();
        let se = hsi_morpho::StructuringElement::square(1);
        let (top, mflops) = mei_top(&s.cube, &se, 2, (10, 20), 5, 0.04);
        assert!(!top.is_empty() && top.len() <= 5);
        for p in &top {
            assert!((10..20).contains(&p.line));
        }
        // Nominations are mutually distinct beyond the threshold.
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                let a = s.cube.pixel(top[i].line, top[i].sample);
                let b = s.cube.pixel(top[j].line, top[j].sample);
                assert!(hsi_cube::metrics::sad(a, b) > 0.04);
            }
        }
        assert!(mflops > 0.0);
        // Scores sorted descending.
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn scored_pixel_global_coordinates() {
        let s = scene();
        let p = ScoredPixel {
            line: 5,
            sample: 3,
            score: 1.0,
        };
        // Block owned from global line 100 with 2 halo lines prepended.
        let c = p.to_candidate(&s.cube, 100, 2);
        assert_eq!(c.line, 103);
        assert_eq!(c.sample, 3);
        assert_eq!(c.spectrum, s.cube.pixel(5, 3).to_vec());
    }
}
