//! The wire messages the parallel algorithms exchange.
//!
//! One shared enum keeps the engine monomorphic per run while letting
//! every algorithm express its traffic; [`simnet::Wire`] sizes follow
//! the actual payload (f32 spectra at 32 bits/band, labels at 16, etc.),
//! so virtual communication costs track real message volumes — the role
//! MPI derived datatypes play in the paper.

use hsi_cube::HyperCube;
use simnet::Wire;

/// A worker's candidate pixel: coordinates are **global** image
/// coordinates; the spectrum rides along so the master can re-score and
/// later broadcast selected targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Global image line.
    pub line: u32,
    /// Global image sample.
    pub sample: u32,
    /// The worker's score for this pixel (brightness, projection,
    /// FCLS error or MEI, depending on the algorithm).
    pub score: f64,
    /// The pixel's full spectrum.
    pub spectrum: Vec<f32>,
}

impl Candidate {
    fn size_bits(&self) -> u64 {
        32 + 32 + 64 + (self.spectrum.len() * 32) as u64
    }
}

/// Message payloads of the master/worker protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// A scattered image partition (first/pre are global-coordinate
    /// bookkeeping; `data` is a BIP block of `n_lines + halo` lines).
    Partition {
        /// First global line **owned** by the receiver.
        first_line: u32,
        /// Number of owned lines.
        n_lines: u32,
        /// Halo lines prepended before `first_line` (MORPH overlap).
        pre: u32,
        /// Samples per line.
        samples: u32,
        /// Spectral bands.
        bands: u32,
        /// The block, including halo lines, in BIP order.
        data: Vec<f32>,
    },
    /// One candidate pixel (gathers in ATDCA/UFCLS).
    Candidate(Candidate),
    /// Several candidate pixels (gathers in PCT/MORPH).
    Candidates(Vec<Candidate>),
    /// A list of spectra (broadcast of the target matrix `U` or of the
    /// final unique class set).
    Spectra(Vec<Vec<f32>>),
    /// Flat `f64` statistics (covariance accumulator shards).
    Stats(Vec<f64>),
    /// The PCT model broadcast: transform rows (`c × N`), image mean
    /// (`N`), and the class representatives in transformed space.
    PctModel {
        /// Rows of the `c × N` principal transform.
        transform: Vec<Vec<f64>>,
        /// The image mean spectrum.
        mean: Vec<f64>,
        /// Class representatives, already transformed (`c`-dimensional).
        classes: Vec<Vec<f64>>,
    },
    /// A block of classification labels for the sender's owned lines.
    Labels {
        /// First global line the labels cover.
        first_line: u32,
        /// Row-major labels (`n_lines × samples`).
        labels: Vec<u16>,
    },
    /// Zero-payload synchronisation token.
    Token,
}

impl Wire for Msg {
    fn size_bits(&self) -> u64 {
        match self {
            Msg::Partition { data, .. } => 5 * 32 + (data.len() * 32) as u64,
            Msg::Candidate(c) => c.size_bits(),
            Msg::Candidates(cs) => cs.iter().map(Candidate::size_bits).sum(),
            Msg::Spectra(rows) => rows.iter().map(|r| (r.len() * 32) as u64).sum(),
            Msg::Stats(v) => (v.len() * 64) as u64,
            Msg::PctModel {
                transform,
                mean,
                classes,
            } => {
                let t: u64 = transform.iter().map(|r| (r.len() * 64) as u64).sum();
                let c: u64 = classes.iter().map(|r| (r.len() * 64) as u64).sum();
                t + (mean.len() * 64) as u64 + c
            }
            Msg::Labels { labels, .. } => 32 + (labels.len() * 16) as u64,
            Msg::Token => 0,
        }
    }
}

/// A message of the wrong variant arrived where a specific one was
/// expected. Decoders return this instead of panicking, so
/// fault-recovery paths can *observe* a stale in-flight message (e.g. a
/// partial result from an abandoned worker) and skip it rather than
/// abort the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMismatch {
    /// The variant the decoder expected.
    pub expected: &'static str,
    /// The variant that actually arrived.
    pub got: &'static str,
}

impl std::fmt::Display for WireMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {}, got {}", self.expected, self.got)
    }
}

impl std::error::Error for WireMismatch {}

impl Msg {
    /// Wraps an owned sub-cube block as a partition message.
    pub fn partition(first_line: usize, n_lines: usize, pre: usize, block: &HyperCube) -> Msg {
        Msg::Partition {
            first_line: first_line as u32,
            n_lines: n_lines as u32,
            pre: pre as u32,
            samples: block.samples() as u32,
            bands: block.bands() as u32,
            data: block.as_slice().to_vec(),
        }
    }

    /// This message's variant name (for [`WireMismatch`] diagnostics).
    pub fn variant_name(&self) -> &'static str {
        match self {
            Msg::Partition { .. } => "Partition",
            Msg::Candidate(_) => "Candidate",
            Msg::Candidates(_) => "Candidates",
            Msg::Spectra(_) => "Spectra",
            Msg::Stats(_) => "Stats",
            Msg::PctModel { .. } => "PctModel",
            Msg::Labels { .. } => "Labels",
            Msg::Token => "Token",
        }
    }

    fn mismatch(&self, expected: &'static str) -> WireMismatch {
        WireMismatch {
            expected,
            got: self.variant_name(),
        }
    }

    /// Decodes a partition message into `(first_line, n_lines, pre,
    /// cube)`.
    pub fn into_partition(self) -> Result<(usize, usize, usize, HyperCube), WireMismatch> {
        match self {
            Msg::Partition {
                first_line,
                n_lines,
                pre,
                samples,
                bands,
                data,
            } => {
                let total_lines = data.len() / (samples as usize * bands as usize);
                Ok((
                    first_line as usize,
                    n_lines as usize,
                    pre as usize,
                    HyperCube::from_vec(total_lines, samples as usize, bands as usize, data),
                ))
            }
            other => Err(other.mismatch("Partition")),
        }
    }

    /// Decodes a candidate.
    pub fn into_candidate(self) -> Result<Candidate, WireMismatch> {
        match self {
            Msg::Candidate(c) => Ok(c),
            other => Err(other.mismatch("Candidate")),
        }
    }

    /// Decodes a candidate list.
    pub fn into_candidates(self) -> Result<Vec<Candidate>, WireMismatch> {
        match self {
            Msg::Candidates(c) => Ok(c),
            other => Err(other.mismatch("Candidates")),
        }
    }

    /// Decodes a spectra list.
    pub fn into_spectra(self) -> Result<Vec<Vec<f32>>, WireMismatch> {
        match self {
            Msg::Spectra(s) => Ok(s),
            other => Err(other.mismatch("Spectra")),
        }
    }

    /// Decodes flat statistics.
    pub fn into_stats(self) -> Result<Vec<f64>, WireMismatch> {
        match self {
            Msg::Stats(s) => Ok(s),
            other => Err(other.mismatch("Stats")),
        }
    }

    /// Decodes the PCT model broadcast as `(transform, mean, classes)`.
    pub fn into_pct_model(self) -> Result<PctModelParts, WireMismatch> {
        match self {
            Msg::PctModel {
                transform,
                mean,
                classes,
            } => Ok((transform, mean, classes)),
            other => Err(other.mismatch("PctModel")),
        }
    }

    /// Decodes a label block as `(first_line, labels)`.
    pub fn into_labels(self) -> Result<(usize, Vec<u16>), WireMismatch> {
        match self {
            Msg::Labels { first_line, labels } => Ok((first_line as usize, labels)),
            other => Err(other.mismatch("Labels")),
        }
    }
}

/// The decoded pieces of a [`Msg::PctModel`] broadcast:
/// `(transform rows, image mean, transformed class representatives)`.
pub type PctModelParts = (Vec<Vec<f64>>, Vec<f64>, Vec<Vec<f64>>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_roundtrip() {
        let cube = HyperCube::from_vec(3, 2, 4, (0..24).map(|i| i as f32).collect());
        let msg = Msg::partition(10, 2, 1, &cube);
        assert_eq!(msg.size_bits(), 5 * 32 + 24 * 32);
        let (first, n, pre, back) = msg.into_partition().unwrap();
        assert_eq!((first, n, pre), (10, 2, 1));
        assert_eq!(back, cube);
    }

    #[test]
    fn candidate_size() {
        let c = Candidate {
            line: 1,
            sample: 2,
            score: 0.5,
            spectrum: vec![0.0; 224],
        };
        assert_eq!(Msg::Candidate(c.clone()).size_bits(), 128 + 224 * 32);
        assert_eq!(
            Msg::Candidates(vec![c.clone(), c]).size_bits(),
            2 * (128 + 224 * 32)
        );
    }

    #[test]
    fn spectra_and_stats_sizes() {
        assert_eq!(
            Msg::Spectra(vec![vec![0.0; 10], vec![0.0; 6]]).size_bits(),
            16 * 32
        );
        assert_eq!(Msg::Stats(vec![0.0; 5]).size_bits(), 5 * 64);
        assert_eq!(Msg::Token.size_bits(), 0);
    }

    #[test]
    fn labels_size() {
        assert_eq!(
            Msg::Labels {
                first_line: 0,
                labels: vec![0; 100]
            }
            .size_bits(),
            32 + 1600
        );
    }

    #[test]
    fn wrong_variant_is_typed_error() {
        let err = Msg::Token.into_candidate().unwrap_err();
        assert_eq!(
            err,
            WireMismatch {
                expected: "Candidate",
                got: "Token"
            }
        );
        assert_eq!(err.to_string(), "expected Candidate, got Token");
        let err = Msg::Stats(vec![]).into_spectra().unwrap_err();
        assert_eq!(err.got, "Stats");
        assert!(Msg::Token.into_pct_model().is_err());
        assert!(Msg::Token.into_partition().is_err());
        assert!(Msg::Token.into_candidates().is_err());
        assert!(Msg::Token.into_labels().is_err());
        assert!(Msg::Token.into_stats().is_err());
    }

    #[test]
    fn pct_model_size() {
        let msg = Msg::PctModel {
            transform: vec![vec![0.0f64; 4]; 2],
            mean: vec![0.0f64; 4],
            classes: vec![vec![0.0f64; 2]; 3],
        };
        // (2*4 + 4 + 3*2) f64 values at 64 bits each.
        assert_eq!(msg.size_bits(), (8 + 4 + 6) * 64);
    }

    #[test]
    fn stats_roundtrip() {
        let msg = Msg::Stats(vec![1.0, 2.0, 3.0]);
        assert_eq!(msg.into_stats().unwrap(), vec![1.0, 2.0, 3.0]);
        let msg = Msg::Labels {
            first_line: 7,
            labels: vec![1, 2],
        };
        assert_eq!(msg.into_labels().unwrap(), (7, vec![1, 2]));
    }
}
