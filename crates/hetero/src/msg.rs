//! The wire messages the parallel algorithms exchange.
//!
//! One shared enum keeps the engine monomorphic per run while letting
//! every algorithm express its traffic; [`simnet::Wire`] sizes follow
//! the actual payload (f32 spectra at 32 bits/band, labels at 16, etc.),
//! so virtual communication costs track real message volumes — the role
//! MPI derived datatypes play in the paper.
//!
//! ## Zero-copy payload bodies
//!
//! The broadcast-heavy variants — [`Msg::Partition`], [`Msg::Spectra`],
//! [`Msg::Candidate`], [`Msg::Candidates`], [`Msg::PctModel`] — carry
//! their bodies behind [`Arc`], so cloning a `Msg` at a collective
//! fan-out point is a refcount bump, not a deep copy of the megabyte
//! payload. Wire sizes are computed through the `Arc` and are
//! bit-identical to the historic owned-body encoding, and the `into_*`
//! decoders keep their owned-value signatures: they unwrap the `Arc`
//! when this rank holds the last reference and clone the body otherwise
//! (both paths produce the same value, so outputs never depend on
//! refcount timing). [`simnet::Wire::deep_copy_bits`] reports `0` for
//! the shared variants, which is what the collective copy telemetry
//! ([`simnet::CopyStats`]) observes.

use hsi_cube::HyperCube;
use simnet::Wire;
use std::sync::Arc;

/// A worker's candidate pixel: coordinates are **global** image
/// coordinates; the spectrum rides along so the master can re-score and
/// later broadcast selected targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Global image line.
    pub line: u32,
    /// Global image sample.
    pub sample: u32,
    /// The worker's score for this pixel (brightness, projection,
    /// FCLS error or MEI, depending on the algorithm).
    pub score: f64,
    /// The pixel's full spectrum.
    pub spectrum: Vec<f32>,
}

impl Candidate {
    fn size_bits(&self) -> u64 {
        32 + 32 + 64 + (self.spectrum.len() * 32) as u64
    }
}

/// The body of a [`Msg::PctModel`] broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct PctModelBody {
    /// Rows of the `c × N` principal transform.
    pub transform: Vec<Vec<f64>>,
    /// The image mean spectrum.
    pub mean: Vec<f64>,
    /// Class representatives, already transformed (`c`-dimensional).
    pub classes: Vec<Vec<f64>>,
}

/// Message payloads of the master/worker protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// A scattered image partition (first/pre are global-coordinate
    /// bookkeeping; `data` is a BIP block of `n_lines + halo` lines).
    Partition {
        /// First global line **owned** by the receiver.
        first_line: u32,
        /// Number of owned lines.
        n_lines: u32,
        /// Halo lines prepended before `first_line` (MORPH overlap).
        pre: u32,
        /// Samples per line.
        samples: u32,
        /// Spectral bands.
        bands: u32,
        /// The block, including halo lines, in BIP order (shared — a
        /// clone bumps a refcount, never copies the block).
        data: Arc<Vec<f32>>,
    },
    /// One candidate pixel (gathers and fused allreduces in
    /// ATDCA/UFCLS; shared so the winner's fan-down is copy-free).
    Candidate(Arc<Candidate>),
    /// Several candidate pixels (gathers in PCT/MORPH).
    Candidates(Arc<Vec<Candidate>>),
    /// A list of spectra (broadcast of the target matrix `U` or of the
    /// final unique class set).
    Spectra(Arc<Vec<Vec<f32>>>),
    /// Flat `f64` statistics (covariance accumulator shards).
    Stats(Vec<f64>),
    /// The PCT model broadcast: transform rows (`c × N`), image mean
    /// (`N`), and the class representatives in transformed space.
    PctModel(Arc<PctModelBody>),
    /// A block of classification labels for the sender's owned lines.
    Labels {
        /// First global line the labels cover.
        first_line: u32,
        /// Row-major labels (`n_lines × samples`).
        labels: Vec<u16>,
    },
    /// Zero-payload synchronisation token.
    Token,
}

impl Wire for Msg {
    fn size_bits(&self) -> u64 {
        match self {
            Msg::Partition { data, .. } => 5 * 32 + (data.len() * 32) as u64,
            Msg::Candidate(c) => c.size_bits(),
            Msg::Candidates(cs) => cs.iter().map(Candidate::size_bits).sum(),
            Msg::Spectra(rows) => rows.iter().map(|r| (r.len() * 32) as u64).sum(),
            Msg::Stats(v) => (v.len() * 64) as u64,
            Msg::PctModel(m) => {
                let t: u64 = m.transform.iter().map(|r| (r.len() * 64) as u64).sum();
                let c: u64 = m.classes.iter().map(|r| (r.len() * 64) as u64).sum();
                t + (m.mean.len() * 64) as u64 + c
            }
            Msg::Labels { labels, .. } => 32 + (labels.len() * 16) as u64,
            Msg::Token => 0,
        }
    }

    fn deep_copy_bits(&self) -> u64 {
        match self {
            // Arc-backed bodies: a clone bumps a refcount. The few
            // fixed-size header words are not counted.
            Msg::Partition { .. }
            | Msg::Candidate(_)
            | Msg::Candidates(_)
            | Msg::Spectra(_)
            | Msg::PctModel(_)
            | Msg::Token => 0,
            // Owned bodies copy their full payload on clone.
            Msg::Stats(_) | Msg::Labels { .. } => self.size_bits(),
        }
    }
}

/// A message of the wrong variant arrived where a specific one was
/// expected. Decoders return this instead of panicking, so
/// fault-recovery paths can *observe* a stale in-flight message (e.g. a
/// partial result from an abandoned worker) and skip it rather than
/// abort the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMismatch {
    /// The variant the decoder expected.
    pub expected: &'static str,
    /// The variant that actually arrived.
    pub got: &'static str,
}

impl std::fmt::Display for WireMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {}, got {}", self.expected, self.got)
    }
}

impl std::error::Error for WireMismatch {}

/// Unwraps an `Arc` body: by move when this rank holds the last
/// reference, by clone when the body is still shared with other ranks.
/// Both paths yield the same value, so run outputs never depend on
/// drop-order races between rank threads.
fn unwrap_or_clone<T: Clone>(body: Arc<T>) -> T {
    Arc::try_unwrap(body).unwrap_or_else(|shared| (*shared).clone())
}

impl Msg {
    /// Wraps an owned sub-cube block as a partition message.
    pub fn partition(first_line: usize, n_lines: usize, pre: usize, block: &HyperCube) -> Msg {
        Msg::Partition {
            first_line: first_line as u32,
            n_lines: n_lines as u32,
            pre: pre as u32,
            samples: block.samples() as u32,
            bands: block.bands() as u32,
            data: Arc::new(block.as_slice().to_vec()),
        }
    }

    /// Wraps one candidate as a shared-body message.
    pub fn candidate(c: Candidate) -> Msg {
        Msg::Candidate(Arc::new(c))
    }

    /// Wraps a candidate list as a shared-body message.
    pub fn candidates(cs: Vec<Candidate>) -> Msg {
        Msg::Candidates(Arc::new(cs))
    }

    /// Wraps a spectra list as a shared-body message.
    pub fn spectra(rows: Vec<Vec<f32>>) -> Msg {
        Msg::Spectra(Arc::new(rows))
    }

    /// Wraps the PCT model parts as a shared-body message.
    pub fn pct_model(transform: Vec<Vec<f64>>, mean: Vec<f64>, classes: Vec<Vec<f64>>) -> Msg {
        Msg::PctModel(Arc::new(PctModelBody {
            transform,
            mean,
            classes,
        }))
    }

    /// This message's variant name (for [`WireMismatch`] diagnostics).
    pub fn variant_name(&self) -> &'static str {
        match self {
            Msg::Partition { .. } => "Partition",
            Msg::Candidate(_) => "Candidate",
            Msg::Candidates(_) => "Candidates",
            Msg::Spectra(_) => "Spectra",
            Msg::Stats(_) => "Stats",
            Msg::PctModel { .. } => "PctModel",
            Msg::Labels { .. } => "Labels",
            Msg::Token => "Token",
        }
    }

    fn mismatch(&self, expected: &'static str) -> WireMismatch {
        WireMismatch {
            expected,
            got: self.variant_name(),
        }
    }

    /// Decodes a partition message into `(first_line, n_lines, pre,
    /// cube)`.
    pub fn into_partition(self) -> Result<(usize, usize, usize, HyperCube), WireMismatch> {
        match self {
            Msg::Partition {
                first_line,
                n_lines,
                pre,
                samples,
                bands,
                data,
            } => {
                let data = unwrap_or_clone(data);
                let total_lines = data.len() / (samples as usize * bands as usize);
                Ok((
                    first_line as usize,
                    n_lines as usize,
                    pre as usize,
                    HyperCube::from_vec(total_lines, samples as usize, bands as usize, data),
                ))
            }
            other => Err(other.mismatch("Partition")),
        }
    }

    /// Decodes a candidate.
    pub fn into_candidate(self) -> Result<Candidate, WireMismatch> {
        match self {
            Msg::Candidate(c) => Ok(unwrap_or_clone(c)),
            other => Err(other.mismatch("Candidate")),
        }
    }

    /// Borrows a candidate without consuming the message.
    pub fn as_candidate(&self) -> Result<&Candidate, WireMismatch> {
        match self {
            Msg::Candidate(c) => Ok(c),
            other => Err(other.mismatch("Candidate")),
        }
    }

    /// Decodes a candidate list.
    pub fn into_candidates(self) -> Result<Vec<Candidate>, WireMismatch> {
        match self {
            Msg::Candidates(c) => Ok(unwrap_or_clone(c)),
            other => Err(other.mismatch("Candidates")),
        }
    }

    /// Decodes a spectra list.
    pub fn into_spectra(self) -> Result<Vec<Vec<f32>>, WireMismatch> {
        match self {
            Msg::Spectra(s) => Ok(unwrap_or_clone(s)),
            other => Err(other.mismatch("Spectra")),
        }
    }

    /// Borrows the spectra list without consuming the message (the
    /// copy-free path for read-only scoring kernels).
    pub fn as_spectra(&self) -> Result<&[Vec<f32>], WireMismatch> {
        match self {
            Msg::Spectra(s) => Ok(s),
            other => Err(other.mismatch("Spectra")),
        }
    }

    /// Decodes flat statistics.
    pub fn into_stats(self) -> Result<Vec<f64>, WireMismatch> {
        match self {
            Msg::Stats(s) => Ok(s),
            other => Err(other.mismatch("Stats")),
        }
    }

    /// Decodes the PCT model broadcast as `(transform, mean, classes)`.
    pub fn into_pct_model(self) -> Result<PctModelParts, WireMismatch> {
        match self {
            Msg::PctModel(m) => {
                let PctModelBody {
                    transform,
                    mean,
                    classes,
                } = unwrap_or_clone(m);
                Ok((transform, mean, classes))
            }
            other => Err(other.mismatch("PctModel")),
        }
    }

    /// Borrows the PCT model body without consuming the message.
    pub fn as_pct_model(&self) -> Result<&PctModelBody, WireMismatch> {
        match self {
            Msg::PctModel(m) => Ok(m),
            other => Err(other.mismatch("PctModel")),
        }
    }

    /// Decodes a label block as `(first_line, labels)`.
    pub fn into_labels(self) -> Result<(usize, Vec<u16>), WireMismatch> {
        match self {
            Msg::Labels { first_line, labels } => Ok((first_line as usize, labels)),
            other => Err(other.mismatch("Labels")),
        }
    }
}

/// The decoded pieces of a [`Msg::PctModel`] broadcast:
/// `(transform rows, image mean, transformed class representatives)`.
pub type PctModelParts = (Vec<Vec<f64>>, Vec<f64>, Vec<Vec<f64>>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_roundtrip() {
        let cube = HyperCube::from_vec(3, 2, 4, (0..24).map(|i| i as f32).collect());
        let msg = Msg::partition(10, 2, 1, &cube);
        assert_eq!(msg.size_bits(), 5 * 32 + 24 * 32);
        let (first, n, pre, back) = msg.into_partition().unwrap();
        assert_eq!((first, n, pre), (10, 2, 1));
        assert_eq!(back, cube);
    }

    #[test]
    fn candidate_size() {
        let c = Candidate {
            line: 1,
            sample: 2,
            score: 0.5,
            spectrum: vec![0.0; 224],
        };
        assert_eq!(Msg::candidate(c.clone()).size_bits(), 128 + 224 * 32);
        assert_eq!(
            Msg::candidates(vec![c.clone(), c]).size_bits(),
            2 * (128 + 224 * 32)
        );
    }

    #[test]
    fn spectra_and_stats_sizes() {
        assert_eq!(
            Msg::spectra(vec![vec![0.0; 10], vec![0.0; 6]]).size_bits(),
            16 * 32
        );
        assert_eq!(Msg::Stats(vec![0.0; 5]).size_bits(), 5 * 64);
        assert_eq!(Msg::Token.size_bits(), 0);
    }

    #[test]
    fn labels_size() {
        assert_eq!(
            Msg::Labels {
                first_line: 0,
                labels: vec![0; 100]
            }
            .size_bits(),
            32 + 1600
        );
    }

    #[test]
    fn shared_bodies_report_zero_deep_copy_bits() {
        let c = Candidate {
            line: 0,
            sample: 0,
            score: 1.0,
            spectrum: vec![0.0; 32],
        };
        assert_eq!(Msg::candidate(c.clone()).deep_copy_bits(), 0);
        assert_eq!(Msg::candidates(vec![c]).deep_copy_bits(), 0);
        assert_eq!(Msg::spectra(vec![vec![0.0; 8]]).deep_copy_bits(), 0);
        assert_eq!(
            Msg::pct_model(vec![vec![0.0; 4]], vec![0.0; 4], vec![vec![0.0; 1]]).deep_copy_bits(),
            0
        );
        let cube = HyperCube::zeros(2, 2, 2);
        assert_eq!(Msg::partition(0, 2, 0, &cube).deep_copy_bits(), 0);
        assert_eq!(Msg::Token.deep_copy_bits(), 0);
        // Owned bodies report their full wire size as deep-copied.
        let stats = Msg::Stats(vec![0.0; 5]);
        assert_eq!(stats.deep_copy_bits(), stats.size_bits());
        let labels = Msg::Labels {
            first_line: 0,
            labels: vec![0; 10],
        };
        assert_eq!(labels.deep_copy_bits(), labels.size_bits());
    }

    #[test]
    fn shared_decode_clones_when_shared_and_moves_when_unique() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let msg = Msg::spectra(rows.clone());
        let held = msg.clone(); // second reference keeps the Arc shared
        assert_eq!(msg.into_spectra().unwrap(), rows);
        // `held` is now the unique owner: decode moves the body out.
        assert_eq!(held.into_spectra().unwrap(), rows);
    }

    #[test]
    fn wrong_variant_is_typed_error() {
        let err = Msg::Token.into_candidate().unwrap_err();
        assert_eq!(
            err,
            WireMismatch {
                expected: "Candidate",
                got: "Token"
            }
        );
        assert_eq!(err.to_string(), "expected Candidate, got Token");
        let err = Msg::Stats(vec![]).into_spectra().unwrap_err();
        assert_eq!(err.got, "Stats");
        assert!(Msg::Token.into_pct_model().is_err());
        assert!(Msg::Token.into_partition().is_err());
        assert!(Msg::Token.into_candidates().is_err());
        assert!(Msg::Token.into_labels().is_err());
        assert!(Msg::Token.into_stats().is_err());
        assert!(Msg::Token.as_spectra().is_err());
        assert!(Msg::Token.as_candidate().is_err());
        assert!(Msg::Token.as_pct_model().is_err());
    }

    #[test]
    fn pct_model_size() {
        let msg = Msg::pct_model(
            vec![vec![0.0f64; 4]; 2],
            vec![0.0f64; 4],
            vec![vec![0.0f64; 2]; 3],
        );
        // (2*4 + 4 + 3*2) f64 values at 64 bits each.
        assert_eq!(msg.size_bits(), (8 + 4 + 6) * 64);
    }

    #[test]
    fn stats_roundtrip() {
        let msg = Msg::Stats(vec![1.0, 2.0, 3.0]);
        assert_eq!(msg.into_stats().unwrap(), vec![1.0, 2.0, 3.0]);
        let msg = Msg::Labels {
            first_line: 7,
            labels: vec![1, 2],
        };
        assert_eq!(msg.into_labels().unwrap(), (7, vec![1, 2]));
    }
}
