//! Fault-tolerant master/worker drivers.
//!
//! The paper's §5 names fault tolerance as the open problem of
//! heterogeneous remote-sensing clusters: a static WEA partition is only
//! optimal while every processor survives. This module runs any
//! [`ChunkedAlgo`] under `simnet`'s deterministic fault plans in two
//! recovery modes:
//!
//! * [`run_replan`] — **static WEA with re-planning**: each round is cut
//!   into one batch per worker, sized by relative speed (the WEA
//!   apportionment of [`crate::wea::apportion_rows`]). The master awaits
//!   each batch under an analytic completion deadline; when a worker's
//!   failure marker surfaces, every unfinished batch of that worker is
//!   re-apportioned over the survivors and re-dispatched. Recovery cost
//!   scales with the *lost partition*.
//! * [`run_self_sched`] — **chunked self-scheduling**: rounds are cut
//!   into fixed-size chunks handed to whichever worker is free; a dead
//!   worker's only in-flight chunk goes back on the queue. Recovery cost
//!   scales with a *single chunk*, which is why self-scheduling wins for
//!   mid-run crashes (experiment A5).
//!
//! Rank 0 is a **coordinator only** — unlike [`crate::par`], where the
//! root also works a partition. A dedicated master keeps the dispatch
//! loop deterministic (it never has to interleave its own compute with
//! polling) and survives every plan that crashes workers only.
//!
//! **Determinism.** All scheduling decisions are functions of virtual
//! time: the master polls workers in rank order at deadlines computed
//! from the analytic cost model ([`ChunkedAlgo::chunk_mflops`]) or at
//! fixed poll intervals, and `simnet` delivers messages and failure
//! markers at cost-model times. Two runs with the same fault plan
//! produce bit-identical [`RunReport`]s and outputs (asserted by the
//! `fault_injection` integration suite).

use crate::sched::ChunkedAlgo;
use crate::wea::apportion_rows;
use simnet::engine::{Engine, Wire};
use simnet::report::RunReport;
use simnet::{Ctx, RecvError};
use std::collections::VecDeque;
use std::sync::Arc;

/// Knobs of the fault-tolerant drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtOptions {
    /// Chunk size (lines) of the self-scheduling mode.
    pub chunk_lines: usize,
    /// Deadline factor κ of the re-planning mode: a batch estimated at
    /// `e` seconds is declared late after `κ·e` (late batches merely
    /// extend the deadline — only a failure marker is authoritative).
    pub failure_threshold: f64,
    /// Deadline extension (seconds) after a late batch.
    pub margin_s: f64,
    /// Idle poll interval (seconds) of the self-scheduling master.
    pub poll_interval_s: f64,
}

impl Default for FtOptions {
    fn default() -> Self {
        FtOptions {
            chunk_lines: 8,
            failure_threshold: 4.0,
            margin_s: 0.05,
            poll_interval_s: 0.02,
        }
    }
}

/// One detected worker loss and the work it orphaned.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// The lost worker's rank.
    pub rank: usize,
    /// Virtual time the worker actually failed.
    pub at: f64,
    /// Virtual time the master observed the failure.
    pub detected_at: f64,
    /// Image lines that were re-dispatched.
    pub lines: usize,
    /// Round in which the loss was detected.
    pub round: usize,
}

/// Outcome of a fault-tolerant run.
#[derive(Debug, Clone)]
pub struct FtRun<O> {
    /// The analysis result, complete despite any worker losses.
    pub output: O,
    /// Every detected loss, in detection order.
    pub recoveries: Vec<Recovery>,
    /// Timing report (failures of crashed workers included).
    pub report: RunReport<()>,
}

/// Master/worker wire protocol. Headers are a few machine words; state
/// and partial payloads carry the algorithm-reported wire sizes.
enum FtMsg<S, P> {
    /// Round start: the state every worker needs (the round number
    /// rides on each `Assign`). Shared — the master fans one `Arc` to
    /// every worker, so each send is a refcount bump, not a state copy.
    Round { state: Arc<S>, bits: u64 },
    /// Work order for lines `[first, first + n)`.
    Assign {
        id: u64,
        round: usize,
        first: usize,
        n: usize,
    },
    /// A chunk's result.
    Partial {
        id: u64,
        first: usize,
        data: P,
        bits: u64,
    },
    /// No more rounds; the worker exits.
    Finish,
}

impl<S: Send + Sync + 'static, P: Send + 'static> Wire for FtMsg<S, P> {
    fn size_bits(&self) -> u64 {
        match self {
            FtMsg::Round { bits, .. } => 96 + bits,
            FtMsg::Assign { .. } => 192,
            FtMsg::Partial { bits, .. } => 128 + bits,
            FtMsg::Finish => 8,
        }
    }

    fn deep_copy_bits(&self) -> u64 {
        match self {
            // Round carries its state behind an Arc; the other small
            // variants are fixed-size headers.
            FtMsg::Round { .. } | FtMsg::Assign { .. } | FtMsg::Finish => 0,
            FtMsg::Partial { .. } => self.size_bits(),
        }
    }
}

/// The recovery mode of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Replan,
    SelfSched,
}

/// Runs `algo` with static speed-proportional batches, re-planning the
/// orphaned lines over the survivors when a worker is lost.
///
/// # Panics
/// Panics if the platform has fewer than two processors, if every
/// worker is lost, or if the fault plan crashes rank 0 (the master).
pub fn run_replan<A>(engine: &Engine, algo: &A, opts: &FtOptions) -> FtRun<A::Output>
where
    A: ChunkedAlgo + Sync,
    A::Output: Send,
{
    run_mode(engine, algo, opts, Mode::Replan)
}

/// Runs `algo` with fixed-size chunk self-scheduling, re-queueing a
/// lost worker's in-flight chunk.
///
/// The chunk grid is fixed by [`FtOptions::chunk_lines`], so the output
/// is identical whichever workers compute which chunks — crashed or
/// not (asserted by the `fault_injection` suite).
///
/// # Panics
/// Panics if the platform has fewer than two processors, if every
/// worker is lost, or if the fault plan crashes rank 0 (the master).
pub fn run_self_sched<A>(engine: &Engine, algo: &A, opts: &FtOptions) -> FtRun<A::Output>
where
    A: ChunkedAlgo + Sync,
    A::Output: Send,
{
    run_mode(engine, algo, opts, Mode::SelfSched)
}

fn run_mode<A>(engine: &Engine, algo: &A, opts: &FtOptions, mode: Mode) -> FtRun<A::Output>
where
    A: ChunkedAlgo + Sync,
    A::Output: Send,
{
    assert!(
        engine.platform().num_procs() >= 2,
        "ft: need a master and at least one worker"
    );
    let report = engine.run(|ctx: &mut Ctx<FtMsg<A::State, A::Partial>>| {
        if ctx.is_root() {
            let out = match mode {
                Mode::Replan => master_replan(ctx, algo, opts),
                Mode::SelfSched => master_self_sched(ctx, algo, opts),
            };
            Some(out)
        } else {
            worker_loop(ctx, algo);
            None
        }
    });
    let RunReport {
        platform_name,
        ledgers,
        mut results,
        failures,
        total_time,
        collectives,
        copies,
    } = report;
    let (output, recoveries) = results
        .get_mut(0)
        .and_then(Option::take)
        .flatten()
        .unwrap_or_else(|| panic!("ft: master produced no result (failures: {failures:?})"));
    FtRun {
        output,
        recoveries,
        report: RunReport {
            platform_name,
            ledgers,
            results: Vec::new(),
            failures,
            total_time,
            collectives,
            copies,
        },
    }
}

/// Worker side of both modes: obey `Round`/`Assign` orders from the
/// master until `Finish`.
fn worker_loop<A: ChunkedAlgo>(ctx: &mut Ctx<FtMsg<A::State, A::Partial>>, algo: &A) {
    let mut state: Option<Arc<A::State>> = None;
    // Round-constant scratch, rebuilt lazily on the first Assign of a
    // round and reused for every later chunk of that round.
    let mut scratch: Option<(usize, A::Scratch)> = None;
    loop {
        match ctx.recv(0) {
            FtMsg::Round { state: s, .. } => {
                state = Some(s);
                scratch = None;
            }
            FtMsg::Assign {
                id,
                round,
                first,
                n,
            } => {
                let st = state.as_deref().expect("ft: Assign before any Round");
                ctx.compute_par(algo.chunk_mflops(round, n));
                if scratch.as_ref().map(|&(r, _)| r) != Some(round) {
                    scratch = Some((round, algo.prepare(round, st)));
                }
                let (_, sc) = scratch.as_mut().expect("ft: scratch just prepared");
                let data = algo.run_chunk(round, st, sc, first, n);
                let bits = algo.partial_bits(&data);
                ctx.send(
                    0,
                    FtMsg::Partial {
                        id,
                        first,
                        data,
                        bits,
                    },
                );
            }
            FtMsg::Finish => break,
            FtMsg::Partial { .. } => unreachable!("ft: master never sends Partial"),
        }
    }
}

/// Splits lines `[first, first + n)` over the surviving workers in
/// proportion to speed; returns `(first, n, worker)` slices.
fn split_lines(
    first: usize,
    n: usize,
    alive: &[bool],
    speeds: &[f64],
) -> Vec<(usize, usize, usize)> {
    let workers: Vec<usize> = (1..alive.len()).filter(|&w| alive[w]).collect();
    assert!(!workers.is_empty(), "ft: all workers lost");
    let total: f64 = workers.iter().map(|&w| speeds[w]).sum();
    let fractions: Vec<f64> = workers.iter().map(|&w| speeds[w] / total).collect();
    let rows = apportion_rows(&fractions, n);
    let mut out = Vec::new();
    let mut f = first;
    for (i, &w) in workers.iter().enumerate() {
        if rows[i] > 0 {
            out.push((f, rows[i], w));
            f += rows[i];
        }
    }
    out
}

/// Broadcasts the round-start state to every surviving worker.
///
/// Deliberately a master-rooted [`simnet::coll::fanout_with`] rather
/// than a tree collective: tree schedules route through relay ranks
/// whose membership must be agreed by *all* participants, and here the
/// alive-set is known only to the master (workers just `recv(0)`).
/// Promoting this to a crash-aware tree broadcast needs a membership /
/// epoch protocol — see ROADMAP "Open items" and docs/COMMS.md.
fn broadcast_state<S, P>(ctx: &mut Ctx<FtMsg<S, P>>, alive: &[bool], state: &S, bits: u64)
where
    S: Clone + Send + Sync + 'static,
    P: Send + 'static,
{
    let targets: Vec<usize> = (1..alive.len()).filter(|&w| alive[w]).collect();
    // One deep copy total (the `Arc` construction); every per-worker
    // send then shares it with a refcount bump.
    let shared = Arc::new(state.clone());
    simnet::coll::fanout_with(ctx, &targets, || FtMsg::Round {
        state: Arc::clone(&shared),
        bits,
    });
}

/// A dispatched batch of the re-planning master.
struct Batch {
    id: u64,
    worker: usize,
    first: usize,
    n: usize,
    deadline: f64,
    done: bool,
}

fn master_replan<A: ChunkedAlgo>(
    ctx: &mut Ctx<FtMsg<A::State, A::Partial>>,
    algo: &A,
    opts: &FtOptions,
) -> (A::Output, Vec<Recovery>) {
    let p = ctx.num_ranks();
    let speeds: Vec<f64> = (0..p).map(|i| ctx.platform().proc(i).speed()).collect();
    let mut alive = vec![true; p];
    let mut recoveries: Vec<Recovery> = Vec::new();
    let mut next_id: u64 = 0;
    let mut state = algo.initial_state();

    for round in 0..algo.rounds() {
        broadcast_state(ctx, &alive, &state, algo.state_bits(&state));

        // One speed-proportional batch per surviving worker (the WEA
        // apportionment), each with an analytic completion deadline.
        let mut ready_at = vec![0.0f64; p];
        let mut batches: Vec<Batch> = Vec::new();
        let mut dispatch = |ctx: &mut Ctx<FtMsg<A::State, A::Partial>>,
                            batches: &mut Vec<Batch>,
                            ready_at: &mut Vec<f64>,
                            first: usize,
                            n: usize,
                            w: usize| {
            let id = next_id;
            next_id += 1;
            ctx.send(
                w,
                FtMsg::Assign {
                    id,
                    round,
                    first,
                    n,
                },
            );
            let est = algo.chunk_mflops(round, n) / speeds[w];
            let start = ready_at[w].max(ctx.elapsed());
            ready_at[w] = start + est * opts.failure_threshold;
            batches.push(Batch {
                id,
                worker: w,
                first,
                n,
                deadline: ready_at[w] + opts.margin_s,
                done: false,
            });
        };
        for (first, n, w) in split_lines(0, algo.lines(), &alive, &speeds) {
            dispatch(ctx, &mut batches, &mut ready_at, first, n, w);
        }

        let mut partials: Vec<(usize, A::Partial)> = Vec::new();
        let mut i = 0;
        while i < batches.len() {
            if batches[i].done {
                i += 1;
                continue;
            }
            let w = batches[i].worker;
            let now = ctx.elapsed();
            let deadline = batches[i].deadline.max(now);
            match ctx.recv_deadline(w, deadline) {
                Ok(FtMsg::Partial {
                    id, first, data, ..
                }) => {
                    // Per-pair FIFO: this is w's earliest outstanding
                    // batch — usually batch i itself, but match by id.
                    if let Some(b) = batches.iter_mut().find(|b| b.id == id && !b.done) {
                        b.done = true;
                        partials.push((first, data));
                    }
                }
                Ok(_) => unreachable!("ft: workers only send Partial"),
                Err(RecvError::Timeout { .. }) => {
                    // Late ≠ dead: only a failure marker is
                    // authoritative. Extend and keep waiting.
                    batches[i].deadline = ctx.elapsed() + opts.margin_s;
                }
                Err(RecvError::Failed(f)) => {
                    let detected_at = ctx.elapsed();
                    alive[w] = false;
                    let orphans: Vec<(usize, usize)> = batches
                        .iter_mut()
                        .filter(|b| b.worker == w && !b.done)
                        .map(|b| {
                            b.done = true;
                            (b.first, b.n)
                        })
                        .collect();
                    let lost_lines: usize = orphans.iter().map(|&(_, n)| n).sum();
                    recoveries.push(Recovery {
                        rank: w,
                        at: f.at,
                        detected_at,
                        lines: lost_lines,
                        round,
                    });
                    ctx.mark_recovery(detected_at, w);
                    for (of, on) in orphans {
                        for (nf, nn, nw) in split_lines(of, on, &alive, &speeds) {
                            dispatch(ctx, &mut batches, &mut ready_at, nf, nn, nw);
                        }
                    }
                }
            }
        }

        partials.sort_by_key(|&(first, _)| first);
        let (next, mflops) = algo.reduce(round, state, partials);
        ctx.compute_seq(mflops);
        state = next;
    }

    for w in 1..p {
        // Dead workers drop the message silently.
        ctx.send(w, FtMsg::Finish);
    }
    (algo.finish(state), recoveries)
}

fn master_self_sched<A: ChunkedAlgo>(
    ctx: &mut Ctx<FtMsg<A::State, A::Partial>>,
    algo: &A,
    opts: &FtOptions,
) -> (A::Output, Vec<Recovery>) {
    let p = ctx.num_ranks();
    let mut alive = vec![true; p];
    let mut recoveries: Vec<Recovery> = Vec::new();
    let mut next_id: u64 = 0;
    let mut state = algo.initial_state();
    let chunk = opts.chunk_lines.max(1);

    for round in 0..algo.rounds() {
        broadcast_state(ctx, &alive, &state, algo.state_bits(&state));

        // The FIXED chunk grid: output does not depend on which worker
        // computes which chunk, so crashes cannot change the result.
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        let mut first = 0;
        while first < algo.lines() {
            let n = chunk.min(algo.lines() - first);
            queue.push_back((first, n));
            first += n;
        }
        let total_chunks = queue.len();
        let mut done = 0usize;
        let mut outstanding: Vec<Option<(u64, usize, usize)>> = vec![None; p];
        let mut partials: Vec<(usize, A::Partial)> = Vec::new();

        while done < total_chunks {
            assert!(
                (1..p).any(|w| alive[w]),
                "ft: all workers lost in round {round}"
            );
            // Hand every free surviving worker the next queued chunk.
            for w in 1..p {
                if alive[w] && outstanding[w].is_none() {
                    if let Some((cf, cn)) = queue.pop_front() {
                        let id = next_id;
                        next_id += 1;
                        ctx.send(
                            w,
                            FtMsg::Assign {
                                id,
                                round,
                                first: cf,
                                n: cn,
                            },
                        );
                        outstanding[w] = Some((id, cf, cn));
                    }
                }
            }
            // Poll outstanding workers in rank order at the current
            // virtual instant (a past deadline never advances time).
            let now = ctx.elapsed();
            let mut productive = false;
            for w in 1..p {
                if !alive[w] {
                    continue;
                }
                let Some((id, cf, cn)) = outstanding[w] else {
                    continue;
                };
                match ctx.recv_deadline(w, now) {
                    Ok(FtMsg::Partial {
                        id: pid,
                        first: pf,
                        data,
                        ..
                    }) => {
                        if pid == id {
                            outstanding[w] = None;
                            partials.push((pf, data));
                            done += 1;
                            productive = true;
                        }
                    }
                    Ok(_) => unreachable!("ft: workers only send Partial"),
                    Err(RecvError::Timeout { .. }) => {}
                    Err(RecvError::Failed(f)) => {
                        let detected_at = ctx.elapsed();
                        alive[w] = false;
                        outstanding[w] = None;
                        // Back on the queue front — the next free worker
                        // picks the orphaned chunk up first.
                        queue.push_front((cf, cn));
                        recoveries.push(Recovery {
                            rank: w,
                            at: f.at,
                            detected_at,
                            lines: cn,
                            round,
                        });
                        ctx.mark_recovery(detected_at, w);
                        productive = true;
                    }
                }
            }
            if !productive && done < total_chunks {
                ctx.wait_until(ctx.elapsed() + opts.poll_interval_s);
            }
        }

        partials.sort_by_key(|&(first, _)| first);
        let (next, mflops) = algo.reduce(round, state, partials);
        ctx.compute_seq(mflops);
        state = next;
    }

    for w in 1..p {
        ctx.send(w, FtMsg::Finish);
    }
    (algo.finish(state), recoveries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoParams;
    use crate::sched::AtdcaChunks;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::{presets, FailureCause, FaultPlan};

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    fn params() -> AlgoParams {
        AlgoParams {
            num_targets: 6,
            ..Default::default()
        }
    }

    fn coords(targets: &[crate::seq::DetectedTarget]) -> Vec<(usize, usize)> {
        targets.iter().map(|t| (t.line, t.sample)).collect()
    }

    #[test]
    fn self_sched_fault_free_matches_sequential() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous());
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run = run_self_sched(&engine, &algo, &FtOptions::default());
        assert_eq!(coords(&run.output), coords(&seq.result));
        assert!(run.recoveries.is_empty());
        assert!(run.report.ok());
    }

    #[test]
    fn replan_fault_free_matches_sequential() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous());
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run = run_replan(&engine, &algo, &FtOptions::default());
        assert_eq!(coords(&run.output), coords(&seq.result));
        assert!(run.recoveries.is_empty());
    }

    #[test]
    fn self_sched_recovers_from_mid_run_crash() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous())
            .with_faults(FaultPlan::new().crash(3, 0.05));
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run = run_self_sched(&engine, &algo, &FtOptions::default());
        assert_eq!(coords(&run.output), coords(&seq.result));
        assert_eq!(run.recoveries.len(), 1);
        assert_eq!(run.recoveries[0].rank, 3);
        assert!(run.recoveries[0].detected_at >= run.recoveries[0].at);
        let f = run.report.failure_of(3).expect("failure recorded");
        assert_eq!(f.cause, FailureCause::Crash);
    }

    #[test]
    fn replan_recovers_from_mid_run_crash() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous())
            .with_faults(FaultPlan::new().crash(5, 0.05));
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run = run_replan(&engine, &algo, &FtOptions::default());
        assert_eq!(coords(&run.output), coords(&seq.result));
        assert_eq!(run.recoveries.len(), 1);
        assert_eq!(run.recoveries[0].rank, 5);
        assert!(run.recoveries[0].lines > 0);
    }

    #[test]
    fn identical_fault_plans_are_bit_deterministic() {
        let s = scene();
        let p = params();
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run_once = || {
            let engine = Engine::new(presets::fully_heterogeneous())
                .with_faults(FaultPlan::new().crash(2, 0.03).slowdown(4, 0.0, 0.2, 3.0));
            run_self_sched(&engine, &algo, &FtOptions::default())
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.report, b.report);
        assert_eq!(coords(&a.output), coords(&b.output));
        assert_eq!(a.recoveries, b.recoveries);
    }
}
