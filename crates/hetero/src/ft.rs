//! Fault-tolerant master/worker drivers.
//!
//! The paper's §5 names fault tolerance as the open problem of
//! heterogeneous remote-sensing clusters: a static WEA partition is only
//! optimal while every processor survives. This module runs any
//! [`ChunkedAlgo`] under `simnet`'s deterministic fault plans in two
//! recovery modes:
//!
//! * [`run_replan`] — **static WEA with re-planning**: each round is cut
//!   into one batch per worker, sized by relative speed (the WEA
//!   apportionment of [`crate::wea::apportion_rows`]). The master awaits
//!   each batch under an analytic completion deadline; when a worker's
//!   failure marker surfaces, every unfinished batch of that worker is
//!   re-apportioned over the survivors and re-dispatched. Recovery cost
//!   scales with the *lost partition*.
//! * [`run_self_sched`] — **chunked self-scheduling**: rounds are cut
//!   into fixed-size chunks handed to whichever worker is free; a dead
//!   worker's only in-flight chunk goes back on the queue. Recovery cost
//!   scales with a *single chunk*, which is why self-scheduling wins for
//!   mid-run crashes (experiment A5).
//!
//! Rank 0 is a **coordinator only** — unlike [`crate::par`], where the
//! root also works a partition. A dedicated master keeps the dispatch
//! loop deterministic (it never has to interleave its own compute with
//! polling) and survives every plan that crashes workers only.
//!
//! **State distribution.** With the default
//! [`FtOptions::collectives`] (linear) the master fans the round state
//! to every worker directly — bit- and timing-identical to the historic
//! path. Any other broadcast algorithm enables **tree mode**: the
//! master keeps an epoch-stamped [`Membership`] view (the epoch bumps
//! on every observed failure), opens each round by sending a tiny
//! `(epoch, survivors, algorithm)` header to every survivor, and ships
//! the large state down the survivor-set schedule tree, where workers
//! relay it to their tree children and then send one `StateAck` back.
//! The master collects an ack (or the failure marker) from every
//! survivor **before dispatching any work** — a state-distribution
//! barrier. The barrier is what keeps the protocol deadlock-free: the
//! engine has no non-blocking poll (`recv_deadline` physically waits
//! for the peer's next packet), so a rank may only ever block on a
//! channel whose peer is bound to send again; with the barrier, every
//! wait in the protocol is of that kind. Crashed interior relays are
//! routed around at the next view; a worker orphaned *mid-round* (its
//! relay parent died before forwarding) requests the state directly
//! from the master, which answers from the round's shared `Arc` during
//! the ack sweep — under the epoch frozen at round start. Epoch-stamped
//! messages from a superseded view are dropped as stale, never folded
//! into the current round. [`CollAlgorithm::PipelinedChunked`]
//! normalizes to the segment-hierarchical tree it shares: chunk
//! streaming composes poorly with mid-round rescue (every chunk is a
//! full payload with partial charge).
//!
//! **Determinism.** All scheduling decisions are functions of virtual
//! time: the master polls workers in rank order at deadlines computed
//! from the analytic cost model ([`ChunkedAlgo::chunk_mflops`]) or at
//! fixed poll intervals, and `simnet` delivers messages and failure
//! markers at cost-model times. Two runs with the same fault plan
//! produce bit-identical [`RunReport`]s and outputs (asserted by the
//! `fault_injection` integration suite).

use crate::offload::{self, ChunkCost, OffloadPolicy};
use crate::sched::ChunkedAlgo;
use crate::wea::apportion_rows;
use simnet::coll::{self, CollAlgorithm, CollOp, CollectiveConfig, Membership, Stamped};
use simnet::engine::{Engine, Wire};
use simnet::report::RunReport;
use simnet::{Ctx, RecvError};
use std::collections::VecDeque;
use std::sync::Arc;

/// Knobs of the fault-tolerant drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtOptions {
    /// Chunk size (lines) of the self-scheduling mode.
    pub chunk_lines: usize,
    /// Deadline factor κ of the re-planning mode: a batch estimated at
    /// `e` seconds is declared late after `κ·e` (late batches merely
    /// extend the deadline — only a failure marker is authoritative).
    pub failure_threshold: f64,
    /// Deadline extension (seconds) after a late batch.
    pub margin_s: f64,
    /// Idle poll interval (seconds) of the self-scheduling master.
    pub poll_interval_s: f64,
    /// Collective configuration of the round-state distribution. Only
    /// the `broadcast` slot (and `pipeline_chunks`) matters here:
    /// [`CollAlgorithm::Linear`] (the default) runs the historic
    /// direct fan-out, bit- and timing-identical to earlier releases;
    /// anything else enables the epoch-stamped survivor-tree mode (see
    /// the module docs).
    pub collectives: CollectiveConfig,
    /// When workers offload chunks to their node's accelerator (see
    /// [`crate::offload`]). Affects time accounting and batch sizing
    /// only — chunk outputs are bit-identical under every policy.
    pub offload: OffloadPolicy,
}

impl Default for FtOptions {
    fn default() -> Self {
        FtOptions {
            chunk_lines: 8,
            failure_threshold: 4.0,
            margin_s: 0.05,
            poll_interval_s: 0.02,
            collectives: CollectiveConfig::linear(),
            offload: OffloadPolicy::Never,
        }
    }
}

/// Structured rejection of a fault-tolerant run that can never
/// complete, detected before the engine spins up any rank.
#[derive(Debug, Clone, PartialEq)]
pub enum FtError {
    /// The fault plan crashes rank 0 — the coordinator. The ft
    /// protocol has a single dispatch loop on rank 0 and no master
    /// re-election, so such a run can only end in every worker dying of
    /// `PeerLost` with no result; it is rejected at startup instead.
    MasterCrashScheduled {
        /// Virtual time of the scheduled coordinator crash.
        at: f64,
    },
    /// The platform has fewer than two processors (a master and at
    /// least one worker are required).
    TooFewRanks {
        /// Processors in the platform.
        num_procs: usize,
    },
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::MasterCrashScheduled { at } => write!(
                f,
                "ft: fault plan crashes rank 0 (the coordinator) at {at:.6}s; \
                 the ft drivers have no master re-election, so the run cannot complete"
            ),
            FtError::TooFewRanks { num_procs } => write!(
                f,
                "ft: need a master and at least one worker (platform has {num_procs} processor(s))"
            ),
        }
    }
}

impl std::error::Error for FtError {}

/// One detected worker loss and the work it orphaned.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// The lost worker's rank.
    pub rank: usize,
    /// Virtual time the worker actually failed.
    pub at: f64,
    /// Virtual time the master observed the failure.
    pub detected_at: f64,
    /// Image lines that were re-dispatched.
    pub lines: usize,
    /// Round in which the loss was detected.
    pub round: usize,
}

/// Outcome of a fault-tolerant run.
#[derive(Debug, Clone)]
pub struct FtRun<O> {
    /// The analysis result, complete despite any worker losses.
    pub output: O,
    /// Every detected loss, in detection order.
    pub recoveries: Vec<Recovery>,
    /// Timing report (failures of crashed workers included).
    pub report: RunReport<()>,
}

/// Master/worker wire protocol. Headers are a few machine words; state
/// and partial payloads carry the algorithm-reported wire sizes.
enum FtMsg<S, P> {
    /// Linear-mode round start: the state every worker needs (the round
    /// number rides on each `Assign`). Shared — the master fans one
    /// `Arc` to every worker, so each send is a refcount bump, not a
    /// state copy.
    Round { state: Arc<S>, bits: u64 },
    /// Tree-mode round header, master → every survivor directly: the
    /// epoch-stamped membership view and the concrete (master-resolved)
    /// schedule algorithm of this round's state tree. A worker cannot
    /// know its tree parent before it holds this header, which is why
    /// the header fan-out stays linear — P−1 tiny sends paid before the
    /// large state goes down the tree.
    RoundStart {
        round: usize,
        epoch: u64,
        survivors: Vec<usize>,
        algo: CollAlgorithm,
    },
    /// Tree-mode round state, relayed edge-by-edge down the survivor
    /// tree (and master → orphan directly on rescue). Epoch-stamped:
    /// receivers drop copies from a superseded view as stale.
    RoundState {
        epoch: u64,
        round: usize,
        state: Arc<S>,
        bits: u64,
    },
    /// Tree-mode rescue request, orphan → master: the worker's relay
    /// parent died before forwarding the round state.
    StateRequest { round: usize },
    /// Tree-mode barrier token, worker → master: the worker holds the
    /// round state and has relayed it to its tree children. The master
    /// collects one per survivor before dispatching any work.
    StateAck { round: usize },
    /// Work order for lines `[first, first + n)`.
    Assign {
        id: u64,
        round: usize,
        first: usize,
        n: usize,
    },
    /// A chunk's result.
    Partial {
        id: u64,
        first: usize,
        data: P,
        bits: u64,
    },
    /// No more rounds; the worker exits.
    Finish,
}

impl<S: Send + Sync + 'static, P: Send + 'static> Wire for FtMsg<S, P> {
    fn size_bits(&self) -> u64 {
        match self {
            FtMsg::Round { bits, .. } => 96 + bits,
            // Round + epoch + algorithm words, plus 16 bits per
            // survivor — the piggybacked membership view.
            FtMsg::RoundStart { survivors, .. } => 136 + 16 * survivors.len() as u64,
            FtMsg::RoundState { bits, .. } => 160 + bits,
            FtMsg::StateRequest { .. } => 64,
            FtMsg::StateAck { .. } => 64,
            FtMsg::Assign { .. } => 192,
            FtMsg::Partial { bits, .. } => 128 + bits,
            FtMsg::Finish => 8,
        }
    }

    fn deep_copy_bits(&self) -> u64 {
        match self {
            // Round/RoundState carry their state behind an Arc; the
            // other small variants are fixed-size headers (the survivor
            // list is the only heap part of a RoundStart).
            FtMsg::Round { .. }
            | FtMsg::RoundState { .. }
            | FtMsg::StateRequest { .. }
            | FtMsg::StateAck { .. }
            | FtMsg::Assign { .. }
            | FtMsg::Finish => 0,
            FtMsg::RoundStart { survivors, .. } => 16 * survivors.len() as u64,
            FtMsg::Partial { .. } => self.size_bits(),
        }
    }
}

impl<S: Send + Sync + 'static, P: Send + 'static> Stamped for FtMsg<S, P> {
    fn stamp(&self) -> Option<u64> {
        match self {
            FtMsg::RoundStart { epoch, .. } | FtMsg::RoundState { epoch, .. } => Some(*epoch),
            _ => None,
        }
    }
}

/// The recovery mode of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Replan,
    SelfSched,
}

/// Runs `algo` with static speed-proportional batches, re-planning the
/// orphaned lines over the survivors when a worker is lost.
///
/// # Panics
/// Panics with the [`FtError`] message if the run is structurally
/// doomed (fewer than two processors, or the fault plan crashes the
/// rank-0 coordinator — detected at startup, before any rank spins up);
/// use [`try_run_replan`] for the structured error. Also panics if
/// every worker is lost mid-run.
pub fn run_replan<A>(engine: &Engine, algo: &A, opts: &FtOptions) -> FtRun<A::Output>
where
    A: ChunkedAlgo + Sync,
    A::Output: Send,
{
    match try_run_replan(engine, algo, opts) {
        Ok(run) => run,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`run_replan`]: rejects structurally doomed runs
/// (coordinator crash scheduled, too few ranks) with a structured
/// [`FtError`] before the engine starts.
pub fn try_run_replan<A>(
    engine: &Engine,
    algo: &A,
    opts: &FtOptions,
) -> Result<FtRun<A::Output>, FtError>
where
    A: ChunkedAlgo + Sync,
    A::Output: Send,
{
    run_mode(engine, algo, opts, Mode::Replan)
}

/// Runs `algo` with fixed-size chunk self-scheduling, re-queueing a
/// lost worker's in-flight chunk.
///
/// The chunk grid is fixed by [`FtOptions::chunk_lines`], so the output
/// is identical whichever workers compute which chunks — crashed or
/// not (asserted by the `fault_injection` suite).
///
/// # Panics
/// Panics with the [`FtError`] message if the run is structurally
/// doomed (fewer than two processors, or the fault plan crashes the
/// rank-0 coordinator — detected at startup, before any rank spins up);
/// use [`try_run_self_sched`] for the structured error. Also panics if
/// every worker is lost mid-run.
pub fn run_self_sched<A>(engine: &Engine, algo: &A, opts: &FtOptions) -> FtRun<A::Output>
where
    A: ChunkedAlgo + Sync,
    A::Output: Send,
{
    match try_run_self_sched(engine, algo, opts) {
        Ok(run) => run,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`run_self_sched`]: rejects structurally doomed
/// runs (coordinator crash scheduled, too few ranks) with a structured
/// [`FtError`] before the engine starts.
pub fn try_run_self_sched<A>(
    engine: &Engine,
    algo: &A,
    opts: &FtOptions,
) -> Result<FtRun<A::Output>, FtError>
where
    A: ChunkedAlgo + Sync,
    A::Output: Send,
{
    run_mode(engine, algo, opts, Mode::SelfSched)
}

fn run_mode<A>(
    engine: &Engine,
    algo: &A,
    opts: &FtOptions,
    mode: Mode,
) -> Result<FtRun<A::Output>, FtError>
where
    A: ChunkedAlgo + Sync,
    A::Output: Send,
{
    let num_procs = engine.platform().num_procs();
    if num_procs < 2 {
        return Err(FtError::TooFewRanks { num_procs });
    }
    // Fail fast on a doomed run: the coordinator has no stand-in, so a
    // planned rank-0 crash means no rank can ever produce the output —
    // catch it here instead of spinning up P threads that all die of
    // cascading PeerLost.
    if let Some(at) = engine.faults().crash_time(0) {
        return Err(FtError::MasterCrashScheduled { at });
    }
    let report = engine.run(|ctx: &mut Ctx<FtMsg<A::State, A::Partial>>| {
        if ctx.is_root() {
            let out = match mode {
                Mode::Replan => master_replan(ctx, algo, opts),
                Mode::SelfSched => master_self_sched(ctx, algo, opts),
            };
            Some(out)
        } else if tree_mode(opts) {
            worker_loop_tree(ctx, algo, opts.offload);
            None
        } else {
            worker_loop(ctx, algo, opts.offload);
            None
        }
    });
    let RunReport {
        platform_name,
        ledgers,
        mut results,
        failures,
        total_time,
        collectives,
        epochs,
        copies,
        offloads,
        ranks,
        profile,
    } = report;
    let (output, recoveries) = results
        .get_mut(0)
        .and_then(Option::take)
        .flatten()
        .unwrap_or_else(|| panic!("ft: master produced no result (failures: {failures:?})"));
    Ok(FtRun {
        output,
        recoveries,
        report: RunReport {
            platform_name,
            ledgers,
            results: Vec::new(),
            failures,
            total_time,
            collectives,
            epochs,
            copies,
            offloads,
            ranks,
            profile,
        },
    })
}

/// `true` when the options select the epoch-stamped survivor-tree state
/// distribution (any non-linear broadcast algorithm).
fn tree_mode(opts: &FtOptions) -> bool {
    opts.collectives.broadcast != CollAlgorithm::Linear
}

/// Worker side of both modes: obey `Round`/`Assign` orders from the
/// master until `Finish`. Chunk time is charged through the offload
/// `policy` — host or device per [`offload::decide`] — while the chunk
/// itself always runs the host kernel (bit-identical outputs).
fn worker_loop<A: ChunkedAlgo>(
    ctx: &mut Ctx<FtMsg<A::State, A::Partial>>,
    algo: &A,
    policy: OffloadPolicy,
) {
    let mut state: Option<Arc<A::State>> = None;
    // Round-constant scratch, rebuilt lazily on the first Assign of a
    // round and reused for every later chunk of that round.
    let mut scratch: Option<(usize, A::Scratch)> = None;
    loop {
        match ctx.recv(0) {
            FtMsg::Round { state: s, .. } => {
                state = Some(s);
                scratch = None;
            }
            FtMsg::Assign {
                id,
                round,
                first,
                n,
            } => {
                let st = state.as_deref().expect("ft: Assign before any Round");
                let cost = ChunkCost::new(algo.chunk_mflops(round, n), algo.chunk_bytes(round, n));
                offload::charge_chunk(ctx, policy, &cost);
                if scratch.as_ref().map(|&(r, _)| r) != Some(round) {
                    scratch = Some((round, algo.prepare(round, st)));
                }
                let (_, sc) = scratch.as_mut().expect("ft: scratch just prepared");
                let data = algo.run_chunk(round, st, sc, first, n);
                let bits = algo.partial_bits(&data);
                ctx.send(
                    0,
                    FtMsg::Partial {
                        id,
                        first,
                        data,
                        bits,
                    },
                );
            }
            FtMsg::Finish => break,
            _ => unreachable!("ft: linear-mode masters send Round, Assign and Finish only"),
        }
    }
}

/// Worker side of the tree mode: headers and work orders arrive on the
/// master channel; the round state arrives over the survivor tree (from
/// the tree parent), is relayed onward to the tree children, and is
/// recovered directly from the master when the parent dies before
/// forwarding. Every round closes its state distribution with a
/// `StateAck`, which the master collects from every survivor before
/// dispatching work (the barrier in the module docs) — so each receive
/// below blocks on a channel whose peer is bound to produce: the relay
/// parent sends the state or its failure marker, and the master (which
/// cannot crash — such plans are rejected at startup) answers rescues
/// during its ack sweep before sending anything else.
fn worker_loop_tree<A: ChunkedAlgo>(
    ctx: &mut Ctx<FtMsg<A::State, A::Partial>>,
    algo: &A,
    policy: OffloadPolicy,
) {
    let me = ctx.rank();
    let p = ctx.num_ranks();
    let mut scratch: Option<(usize, A::Scratch)> = None;
    // A header consumed early: the master opened the next round while
    // this worker (owing nothing) was still parked in its work loop.
    let mut pending: Option<(usize, u64, Vec<usize>, CollAlgorithm)> = None;
    'rounds: loop {
        let (round, epoch, survivors, algorithm) = match pending.take() {
            Some(h) => h,
            None => match ctx.recv(0) {
                FtMsg::RoundStart {
                    round,
                    epoch,
                    survivors,
                    algo: a,
                } => (round, epoch, survivors, a),
                FtMsg::Finish => return,
                _ => unreachable!("ft: a round opens with RoundStart or Finish"),
            },
        };
        let view = Membership::from_survivors(epoch, p, &survivors);
        let tree = coll::tree_over(ctx, algorithm, 0, &view);
        let parent = tree
            .parent(me)
            .expect("ft: a surviving worker has a tree parent");
        // ---- obtain the round state ---------------------------------
        let (state, bits) = if parent == 0 {
            // FIFO on the master channel: our RoundState was queued
            // right behind the header, before anything else.
            match ctx.recv(0) {
                FtMsg::RoundState {
                    epoch: e,
                    round: r,
                    state,
                    bits,
                } if e == epoch && r == round => (state, bits),
                _ => unreachable!("ft: master-children receive their state right after the header"),
            }
        } else {
            // The relay parent is bound to produce: the round's state,
            // or its failure marker. (An infinite deadline is safe — a
            // worker cannot clean-exit mid-round.)
            match ctx.recv_deadline(parent, f64::INFINITY) {
                Ok(FtMsg::RoundState {
                    epoch: e,
                    round: r,
                    state,
                    bits,
                }) if e == epoch && r == round => (state, bits),
                Ok(_) => unreachable!("ft: only the round's state relay flows down tree edges"),
                Err(RecvError::Failed(_)) => {
                    // Orphaned: the relay died before forwarding. The
                    // master's ack sweep owes us the rescue before
                    // anything else on this channel.
                    ctx.send(0, FtMsg::StateRequest { round });
                    match ctx.recv(0) {
                        FtMsg::RoundState {
                            epoch: e,
                            round: r,
                            state,
                            bits,
                        } if e == epoch && r == round => (state, bits),
                        _ => unreachable!("ft: a StateRequest is answered with the round state"),
                    }
                }
                Err(RecvError::Timeout { .. }) => {
                    unreachable!("ft: a relay parent cannot clean-exit mid-round")
                }
            }
        };
        // ---- relay down the survivor tree, then ack -----------------
        for &c in tree.children_bcast(me) {
            ctx.send(
                c,
                FtMsg::RoundState {
                    epoch,
                    round,
                    state: Arc::clone(&state),
                    bits,
                },
            );
        }
        ctx.send(0, FtMsg::StateAck { round });
        // ---- the work loop ------------------------------------------
        loop {
            match ctx.recv(0) {
                FtMsg::Assign {
                    id,
                    round: r,
                    first,
                    n,
                } => {
                    debug_assert_eq!(r, round);
                    let cost =
                        ChunkCost::new(algo.chunk_mflops(round, n), algo.chunk_bytes(round, n));
                    offload::charge_chunk(ctx, policy, &cost);
                    if scratch.as_ref().map(|&(r, _)| r) != Some(round) {
                        scratch = Some((round, algo.prepare(round, &state)));
                    }
                    let (_, sc) = scratch.as_mut().expect("ft: scratch just prepared");
                    let data = algo.run_chunk(round, &state, sc, first, n);
                    let pbits = algo.partial_bits(&data);
                    ctx.send(
                        0,
                        FtMsg::Partial {
                            id,
                            first,
                            data,
                            bits: pbits,
                        },
                    );
                }
                FtMsg::RoundStart {
                    round: r,
                    epoch: e,
                    survivors: s,
                    algo: a,
                } => {
                    pending = Some((r, e, s, a));
                    continue 'rounds;
                }
                FtMsg::Finish => return,
                _ => {
                    unreachable!("ft: masters send Assign, RoundStart or Finish after the barrier")
                }
            }
        }
    }
}

/// Splits lines `[first, first + n)` over the surviving workers in
/// proportion to speed; returns `(first, n, worker)` slices.
fn split_lines(
    first: usize,
    n: usize,
    alive: &[bool],
    speeds: &[f64],
) -> Vec<(usize, usize, usize)> {
    let workers: Vec<usize> = (1..alive.len()).filter(|&w| alive[w]).collect();
    assert!(!workers.is_empty(), "ft: all workers lost");
    let total: f64 = workers.iter().map(|&w| speeds[w]).sum();
    let fractions: Vec<f64> = workers.iter().map(|&w| speeds[w] / total).collect();
    let rows = apportion_rows(&fractions, n);
    let mut out = Vec::new();
    let mut f = first;
    for (i, &w) in workers.iter().enumerate() {
        if rows[i] > 0 {
            out.push((f, rows[i], w));
            f += rows[i];
        }
    }
    out
}

/// Broadcasts the round-start state to every surviving worker — the
/// linear (default) mode's master-rooted [`simnet::coll::fanout_with`].
/// Workers just `recv(0)`, so no membership agreement is needed; the
/// price is P−1 full-payload sends from the master every round. Tree
/// mode ([`start_round_tree`]) shares that cost across the survivor
/// tree via the membership/epoch protocol.
fn broadcast_state<S, P>(ctx: &mut Ctx<FtMsg<S, P>>, alive: &[bool], state: &S, bits: u64)
where
    S: Clone + Send + Sync + 'static,
    P: Send + 'static,
{
    let targets: Vec<usize> = (1..alive.len()).filter(|&w| alive[w]).collect();
    // One deep copy total (the `Arc` construction); every per-worker
    // send then shares it with a refcount bump.
    let shared = Arc::new(state.clone());
    simnet::coll::fanout_with(ctx, &targets, || FtMsg::Round {
        state: Arc::clone(&shared),
        bits,
    });
}

/// Normalizes a broadcast algorithm for the ft tree mode: pipelined
/// chunk streaming composes poorly with mid-round rescue (every chunk is
/// a full payload with partial charge), so it falls back to the
/// segment-hierarchical tree it shares.
fn normalize_tree_algo(algorithm: CollAlgorithm) -> CollAlgorithm {
    match algorithm {
        CollAlgorithm::PipelinedChunked => CollAlgorithm::SegmentHierarchical,
        a => a,
    }
}

/// Opens a tree-mode round and runs it to the state-distribution
/// barrier: resolves the schedule over the current survivor view
/// (logging the [`simnet::CollectiveChoice`] on rank 0), sends the
/// epoch-stamped header to every surviving worker directly, ships the
/// state to the master's tree children, then sweeps the survivors in
/// rank order for one `StateAck` each — answering `StateRequest`s from
/// orphaned subtrees from the round's shared `Arc` (under the epoch
/// frozen at round start) and absorbing failure markers (epoch bump +
/// zero-line recovery record, since no work is out yet) along the way.
/// When it returns, every remaining live worker holds the round state,
/// so the dispatch/collection phase can block exactly like the linear
/// mode: only on workers that owe it a `Partial`.
///
/// The sweep cannot deadlock: every tree shape parents a member with a
/// lower-ranked member, and the sweep ascends — while the master waits
/// on `w`, everything `w`'s relay chain needs is either already settled
/// (an ancestor's ack or failure) or arrives on the very channel being
/// watched (`w`'s own rescue request).
#[allow(clippy::too_many_arguments)] // two call sites; a struct would just rename the fields
fn start_round_tree<S, P>(
    ctx: &mut Ctx<FtMsg<S, P>>,
    view: &mut Membership,
    alive: &mut [bool],
    recoveries: &mut Vec<Recovery>,
    cfg: &CollectiveConfig,
    round: usize,
    state: &S,
    bits: u64,
) where
    S: Clone + Send + Sync + 'static,
    P: Send + 'static,
{
    let requested = normalize_tree_algo(cfg.broadcast);
    let resolved = coll::resolve_over(
        ctx,
        CollOp::Broadcast,
        requested,
        0,
        view,
        bits,
        cfg.pipeline_chunks,
    );
    let algorithm = normalize_tree_algo(resolved);
    let epoch = view.epoch();
    let survivors = view.survivors();
    for &w in survivors.iter().filter(|&&w| w != 0) {
        ctx.send(
            w,
            FtMsg::RoundStart {
                round,
                epoch,
                survivors: survivors.clone(),
                algo: algorithm,
            },
        );
    }
    let tree = coll::tree_over(ctx, algorithm, 0, view);
    let shared = Arc::new(state.clone());
    for &c in tree.children_bcast(0) {
        ctx.send(
            c,
            FtMsg::RoundState {
                epoch,
                round,
                state: Arc::clone(&shared),
                bits,
            },
        );
    }
    // ---- the ack sweep (state-distribution barrier) -----------------
    for &w in survivors.iter().filter(|&&w| w != 0) {
        loop {
            match ctx.recv_deadline(w, f64::INFINITY) {
                Ok(FtMsg::StateAck { round: r }) => {
                    debug_assert_eq!(r, round);
                    break;
                }
                Ok(FtMsg::StateRequest { round: r }) => {
                    debug_assert_eq!(r, round);
                    ctx.send(
                        w,
                        FtMsg::RoundState {
                            epoch,
                            round,
                            state: Arc::clone(&shared),
                            bits,
                        },
                    );
                }
                Ok(_) => unreachable!("ft: pre-barrier workers send StateAck or StateRequest only"),
                Err(RecvError::Failed(f)) => {
                    let detected_at = ctx.elapsed();
                    alive[w] = false;
                    if view.observe_failure(&f) {
                        ctx.mark_epoch(view.epoch(), w, view.num_survivors());
                    }
                    recoveries.push(Recovery {
                        rank: w,
                        at: f.at,
                        detected_at,
                        lines: 0,
                        round,
                    });
                    // The recovery span covers crash → detection: the
                    // window the master spent waiting on a dead rank.
                    ctx.mark_recovery(f.at, w);
                    break;
                }
                Err(RecvError::Timeout { .. }) => {
                    unreachable!("ft: a worker cannot clean-exit before the barrier")
                }
            }
        }
    }
}

/// A dispatched batch of the re-planning master.
struct Batch {
    id: u64,
    worker: usize,
    first: usize,
    n: usize,
    deadline: f64,
    /// Analytic worst-case completion: the κ-padded estimate stretched
    /// through every active slowdown window of the worker
    /// ([`simnet::FaultPlan::dilate`]), plus one margin. A live worker —
    /// however slowed — finishes by this instant, so deadline
    /// extensions never pass it.
    cap: f64,
    done: bool,
}

fn master_replan<A: ChunkedAlgo>(
    ctx: &mut Ctx<FtMsg<A::State, A::Partial>>,
    algo: &A,
    opts: &FtOptions,
) -> (A::Output, Vec<Recovery>) {
    let p = ctx.num_ranks();
    let tree = tree_mode(opts);
    let mut alive = vec![true; p];
    let mut view = Membership::new(p);
    let mut recoveries: Vec<Recovery> = Vec::new();
    let mut next_id: u64 = 0;
    let mut state = algo.initial_state();

    for round in 0..algo.rounds() {
        let state_bits = algo.state_bits(&state);
        // Tree mode distributes the state down the survivor tree and
        // runs to the ack barrier (possibly shrinking `alive`/`view`);
        // after either branch, every live worker holds the state.
        if tree {
            start_round_tree(
                ctx,
                &mut view,
                &mut alive,
                &mut recoveries,
                &opts.collectives,
                round,
                &state,
                state_bits,
            );
        } else {
            broadcast_state(ctx, &alive, &state, state_bits);
        }

        // Per-round *effective* speeds: with offloading enabled a
        // device-bearing node is proportionally faster for this round's
        // kernel (launch + transfers amortized over an even-split
        // batch), so the WEA apportionment hands it more lines. With
        // `Never` these are exactly `proc.speed()` — historic batches.
        let rep_lines = algo.lines().div_ceil((p - 1).max(1)).max(1);
        let rep = ChunkCost::new(
            algo.chunk_mflops(round, rep_lines),
            algo.chunk_bytes(round, rep_lines),
        );
        let speeds = offload::effective_speeds(ctx.platform(), opts.offload, &rep);

        // One speed-proportional batch per surviving worker (the WEA
        // apportionment), each with an analytic completion deadline.
        let mut ready_at = vec![0.0f64; p];
        let mut batches: Vec<Batch> = Vec::new();
        let mut dispatch = |ctx: &mut Ctx<FtMsg<A::State, A::Partial>>,
                            batches: &mut Vec<Batch>,
                            ready_at: &mut Vec<f64>,
                            first: usize,
                            n: usize,
                            w: usize| {
            let id = next_id;
            next_id += 1;
            ctx.send(
                w,
                FtMsg::Assign {
                    id,
                    round,
                    first,
                    n,
                },
            );
            // The batch's analytic completion time — the exact seconds
            // the worker's `charge_chunk` will charge (host or device
            // per the shared `decide`), so κ-padded deadlines stay
            // meaningful under every offload policy.
            let cost = ChunkCost::new(algo.chunk_mflops(round, n), algo.chunk_bytes(round, n));
            let est = offload::chunk_secs(ctx.platform().proc(w), opts.offload, &cost);
            let start = ready_at[w].max(ctx.elapsed());
            ready_at[w] = start + est * opts.failure_threshold;
            let cap = ctx
                .fault_plan()
                .dilate(w, start, est * opts.failure_threshold)
                + opts.margin_s;
            batches.push(Batch {
                id,
                worker: w,
                first,
                n,
                deadline: ready_at[w] + opts.margin_s,
                cap,
                done: false,
            });
        };
        for (first, n, w) in split_lines(0, algo.lines(), &alive, &speeds) {
            dispatch(ctx, &mut batches, &mut ready_at, first, n, w);
        }

        let mut partials: Vec<(usize, A::Partial)> = Vec::new();
        let mut i = 0;
        while i < batches.len() {
            if batches[i].done {
                i += 1;
                continue;
            }
            let w = batches[i].worker;
            let now = ctx.elapsed();
            let deadline = batches[i].deadline.max(now);
            match ctx.recv_deadline(w, deadline) {
                Ok(FtMsg::Partial {
                    id, first, data, ..
                }) => {
                    // Per-pair FIFO: this is w's earliest outstanding
                    // batch — usually batch i itself, but match by id.
                    if let Some(b) = batches.iter_mut().find(|b| b.id == id && !b.done) {
                        b.done = true;
                        partials.push((first, data));
                    }
                }
                Ok(_) => unreachable!("ft: workers send Partial only after the barrier"),
                Err(RecvError::Timeout { .. }) => {
                    // Late ≠ dead: only a failure marker is
                    // authoritative. Extend — but no further than the
                    // analytic worst case: past `cap` even a worker
                    // slowed by every active window would have
                    // delivered, so stop stepping the clock margin by
                    // margin and block for the authoritative outcome
                    // (the Partial or the failure marker).
                    let extended = ctx.elapsed() + opts.margin_s;
                    batches[i].deadline = if extended < batches[i].cap {
                        extended
                    } else {
                        f64::INFINITY
                    };
                }
                Err(RecvError::Failed(f)) => {
                    let detected_at = ctx.elapsed();
                    alive[w] = false;
                    if view.observe_failure(&f) {
                        ctx.mark_epoch(view.epoch(), w, view.num_survivors());
                    }
                    let orphans: Vec<(usize, usize)> = batches
                        .iter_mut()
                        .filter(|b| b.worker == w && !b.done)
                        .map(|b| {
                            b.done = true;
                            (b.first, b.n)
                        })
                        .collect();
                    let lost_lines: usize = orphans.iter().map(|&(_, n)| n).sum();
                    recoveries.push(Recovery {
                        rank: w,
                        at: f.at,
                        detected_at,
                        lines: lost_lines,
                        round,
                    });
                    // Span from the crash instant: the wait on the dead
                    // rank is the recovery cost the profiler attributes.
                    ctx.mark_recovery(f.at, w);
                    for (of, on) in orphans {
                        for (nf, nn, nw) in split_lines(of, on, &alive, &speeds) {
                            dispatch(ctx, &mut batches, &mut ready_at, nf, nn, nw);
                        }
                    }
                }
            }
        }

        partials.sort_by_key(|&(first, _)| first);
        let (next, mflops) = algo.reduce(round, state, partials);
        ctx.compute_seq(mflops);
        state = next;
    }

    for w in 1..p {
        // Dead workers drop the message silently.
        ctx.send(w, FtMsg::Finish);
    }
    (algo.finish(state), recoveries)
}

fn master_self_sched<A: ChunkedAlgo>(
    ctx: &mut Ctx<FtMsg<A::State, A::Partial>>,
    algo: &A,
    opts: &FtOptions,
) -> (A::Output, Vec<Recovery>) {
    let p = ctx.num_ranks();
    let tree = tree_mode(opts);
    let mut alive = vec![true; p];
    let mut view = Membership::new(p);
    let mut recoveries: Vec<Recovery> = Vec::new();
    let mut next_id: u64 = 0;
    let mut state = algo.initial_state();
    let chunk = opts.chunk_lines.max(1);

    for round in 0..algo.rounds() {
        let state_bits = algo.state_bits(&state);
        // Tree mode distributes the state down the survivor tree and
        // runs to the ack barrier (possibly shrinking `alive`/`view`);
        // after either branch, every live worker holds the state.
        if tree {
            start_round_tree(
                ctx,
                &mut view,
                &mut alive,
                &mut recoveries,
                &opts.collectives,
                round,
                &state,
                state_bits,
            );
        } else {
            broadcast_state(ctx, &alive, &state, state_bits);
        }

        // The FIXED chunk grid: output does not depend on which worker
        // computes which chunk, so crashes cannot change the result.
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        let mut first = 0;
        while first < algo.lines() {
            let n = chunk.min(algo.lines() - first);
            queue.push_back((first, n));
            first += n;
        }
        let total_chunks = queue.len();
        let mut done = 0usize;
        let mut outstanding: Vec<Option<(u64, usize, usize)>> = vec![None; p];
        let mut partials: Vec<(usize, A::Partial)> = Vec::new();

        while done < total_chunks {
            assert!(
                (1..p).any(|w| alive[w]),
                "ft: all workers lost in round {round}"
            );
            // Hand every free surviving worker the next queued chunk.
            for w in 1..p {
                if alive[w] && outstanding[w].is_none() {
                    if let Some((cf, cn)) = queue.pop_front() {
                        let id = next_id;
                        next_id += 1;
                        ctx.send(
                            w,
                            FtMsg::Assign {
                                id,
                                round,
                                first: cf,
                                n: cn,
                            },
                        );
                        outstanding[w] = Some((id, cf, cn));
                    }
                }
            }
            // Poll workers with an outstanding chunk in rank order at
            // the current virtual instant (a past deadline never
            // advances time). A worker that owes nothing is never
            // polled — its channel may stay silent until the next
            // round, and a receive would block on it for good.
            let now = ctx.elapsed();
            let mut productive = false;
            for w in 1..p {
                if !alive[w] || outstanding[w].is_none() {
                    continue;
                }
                match ctx.recv_deadline(w, now) {
                    Ok(FtMsg::Partial {
                        id: pid,
                        first: pf,
                        data,
                        ..
                    }) => {
                        if outstanding[w].map(|(id, _, _)| id) == Some(pid) {
                            outstanding[w] = None;
                            partials.push((pf, data));
                            done += 1;
                            productive = true;
                        }
                    }
                    Ok(_) => unreachable!("ft: workers send Partial only after the barrier"),
                    Err(RecvError::Timeout { .. }) => {}
                    Err(RecvError::Failed(f)) => {
                        let detected_at = ctx.elapsed();
                        alive[w] = false;
                        if view.observe_failure(&f) {
                            ctx.mark_epoch(view.epoch(), w, view.num_survivors());
                        }
                        // The in-flight chunk (if any) goes back on the
                        // queue front — the next free worker picks the
                        // orphaned chunk up first.
                        let lost = match outstanding[w].take() {
                            Some((_, cf, cn)) => {
                                queue.push_front((cf, cn));
                                cn
                            }
                            None => 0,
                        };
                        recoveries.push(Recovery {
                            rank: w,
                            at: f.at,
                            detected_at,
                            lines: lost,
                            round,
                        });
                        // Span from the crash instant (see above).
                        ctx.mark_recovery(f.at, w);
                        productive = true;
                    }
                }
            }
            if !productive && done < total_chunks {
                ctx.wait_until(ctx.elapsed() + opts.poll_interval_s);
            }
        }

        partials.sort_by_key(|&(first, _)| first);
        let (next, mflops) = algo.reduce(round, state, partials);
        ctx.compute_seq(mflops);
        state = next;
    }

    for w in 1..p {
        ctx.send(w, FtMsg::Finish);
    }
    (algo.finish(state), recoveries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoParams;
    use crate::sched::AtdcaChunks;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::{presets, FailureCause, FaultPlan};

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    fn params() -> AlgoParams {
        AlgoParams {
            num_targets: 6,
            ..Default::default()
        }
    }

    fn coords(targets: &[crate::seq::DetectedTarget]) -> Vec<(usize, usize)> {
        targets.iter().map(|t| (t.line, t.sample)).collect()
    }

    #[test]
    fn self_sched_fault_free_matches_sequential() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous());
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run = run_self_sched(&engine, &algo, &FtOptions::default());
        assert_eq!(coords(&run.output), coords(&seq.result));
        assert!(run.recoveries.is_empty());
        assert!(run.report.ok());
    }

    #[test]
    fn replan_fault_free_matches_sequential() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous());
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run = run_replan(&engine, &algo, &FtOptions::default());
        assert_eq!(coords(&run.output), coords(&seq.result));
        assert!(run.recoveries.is_empty());
    }

    #[test]
    fn self_sched_recovers_from_mid_run_crash() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous())
            .with_faults(FaultPlan::new().crash(3, 0.05));
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run = run_self_sched(&engine, &algo, &FtOptions::default());
        assert_eq!(coords(&run.output), coords(&seq.result));
        assert_eq!(run.recoveries.len(), 1);
        assert_eq!(run.recoveries[0].rank, 3);
        assert!(run.recoveries[0].detected_at >= run.recoveries[0].at);
        let f = run.report.failure_of(3).expect("failure recorded");
        assert_eq!(f.cause, FailureCause::Crash);
    }

    #[test]
    fn replan_recovers_from_mid_run_crash() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous())
            .with_faults(FaultPlan::new().crash(5, 0.05));
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run = run_replan(&engine, &algo, &FtOptions::default());
        assert_eq!(coords(&run.output), coords(&seq.result));
        assert_eq!(run.recoveries.len(), 1);
        assert_eq!(run.recoveries[0].rank, 5);
        assert!(run.recoveries[0].lines > 0);
    }

    #[test]
    fn replan_survives_heavy_slowdown_without_unbounded_extension() {
        // A worker slowed 60× for the whole run is late, not dead: the
        // master must neither declare it failed nor stretch the round
        // margin-by-margin forever. The analytic cap (dilate of the
        // κ-padded estimate) bounds the stepping; past it the master
        // blocks for the authoritative outcome.
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run_once = || {
            let engine = Engine::new(presets::fully_heterogeneous()).with_faults(
                FaultPlan::new()
                    .slowdown(2, 0.0, 1e6, 60.0)
                    .slowdown(5, 0.0, 1e6, 25.0),
            );
            run_replan(&engine, &algo, &FtOptions::default())
        };
        let run = run_once();
        assert_eq!(coords(&run.output), coords(&seq.result));
        assert!(run.recoveries.is_empty(), "slowdown must not be a failure");
        assert!(run.report.ok());
        // The round ends when the slowed stragglers deliver — within
        // the dilated analytic envelope, not margin-quantised past it.
        let rerun = run_once();
        assert_eq!(run.report, rerun.report);
    }

    #[test]
    fn master_crash_plan_is_rejected_at_startup() {
        let s = scene();
        let p = params();
        let algo = AtdcaChunks::new(&s.cube, &p);
        let engine =
            Engine::new(presets::fully_heterogeneous()).with_faults(FaultPlan::new().crash(0, 0.1));
        let err = try_run_replan(&engine, &algo, &FtOptions::default())
            .expect_err("coordinator crash must be rejected");
        assert_eq!(err, FtError::MasterCrashScheduled { at: 0.1 });
        assert!(err.to_string().contains("rank 0"));
        let err = try_run_self_sched(&engine, &algo, &FtOptions::default())
            .expect_err("coordinator crash must be rejected");
        assert!(matches!(err, FtError::MasterCrashScheduled { .. }));
    }

    #[test]
    fn master_crash_plan_panics_with_structured_message() {
        let s = scene();
        let p = params();
        let algo = AtdcaChunks::new(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous())
            .with_faults(FaultPlan::new().crash(0, 0.25));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = run_self_sched(&engine, &algo, &FtOptions::default());
        }))
        .expect_err("must panic");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("coordinator"), "got: {msg}");
    }

    fn tree_opts() -> FtOptions {
        FtOptions {
            collectives: CollectiveConfig::uniform(CollAlgorithm::SegmentHierarchical),
            ..FtOptions::default()
        }
    }

    #[test]
    fn tree_mode_fault_free_matches_sequential() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous());
        let algo = AtdcaChunks::new(&s.cube, &p);
        for run in [
            run_replan(&engine, &algo, &tree_opts()),
            run_self_sched(&engine, &algo, &tree_opts()),
        ] {
            assert_eq!(coords(&run.output), coords(&seq.result));
            assert!(run.recoveries.is_empty());
            assert!(run.report.ok());
            assert!(run.report.epochs.is_empty(), "no failures, no epoch bumps");
            // The master resolves (and logs) one broadcast choice per round.
            assert_eq!(
                run.report.choices_of(simnet::CollOp::Broadcast).count(),
                algo.rounds()
            );
        }
    }

    #[test]
    fn tree_mode_auto_resolves_against_the_cost_model() {
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let engine = Engine::new(presets::fully_heterogeneous());
        let algo = AtdcaChunks::new(&s.cube, &p);
        let opts = FtOptions {
            collectives: CollectiveConfig::uniform(CollAlgorithm::Auto),
            ..FtOptions::default()
        };
        let run = run_replan(&engine, &algo, &opts);
        assert_eq!(coords(&run.output), coords(&seq.result));
        for c in run.report.choices_of(simnet::CollOp::Broadcast) {
            assert_eq!(c.requested, CollAlgorithm::Auto);
            assert_ne!(c.algorithm, CollAlgorithm::Auto, "must resolve concretely");
        }
    }

    #[test]
    fn tree_mode_recovers_from_interior_relay_crash() {
        // Rank 4 leads segment 1 in the segment-hierarchical tree and
        // relays the round state to ranks 5..=7. Crashing it before it
        // can forward forces the orphan rescue path (StateRequest →
        // direct RoundState) and, from the next round on, a survivor
        // tree that routes around it under a bumped epoch.
        let s = scene();
        let p = params();
        let seq = crate::seq::atdca(&s.cube, &p);
        let algo = AtdcaChunks::new(&s.cube, &p);
        for mode in [Mode::Replan, Mode::SelfSched] {
            let engine = Engine::new(presets::fully_heterogeneous())
                .with_faults(FaultPlan::new().crash(4, 1e-4));
            let run = match mode {
                Mode::Replan => run_replan(&engine, &algo, &tree_opts()),
                Mode::SelfSched => run_self_sched(&engine, &algo, &tree_opts()),
            };
            assert_eq!(coords(&run.output), coords(&seq.result), "{mode:?}");
            assert_eq!(run.recoveries.len(), 1, "{mode:?}");
            assert_eq!(run.recoveries[0].rank, 4);
            assert_eq!(run.report.epochs.len(), 1, "{mode:?}");
            assert_eq!(run.report.epochs[0].epoch, 1);
            assert_eq!(run.report.epochs[0].failed, 4);
            assert_eq!(run.report.epochs[0].survivors, 15);
        }
    }

    #[test]
    fn tree_mode_crash_plans_are_bit_deterministic() {
        let s = scene();
        let p = params();
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run_once = || {
            let engine = Engine::new(presets::fully_heterogeneous())
                .with_faults(FaultPlan::new().crash(4, 1e-4).crash(10, 0.02));
            run_replan(&engine, &algo, &tree_opts())
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.report, b.report);
        assert_eq!(coords(&a.output), coords(&b.output));
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.report.epochs.len(), 2);
    }

    #[test]
    fn identical_fault_plans_are_bit_deterministic() {
        let s = scene();
        let p = params();
        let algo = AtdcaChunks::new(&s.cube, &p);
        let run_once = || {
            let engine = Engine::new(presets::fully_heterogeneous())
                .with_faults(FaultPlan::new().crash(2, 0.03).slowdown(4, 0.0, 0.2, 3.0));
            run_self_sched(&engine, &algo, &FtOptions::default())
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.report, b.report);
        assert_eq!(coords(&a.output), coords(&b.output));
        assert_eq!(a.recoveries, b.recoveries);
    }
}
