//! # hetero-hsi — heterogeneity-aware parallel hyperspectral algorithms
//!
//! The core contribution of Plaza, *"Heterogeneous Parallel Computing in
//! Remote Sensing Applications"* (CLUSTER 2006), reimplemented on the
//! `simnet` virtual-time cluster simulator:
//!
//! * [`wea`] — the **workload estimation algorithm** (Algorithm 1):
//!   heterogeneity-aware workload fractions `αᵢ`, the homogeneous
//!   variant, per-node memory upper bounds with recursive
//!   redistribution, and the link-aware generalisation implied by the
//!   paper's graph model `G = (P, E)`.
//! * [`par::atdca`] — Hetero-ATDCA (Algorithm 2): iterative target
//!   detection by orthogonal subspace projection.
//! * [`par::ufcls`] — Hetero-UFCLS (Algorithm 3): unsupervised fully
//!   constrained least-squares target generation.
//! * [`par::pct`] — Hetero-PCT (Algorithm 4): principal-component
//!   classification with a parallel covariance step.
//! * [`par::morph`] — Hetero-MORPH (Algorithm 5): spatial/spectral
//!   morphological classification with overlap borders.
//!
//! Every parallel algorithm runs in two flavours selected by
//! [`config::PartitionStrategy`]: **Heterogeneous** (WEA fractions) or
//! **Homogeneous** (equal fractions) — the paper's Hetero-X/Homo-X
//! pairs. Sequential reference implementations live in [`seq`] and are
//! shared, kernel-for-kernel, with the workers ([`kernels`]), so the
//! parallel algorithms produce *identical* analysis results to the
//! sequential ones on every platform (asserted by the test suite).
//!
//! Virtual-time costs are charged from the analytic per-kernel megaflop
//! formulas in [`flops`]; see DESIGN.md for the fidelity argument.
//!
//! Fault tolerance (the paper's §5 "future perspectives") lives in two
//! modules: [`sched`] generalises chunked self-scheduling behind the
//! [`sched::ChunkedAlgo`] trait for all four algorithms, and [`ft`]
//! provides fault-tolerant master/worker drivers — static WEA partitions
//! with re-planning on worker loss, and chunked self-scheduling with
//! chunk re-queueing — over `simnet`'s deterministic fault plans.
//!
//! Accelerator offload (the paper's "specialized hardware" outlook)
//! lives in [`offload`]: per-chunk host-vs-device decisions
//! ([`offload::OffloadPolicy`] on [`config::RunOptions`] /
//! [`ft::FtOptions`]) driven by the analytic cost model over
//! `simnet::accel` device specs, with WEA partitioning by *effective*
//! node speed — outputs stay bit-identical across policies.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::redundant_clone))]

pub mod config;
pub mod digest;
pub mod dynamic;
pub mod eval;
pub mod flops;
pub mod framework;
pub mod ft;
pub mod kernels;
pub mod msg;
pub mod offload;
pub mod optimality;
pub mod par;
pub mod sched;
pub mod seq;
pub mod vd;
pub mod wea;

pub use config::{AlgoParams, PartitionStrategy, RunOptions};
pub use digest::OutputDigest;
pub use framework::ParallelRun;
pub use ft::{FtError, FtOptions, FtRun, Recovery};
pub use offload::{ChunkCost, ChunkTarget, OffloadPolicy};
pub use sched::{ChunkPolicy, ChunkedAlgo};
