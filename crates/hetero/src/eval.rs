//! Evaluation against ground truth — the paper's accuracy metrics.
//!
//! * [`target_table`] — Table 3: for each known thermal hot spot, the
//!   SAD between the scene pixel at the ground-truth position and the
//!   most similar detected target (0 = perfect detection).
//! * [`debris_truth`] / classification scoring — Table 4: per-class and
//!   overall accuracy over the seven dust/debris classes.

use crate::seq::DetectedTarget;
use hsi_cube::labels::{score, AccuracyReport, LabelImage};
use hsi_cube::metrics::sad;
use hsi_cube::synth::SyntheticScene;

/// One row of the paper's Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetMatch {
    /// Hot-spot designation ('A'–'G').
    pub name: char,
    /// Fire temperature in °F.
    pub temp_f: f64,
    /// SAD between the ground-truth pixel and the closest detected
    /// target (smaller is better; the paper prints three decimals).
    pub sad: f64,
}

/// Builds the Table 3 rows: each ground-truth hot spot matched against
/// the most spectrally similar detected target.
pub fn target_table(scene: &SyntheticScene, detected: &[DetectedTarget]) -> Vec<TargetMatch> {
    scene
        .targets
        .iter()
        .map(|t| {
            let truth_px = scene.cube.pixel(t.coord.0, t.coord.1);
            let best = detected
                .iter()
                .map(|d| sad(&d.spectrum, truth_px))
                .fold(f64::INFINITY, f64::min);
            TargetMatch {
                name: t.name,
                temp_f: t.temp_f,
                sad: if best.is_finite() { best } else { f64::NAN },
            }
        })
        .collect()
}

/// Ground truth restricted to the debris classes (labels `0..7`):
/// background pixels become [`hsi_cube::labels::UNLABELED`] so Table 4 scores only the
/// classes the USGS map covers.
pub fn debris_truth(scene: &SyntheticScene, num_debris: usize) -> LabelImage {
    let mut out = LabelImage::unlabeled(scene.truth.lines(), scene.truth.samples());
    for line in 0..scene.truth.lines() {
        for sample in 0..scene.truth.samples() {
            let l = scene.truth.get(line, sample);
            if (l as usize) < num_debris {
                out.set(line, sample, l);
            }
        }
    }
    out
}

/// Scores a classification against the debris-only ground truth,
/// producing the paper's Table 4 numbers.
pub fn debris_accuracy(
    scene: &SyntheticScene,
    predicted: &LabelImage,
    num_debris: usize,
) -> AccuracyReport {
    score(predicted, &debris_truth(scene, num_debris))
}

/// Returns `(class name, recall %)` rows in Table 4 order, padding
/// classes that never appear in the truth map with `NaN`.
pub fn table4_rows(
    scene: &SyntheticScene,
    report: &AccuracyReport,
    num_debris: usize,
) -> Vec<(String, f64)> {
    (0..num_debris)
        .map(|class| {
            let name = scene
                .class_names
                .get(class)
                .copied()
                .unwrap_or("unknown")
                .to_string();
            let acc = report
                .per_class
                .iter()
                .find(|(c, _)| *c as usize == class)
                .map(|&(_, a)| a)
                .unwrap_or(f64::NAN);
            (name, acc)
        })
        .collect()
}

/// Convenience: fraction of hot spots whose best SAD match is below
/// `threshold` (a scalar summary of Table 3).
pub fn detection_rate(matches: &[TargetMatch], threshold: f64) -> f64 {
    if matches.is_empty() {
        return 0.0;
    }
    let hits = matches.iter().filter(|m| m.sad < threshold).count();
    hits as f64 / matches.len() as f64
}

/// Re-exported for callers that need the raw metric.
pub use hsi_cube::labels::score as score_labels;

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::labels::UNLABELED;
    use hsi_cube::synth::{wtc_scene, WtcConfig};

    fn scene() -> SyntheticScene {
        wtc_scene(WtcConfig::tiny())
    }

    #[test]
    fn perfect_detection_scores_near_zero() {
        let s = scene();
        // "Detect" exactly the ground-truth pixels.
        let detected: Vec<DetectedTarget> = s
            .targets
            .iter()
            .map(|t| DetectedTarget {
                line: t.coord.0,
                sample: t.coord.1,
                spectrum: s.cube.pixel(t.coord.0, t.coord.1).to_vec(),
            })
            .collect();
        let table = target_table(&s, &detected);
        assert_eq!(table.len(), 7);
        for row in &table {
            assert!(row.sad < 1e-6, "{}: {}", row.name, row.sad);
        }
        assert_eq!(detection_rate(&table, 0.01), 1.0);
    }

    #[test]
    fn missing_detection_scores_high() {
        let s = scene();
        // Detect only background pixels far from any hot spot.
        let detected = vec![DetectedTarget {
            line: 0,
            sample: 0,
            spectrum: s.cube.pixel(0, 0).to_vec(),
        }];
        let table = target_table(&s, &detected);
        // The hottest target (G) is strongly thermal: a background
        // detection cannot match it.
        let g = table.iter().find(|m| m.name == 'G').unwrap();
        assert!(g.sad > 0.1, "G matched too well: {}", g.sad);
        assert!(detection_rate(&table, 0.05) < 1.0);
    }

    #[test]
    fn debris_truth_masks_background() {
        let s = scene();
        let truth = debris_truth(&s, 7);
        let mut masked = 0;
        let mut kept = 0;
        for line in 0..truth.lines() {
            for sample in 0..truth.samples() {
                let orig = s.truth.get(line, sample);
                let new = truth.get(line, sample);
                if (orig as usize) < 7 {
                    assert_eq!(new, orig);
                    kept += 1;
                } else {
                    assert_eq!(new, UNLABELED);
                    masked += 1;
                }
            }
        }
        assert!(kept > 0 && masked > 0);
    }

    #[test]
    fn detection_rate_empty_is_zero() {
        assert_eq!(detection_rate(&[], 0.1), 0.0);
    }

    #[test]
    fn table4_rows_have_names_in_order() {
        let s = scene();
        // Predict the truth itself: 100% everywhere it counts.
        let report = debris_accuracy(&s, &s.truth, 7);
        let rows = table4_rows(&s, &report, 7);
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].0, "Concrete (WTC01-37B)");
        assert_eq!(rows[6].0, "Gypsum wall board");
        for (name, acc) in &rows {
            assert!(acc.is_nan() || *acc == 100.0, "{name}: {acc}");
        }
        assert_eq!(report.overall, 100.0);
    }
}
