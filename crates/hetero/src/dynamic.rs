//! Dynamic (demand-driven) load balancing — the paper's future-work
//! direction.
//!
//! WEA is a *static* scheduler: it fixes the partition before the run
//! from the platform's **nominal** cycle-times. The paper's introduction
//! points at the dynamic-scheduling literature (Yang & Fu; Casanova et
//! al.) as the way forward for platforms whose effective speeds vary —
//! shared workstations rarely deliver their nominal speed.
//!
//! This module implements **chunked self-scheduling** for the MORPH
//! classifier under exactly that regime: the image is cut into fixed
//! row chunks; whenever a worker goes idle it receives the next chunk;
//! completion feedback automatically steers work toward the nodes that
//! are *actually* fast. The scheduler is evaluated in virtual time
//! against the same cost model as the rest of the repository, with an
//! explicit **load vector** describing each node's true (hidden)
//! slowdown; the static WEA baseline plans from nominal speeds but pays
//! true costs.
//!
//! The `ablation_dynamic` bench sweeps chunk sizes and load skews; the
//! headline result (reproducing the scheduling folklore the paper
//! cites): static WEA degrades linearly with the speed misestimate,
//! while self-scheduling stays within a chunk-quantisation factor of
//! optimal — at the price of one message round-trip per chunk.

use crate::config::AlgoParams;
use crate::flops;
pub use crate::sched::ChunkPolicy;
use crate::sched::MorphChunks;
use hsi_cube::{HyperCube, LabelImage};
use simnet::Platform;

/// Outcome of a scheduled run (virtual time + the analysis result).
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Virtual completion time (seconds).
    pub total_time: f64,
    /// Per-worker busy time (seconds).
    pub busy: Vec<f64>,
    /// Per-worker number of chunks processed (dynamic) or 1 (static).
    pub chunks: Vec<usize>,
    /// The classification produced (identical across schedulers up to
    /// candidate ordering).
    pub labels: LabelImage,
    /// Load imbalance `max(busy)/min(busy)` over workers that got work.
    pub imbalance: f64,
}

fn imbalance_of(busy: &[f64]) -> f64 {
    let active: Vec<f64> = busy.iter().copied().filter(|&b| b > 0.0).collect();
    if active.is_empty() {
        return 1.0;
    }
    let max = active.iter().cloned().fold(0.0f64, f64::max);
    let min = active.iter().cloned().fold(f64::INFINITY, f64::min);
    max / min.max(1e-300)
}

/// Per-chunk MORPH compute cost in megaflops (MEI on the chunk + its
/// halo, then labelling of the owned lines).
fn chunk_mflops(
    own_lines: usize,
    halo_lines: usize,
    samples: usize,
    bands: usize,
    params: &AlgoParams,
) -> f64 {
    let se_len = (2 * params.se_radius + 1).pow(2);
    let mei = flops::mei_iteration((own_lines + halo_lines) * samples, bands, se_len)
        * params.morph_iterations as f64;
    let label = flops::sad_classify(bands, params.num_classes) * (own_lines * samples) as f64;
    flops::mflop(mei + label)
}

fn validate(platform: &Platform, true_cycle: &[f64], cube: &HyperCube) {
    assert_eq!(
        true_cycle.len(),
        platform.num_procs(),
        "need one true cycle-time per processor"
    );
    assert!(true_cycle.iter().all(|&c| c > 0.0));
    assert!(cube.lines() > 0);
}

/// Static baseline: WEA fractions from the platform's **nominal**
/// speeds, executed at the **true** per-node cycle-times.
pub fn static_wea_morph(
    platform: &Platform,
    true_cycle: &[f64],
    cube: &HyperCube,
    params: &AlgoParams,
) -> ScheduleOutcome {
    validate(platform, true_cycle, cube);
    let p = platform.num_procs();
    let fractions = crate::wea::speed_fractions(platform);
    let counts = crate::wea::apportion_rows(&fractions, cube.lines());
    let work = MorphChunks::new(cube, params);

    let mut busy = vec![0.0; p];
    let mut all_cands: Vec<(Vec<f32>, f64)> = Vec::new();
    let mut assignments = Vec::new();
    let mut first = 0;
    for (i, &n) in counts.iter().enumerate() {
        if n > 0 {
            all_cands.extend(work.candidates(first, n));
            busy[i] = chunk_mflops(n, 2 * work.halo(), cube.samples(), cube.bands(), params)
                * true_cycle[i];
        }
        assignments.push((first, n));
        first += n;
    }
    let (reps, _) =
        crate::seq::reduce_candidates(&all_cands, params.sad_threshold, params.num_classes);
    let mut labels = LabelImage::unlabeled(cube.lines(), cube.samples());
    for &(first, n) in &assignments {
        if n > 0 {
            work.label_into(first, n, &reps, &mut labels);
        }
    }
    let total_time = busy.iter().cloned().fold(0.0f64, f64::max);
    ScheduleOutcome {
        total_time,
        imbalance: imbalance_of(&busy),
        chunks: counts.iter().map(|&n| usize::from(n > 0)).collect(),
        busy,
        labels,
    }
}

/// Chunked self-scheduling: whenever a worker goes idle it takes the
/// next chunk (sized by [`ChunkPolicy::Fixed`]). The scheduler observes
/// only completion feedback, never the true speeds — yet converges to a
/// balanced schedule automatically.
///
/// `per_chunk_overhead_s` models the request/assign message round trip
/// (the cost dynamic scheduling pays that static WEA does not).
pub fn self_schedule_morph(
    platform: &Platform,
    true_cycle: &[f64],
    cube: &HyperCube,
    params: &AlgoParams,
    chunk_lines: usize,
    per_chunk_overhead_s: f64,
) -> ScheduleOutcome {
    assert!(chunk_lines > 0, "chunk_lines must be positive");
    self_schedule_morph_policy(
        platform,
        true_cycle,
        cube,
        params,
        ChunkPolicy::Fixed(chunk_lines),
        per_chunk_overhead_s,
    )
}

/// [`self_schedule_morph`] with an explicit [`ChunkPolicy`].
pub fn self_schedule_morph_policy(
    platform: &Platform,
    true_cycle: &[f64],
    cube: &HyperCube,
    params: &AlgoParams,
    policy: ChunkPolicy,
    per_chunk_overhead_s: f64,
) -> ScheduleOutcome {
    validate(platform, true_cycle, cube);
    if let ChunkPolicy::Guided { min } = policy {
        assert!(min > 0, "guided minimum chunk must be positive");
    }
    let p = platform.num_procs();
    let work = MorphChunks::new(cube, params);

    // Demand-driven event loop in virtual time: serve the next chunk to
    // the earliest-free worker (ties to the lowest rank — the order a
    // FIFO request queue at the master would produce).
    let mut free_at = vec![0.0f64; p];
    let mut busy = vec![0.0f64; p];
    let mut chunks = vec![0usize; p];
    let mut all_cands: Vec<(Vec<f32>, f64)> = Vec::new();
    let mut chunk_owner: Vec<(usize, usize, usize)> = Vec::new(); // (first, n, worker)

    let mut first = 0;
    while first < cube.lines() {
        let n = policy.next_chunk(cube.lines() - first, p);
        // Earliest-free worker.
        let mut w = 0;
        for i in 1..p {
            if free_at[i] < free_at[w] - 1e-15 {
                w = i;
            }
        }
        let cost = chunk_mflops(n, 2 * work.halo(), cube.samples(), cube.bands(), params)
            * true_cycle[w]
            + per_chunk_overhead_s;
        free_at[w] += cost;
        busy[w] += cost;
        chunks[w] += 1;
        all_cands.extend(work.candidates(first, n));
        chunk_owner.push((first, n, w));
        first += n;
    }

    let (reps, _) =
        crate::seq::reduce_candidates(&all_cands, params.sad_threshold, params.num_classes);
    let mut labels = LabelImage::unlabeled(cube.lines(), cube.samples());
    for &(cf, cn, _) in &chunk_owner {
        work.label_into(cf, cn, &reps, &mut labels);
    }
    let total_time = free_at.iter().cloned().fold(0.0f64, f64::max);
    ScheduleOutcome {
        total_time,
        imbalance: imbalance_of(&busy),
        busy,
        chunks,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use simnet::presets;

    fn scene() -> hsi_cube::synth::SyntheticScene {
        wtc_scene(WtcConfig {
            lines: 120,
            samples: 40,
            bands: 48,
            ..Default::default()
        })
    }

    fn params() -> AlgoParams {
        AlgoParams {
            morph_iterations: 2,
            ..Default::default()
        }
    }

    /// With true speeds equal to nominal, static WEA is already
    /// near-optimal. Self-scheduling's completion is bounded by the
    /// list-scheduling guarantee: optimal + one chunk on the slowest
    /// node (the classic last-chunk effect — on this platform the
    /// UltraSparc's single chunk IS the binding term).
    #[test]
    fn dynamic_respects_list_scheduling_bound() {
        let s = scene();
        let p = params();
        let platform = presets::fully_heterogeneous();
        let nominal: Vec<f64> = platform.procs().iter().map(|q| q.cycle_time).collect();
        let stat = static_wea_morph(&platform, &nominal, &s.cube, &p);
        for chunk in [1usize, 4, 8] {
            let dynm = self_schedule_morph(&platform, &nominal, &s.cube, &p, chunk, 0.0);
            let slowest = nominal.iter().cloned().fold(0.0f64, f64::max);
            let worst_chunk =
                chunk_mflops(chunk, 2, s.cube.samples(), s.cube.bands(), &p) * slowest;
            assert!(
                dynm.total_time <= stat.total_time + worst_chunk + 1e-9,
                "chunk {chunk}: dynamic {:.3} > static {:.3} + worst chunk {:.3}",
                dynm.total_time,
                stat.total_time,
                worst_chunk
            );
        }
    }

    /// The headline: when one nominally fast node is secretly loaded
    /// (4x slower), static WEA stalls on it while self-scheduling
    /// reroutes the work.
    #[test]
    fn dynamic_beats_static_under_surprise_load() {
        let s = scene();
        let p = params();
        let platform = presets::fully_heterogeneous();
        let mut true_cycle: Vec<f64> = platform.procs().iter().map(|q| q.cycle_time).collect();
        true_cycle[2] *= 6.0; // p3 — WEA's favourite node — is busy
        let stat = static_wea_morph(&platform, &true_cycle, &s.cube, &p);
        let dynm = self_schedule_morph(&platform, &true_cycle, &s.cube, &p, 4, 0.0);
        assert!(
            dynm.total_time < 0.7 * stat.total_time,
            "dynamic {:.2} should beat static {:.2}",
            dynm.total_time,
            stat.total_time
        );
        // And its imbalance should be far better.
        assert!(dynm.imbalance < stat.imbalance);
    }

    /// Chunk-size trade-off: very large chunks degenerate toward static
    /// behaviour; overhead penalises very small chunks.
    #[test]
    fn chunk_size_tradeoff() {
        let s = scene();
        let p = params();
        let platform = presets::fully_heterogeneous();
        let mut true_cycle: Vec<f64> = platform.procs().iter().map(|q| q.cycle_time).collect();
        true_cycle[2] *= 6.0;
        let overhead = 0.05;
        let t_small =
            self_schedule_morph(&platform, &true_cycle, &s.cube, &p, 1, overhead).total_time;
        let t_mid =
            self_schedule_morph(&platform, &true_cycle, &s.cube, &p, 6, overhead).total_time;
        let t_huge =
            self_schedule_morph(&platform, &true_cycle, &s.cube, &p, 120, overhead).total_time;
        assert!(t_mid < t_small, "overhead should penalise 1-line chunks");
        assert!(t_mid < t_huge, "whole-image chunks serialise the run");
    }

    /// Both schedulers produce complete, bounded labelings of useful
    /// quality (the candidate pools differ with the chunking, so we
    /// score each against ground truth rather than against each other).
    #[test]
    fn labelings_are_sound() {
        let s = scene();
        let p = params();
        let platform = presets::thunderhead(6);
        let nominal: Vec<f64> = platform.procs().iter().map(|q| q.cycle_time).collect();
        let stat = static_wea_morph(&platform, &nominal, &s.cube, &p);
        let dynm = self_schedule_morph(&platform, &nominal, &s.cube, &p, 8, 0.0);
        for (name, out) in [("static", &stat), ("dynamic", &dynm)] {
            for &l in out.labels.as_slice() {
                assert!((l as usize) < p.num_classes, "{name}: label out of range");
            }
            let acc = crate::eval::debris_accuracy(&s, &out.labels, 7).overall;
            assert!(acc > 30.0, "{name}: debris accuracy only {acc:.1}%");
        }
    }

    /// Guided self-scheduling beats a comparable fixed chunking under
    /// overhead: big early chunks amortise the round trip, small late
    /// chunks rebalance the tail.
    #[test]
    fn guided_policy_competitive() {
        let s = scene();
        let p = params();
        let platform = presets::fully_heterogeneous();
        let mut true_cycle: Vec<f64> = platform.procs().iter().map(|q| q.cycle_time).collect();
        true_cycle[2] *= 6.0;
        let overhead = 0.05;
        let fixed = self_schedule_morph(&platform, &true_cycle, &s.cube, &p, 2, overhead);
        let guided = self_schedule_morph_policy(
            &platform,
            &true_cycle,
            &s.cube,
            &p,
            ChunkPolicy::Guided { min: 1 },
            overhead,
        );
        // Guided issues far fewer chunks...
        assert!(
            guided.chunks.iter().sum::<usize>() < fixed.chunks.iter().sum::<usize>(),
            "guided {} vs fixed {} chunks",
            guided.chunks.iter().sum::<usize>(),
            fixed.chunks.iter().sum::<usize>()
        );
        // ...without giving up much completion time.
        assert!(
            guided.total_time < fixed.total_time * 1.5,
            "guided {:.2} vs fixed {:.2}",
            guided.total_time,
            fixed.total_time
        );
    }

    /// Chunk assignment is a pure function of (platform, load, policy):
    /// two runs agree on every per-worker chunk count, the busy ledger,
    /// completion time, and every label — for both policies.
    #[test]
    fn chunk_assignment_is_deterministic() {
        let s = scene();
        let p = params();
        let platform = presets::fully_heterogeneous();
        let mut true_cycle: Vec<f64> = platform.procs().iter().map(|q| q.cycle_time).collect();
        true_cycle[5] *= 3.0; // a hidden slowdown must not break replay
        for policy in [ChunkPolicy::Fixed(5), ChunkPolicy::Guided { min: 2 }] {
            let run =
                || self_schedule_morph_policy(&platform, &true_cycle, &s.cube, &p, policy, 0.01);
            let a = run();
            let b = run();
            assert_eq!(a.chunks, b.chunks, "{policy:?}: chunk assignment differs");
            assert_eq!(a.busy, b.busy, "{policy:?}: busy ledger differs");
            assert_eq!(a.total_time, b.total_time, "{policy:?}: time differs");
            assert_eq!(
                a.labels.as_slice(),
                b.labels.as_slice(),
                "{policy:?}: labels differ"
            );
        }
    }

    /// Policy-vs-static on the heterogeneous presets: under a surprise
    /// load both self-scheduling policies finish no later than the
    /// nominal-speed static WEA plan (modulo one chunk of quantisation),
    /// and Guided does it with fewer dispatches than 1-line Fixed.
    #[test]
    fn policies_vs_static_on_heterogeneous_presets() {
        let s = scene();
        let p = params();
        for platform in [
            presets::fully_heterogeneous(),
            presets::partially_homogeneous(),
        ] {
            let mut true_cycle: Vec<f64> = platform.procs().iter().map(|q| q.cycle_time).collect();
            true_cycle[2] *= 6.0; // the nominally fastest node is loaded
            let stat = static_wea_morph(&platform, &true_cycle, &s.cube, &p);
            let fixed = self_schedule_morph_policy(
                &platform,
                &true_cycle,
                &s.cube,
                &p,
                ChunkPolicy::Fixed(1),
                0.0,
            );
            let guided = self_schedule_morph_policy(
                &platform,
                &true_cycle,
                &s.cube,
                &p,
                ChunkPolicy::Guided { min: 1 },
                0.0,
            );
            for (name, out) in [("fixed", &fixed), ("guided", &guided)] {
                assert!(
                    out.total_time < stat.total_time,
                    "{name} on {}: {:.2} !< static {:.2}",
                    platform.name(),
                    out.total_time,
                    stat.total_time
                );
            }
            assert!(
                guided.chunks.iter().sum::<usize>() < fixed.chunks.iter().sum::<usize>(),
                "{}: guided should dispatch fewer chunks",
                platform.name()
            );
        }
    }

    /// Every chunk is processed exactly once: chunk counts sum to the
    /// number of chunks, and the busy ledger is consistent.
    #[test]
    fn accounting_is_consistent() {
        let s = scene();
        let p = params();
        let platform = presets::thunderhead(4);
        let nominal: Vec<f64> = platform.procs().iter().map(|q| q.cycle_time).collect();
        let out = self_schedule_morph(&platform, &nominal, &s.cube, &p, 7, 0.01);
        let expected_chunks = s.cube.lines().div_ceil(7);
        assert_eq!(out.chunks.iter().sum::<usize>(), expected_chunks);
        let max_busy = out.busy.iter().cloned().fold(0.0f64, f64::max);
        assert!((out.total_time - max_busy).abs() < 1e-9);
        assert!(out.imbalance >= 1.0);
    }
}
