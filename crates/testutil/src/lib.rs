//! Shared fixtures for the workspace integration suites.
//!
//! The thirteen root-level suites used to copy-paste the same
//! scene/params/engine helpers; this crate is the single home for them
//! (a dev-dependency of the root package only — it never ships in a
//! library build). Keep helpers here *generic*: suite-specific
//! constants belong in the suite.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use hetero_hsi::config::AlgoParams;
use hetero_hsi::ft::FtOptions;
use hetero_hsi::seq::DetectedTarget;
use hetero_hsi::OffloadPolicy;
use hsi_cube::synth::{wtc_scene, SyntheticScene, WtcConfig};
use simnet::engine::Engine;
use simnet::prof::RunProfile;
use simnet::{presets, CollAlgorithm, FaultPlan, Platform, RunReport};

pub mod gen;

/// The smallest WTC scene (`WtcConfig::tiny()`): the standard fixture
/// for fault-injection, accel and profiler suites where virtual-time
/// relationships — not image fidelity — are under test.
pub fn tiny_scene() -> SyntheticScene {
    wtc_scene(WtcConfig::tiny())
}

/// A WTC scene with explicit geometry (other config fields default).
pub fn scene(lines: usize, samples: usize, bands: usize) -> SyntheticScene {
    wtc_scene(WtcConfig {
        lines,
        samples,
        bands,
        ..Default::default()
    })
}

/// Algorithm parameters with explicit target count and morphological
/// iterations (other fields default).
pub fn params(num_targets: usize, morph_iterations: usize) -> AlgoParams {
    AlgoParams {
        num_targets,
        morph_iterations,
        ..Default::default()
    }
}

/// `(line, sample)` coordinates of a detection list — the
/// platform-invariant digest the invariance tests compare.
pub fn coords(targets: &[DetectedTarget]) -> Vec<(usize, usize)> {
    targets.iter().map(|t| (t.line, t.sample)).collect()
}

/// All three offload policies, in the canonical sweep order.
pub const POLICIES: [OffloadPolicy; 3] = [
    OffloadPolicy::Never,
    OffloadPolicy::Always,
    OffloadPolicy::Auto,
];

/// Rank counts straddling powers of two (binomial-tree edge cases) and
/// the paper's 16-processor networks — the canonical sweep of the
/// collective conformance suites.
pub const RANK_COUNTS: [usize; 8] = [2, 3, 4, 5, 8, 9, 16, 17];

/// Every selectable collective backend, in the canonical sweep order.
pub const BACKENDS: [CollAlgorithm; 5] = [
    CollAlgorithm::Linear,
    CollAlgorithm::BinomialTree,
    CollAlgorithm::SegmentHierarchical,
    CollAlgorithm::PipelinedChunked,
    CollAlgorithm::Auto,
];

/// The conformance suites' multi-segment heterogeneous platform of `p`
/// ranks: seeded off the rank count (so each count gets a distinct but
/// reproducible machine), segments interleaved `i % 3` so hierarchical
/// trees are non-trivial.
pub fn random_platform(p: usize) -> Platform {
    presets::random_heterogeneous(41 + p as u64, p, 3, 0.002, 0.05)
}

/// Default fault-tolerant driver options with an explicit offload
/// policy.
pub fn ft_opts(offload: OffloadPolicy) -> FtOptions {
    FtOptions {
        offload,
        ..FtOptions::default()
    }
}

/// An engine over the paper's fully-heterogeneous network with a fault
/// plan attached.
pub fn engine_with(plan: FaultPlan) -> Engine {
    Engine::new(presets::fully_heterogeneous()).with_faults(plan)
}

/// Asserts the profiler's two always-enforced gates on a profiled
/// report and returns the profile:
///
/// 1. **accounting identity** — every rank's phase fold equals its
///    wall-clock bitwise (`f64::to_bits`, no epsilon);
/// 2. **path bounds** — critical-path length ≤ makespan, slack ≥ 0,
///    and `fl(length + slack) == makespan` bitwise.
///
/// # Panics
/// Panics if the report carries no profile or either gate fails.
pub fn assert_profile_exact<R>(report: &RunReport<R>) -> &RunProfile {
    let profile = report
        .profile
        .as_ref()
        .expect("report has no profile: enable Engine::with_profiling");
    for r in &profile.ranks {
        assert!(
            r.identity_holds(),
            "rank {}: accounted {:e} ({:#x}) != wall {:e} ({:#x})",
            r.rank,
            r.phases.accounted(),
            r.phases.accounted().to_bits(),
            r.wall,
            r.wall.to_bits()
        );
    }
    assert!(
        profile.path_bounded(),
        "critical path out of bounds: length {:e}, slack {:e}, makespan {:e}",
        profile.critical_path.length,
        profile.critical_path.slack,
        profile.makespan
    );
    profile
}
