//! Seed-driven random generators shared by the property suites and the
//! chaos harness (`crates/chaos`).
//!
//! Everything here is deterministic in the seed: the same `u64` always
//! yields the same platform, fault plan, or draw sequence, on any host
//! — the property the chaos soak and the proptest suites both build
//! their reproducibility on. The RNG is the same self-contained
//! SplitMix64 stream `simnet::presets::random_heterogeneous` uses, so
//! no vendored `rand` is pulled into library builds.

use simnet::{FaultPlan, Platform};

/// A SplitMix64 stream: tiny, fast, and statistically fine for test
/// generation (it is the seeding PRG of the `rand` ecosystem).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 mantissa bits: exact dyadic rationals, never 1.0.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An integer draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "SplitMix64::range: empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// A float draw in `[lo, hi)`.
    pub fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// One serializable fault event — the unit the chaos shrinker drops one
/// at a time. `FaultPlan` itself is write-only (a run-time schedule);
/// keeping events as data makes plans editable and printable.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Permanent crash of `rank` at virtual time `at`.
    Crash {
        /// The crashing rank.
        rank: usize,
        /// Crash instant (virtual seconds).
        at: f64,
    },
    /// Compute slowdown of `rank` by `factor` over `[from, until)`.
    Slowdown {
        /// The slowed rank.
        rank: usize,
        /// Window start (virtual seconds).
        from: f64,
        /// Window end (virtual seconds).
        until: f64,
        /// Dilation factor (> 1 is slower).
        factor: f64,
    },
    /// Inter-segment link outage over `[from, until)`.
    LinkOutage {
        /// One endpoint segment.
        seg_a: usize,
        /// The other endpoint segment.
        seg_b: usize,
        /// Window start (virtual seconds).
        from: f64,
        /// Window end (virtual seconds).
        until: f64,
    },
    /// Inter-segment link degradation by `factor` over `[from, until)`.
    LinkDegraded {
        /// One endpoint segment.
        seg_a: usize,
        /// The other endpoint segment.
        seg_b: usize,
        /// Window start (virtual seconds).
        from: f64,
        /// Window end (virtual seconds).
        until: f64,
        /// Transfer-time stretch factor (≥ 1).
        factor: f64,
    },
}

impl FaultEvent {
    /// Folds this event into a [`FaultPlan`] (builder style).
    pub fn apply(&self, plan: FaultPlan) -> FaultPlan {
        match *self {
            FaultEvent::Crash { rank, at } => plan.crash(rank, at),
            FaultEvent::Slowdown {
                rank,
                from,
                until,
                factor,
            } => plan.slowdown(rank, from, until, factor),
            FaultEvent::LinkOutage {
                seg_a,
                seg_b,
                from,
                until,
            } => plan.link_outage(seg_a, seg_b, from, until),
            FaultEvent::LinkDegraded {
                seg_a,
                seg_b,
                from,
                until,
                factor,
            } => plan.link_degraded(seg_a, seg_b, from, until, factor),
        }
    }

    /// `true` for crash events (the ones the ft survivor gates key on).
    pub fn is_crash(&self) -> bool {
        matches!(self, FaultEvent::Crash { .. })
    }
}

/// Builds the [`FaultPlan`] of an event list.
pub fn plan_of(events: &[FaultEvent]) -> FaultPlan {
    events
        .iter()
        .fold(FaultPlan::new(), |plan, e| e.apply(plan))
}

/// Draws a random multi-segment heterogeneous platform of `ranks`
/// nodes: cycle-times log-uniform over a 25× band, 1–3 segments,
/// random intra/inter link capacities (delegates to
/// [`simnet::presets::random_heterogeneous`] with an RNG-derived seed).
pub fn random_platform_from(rng: &mut SplitMix64, ranks: usize) -> Platform {
    let segments = rng.range(1, 1 + ranks.min(3));
    simnet::presets::random_heterogeneous(rng.next_u64(), ranks, segments, 0.002, 0.05)
}

/// Draws up to `max_events` random fault events against a platform of
/// `ranks` ranks and `segments` segments. Crashes and slowdowns target
/// workers only (never rank 0 — the ft drivers reject coordinator
/// crashes structurally, and the engine suites treat the root as the
/// observer); at most one crash per rank, and never so many crashes
/// that fewer than two ranks survive.
pub fn random_events(
    rng: &mut SplitMix64,
    ranks: usize,
    segments: usize,
    max_events: usize,
) -> Vec<FaultEvent> {
    let mut events = Vec::new();
    if ranks < 2 {
        return events;
    }
    let mut crashed = vec![false; ranks];
    let mut crashes_left = (ranks - 2).min(2);
    for _ in 0..rng.range(0, max_events + 1) {
        match rng.range(0, 4) {
            0 if crashes_left > 0 => {
                let rank = rng.range(1, ranks);
                if crashed[rank] {
                    continue;
                }
                crashed[rank] = true;
                crashes_left -= 1;
                events.push(FaultEvent::Crash {
                    rank,
                    at: rng.in_range(0.0, 0.4),
                });
            }
            1 => {
                let from = rng.in_range(0.0, 0.3);
                events.push(FaultEvent::Slowdown {
                    rank: rng.range(1, ranks),
                    from,
                    until: from + rng.in_range(0.01, 0.3),
                    factor: rng.in_range(1.1, 6.0),
                });
            }
            2 if segments > 1 => {
                let seg_a = rng.range(0, segments);
                let seg_b = (seg_a + rng.range(1, segments)) % segments;
                let from = rng.in_range(0.0, 0.3);
                events.push(FaultEvent::LinkOutage {
                    seg_a,
                    seg_b,
                    from,
                    until: from + rng.in_range(0.005, 0.1),
                });
            }
            3 if segments > 1 => {
                let seg_a = rng.range(0, segments);
                let seg_b = (seg_a + rng.range(1, segments)) % segments;
                let from = rng.in_range(0.0, 0.3);
                events.push(FaultEvent::LinkDegraded {
                    seg_a,
                    seg_b,
                    from,
                    until: from + rng.in_range(0.01, 0.2),
                    factor: rng.in_range(1.5, 8.0),
                });
            }
            _ => {}
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_in_bounds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(13);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let n = r.range(3, 9);
            assert!((3..9).contains(&n));
            let f = r.in_range(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn random_platform_is_reproducible() {
        let a = random_platform_from(&mut SplitMix64::new(99), 7);
        let b = random_platform_from(&mut SplitMix64::new(99), 7);
        assert_eq!(a, b);
        assert_eq!(a.num_procs(), 7);
    }

    #[test]
    fn random_events_respect_the_safety_rules() {
        for seed in 0..200u64 {
            let mut rng = SplitMix64::new(seed);
            let ranks = rng.range(2, 10);
            let segments = rng.range(1, 4);
            let events = random_events(&mut rng, ranks, segments, 5);
            let crashes: Vec<usize> = events
                .iter()
                .filter_map(|e| match e {
                    FaultEvent::Crash { rank, .. } => Some(*rank),
                    _ => None,
                })
                .collect();
            assert!(!crashes.contains(&0), "rank 0 must never crash");
            let mut unique = crashes.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), crashes.len(), "one crash per rank");
            assert!(ranks - crashes.len() >= 2, "two survivors minimum");
            // The plan builds without panicking (validation rules hold).
            let _ = plan_of(&events);
        }
    }
}
