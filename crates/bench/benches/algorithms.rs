//! Criterion benches for the end-to-end algorithms (real wall-clock of
//! the actual computation on a small scene; virtual-time experiment
//! results come from the table binaries instead).

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_hsi::config::{AlgoParams, RunOptions};
use hsi_cube::synth::{wtc_scene, WtcConfig};
use simnet::engine::Engine;

fn small_scene() -> hsi_cube::synth::SyntheticScene {
    wtc_scene(WtcConfig {
        lines: 64,
        samples: 48,
        bands: 64,
        ..Default::default()
    })
}

fn small_params() -> AlgoParams {
    AlgoParams {
        num_targets: 8,
        morph_iterations: 2,
        ..Default::default()
    }
}

fn bench_sequential(c: &mut Criterion) {
    let s = small_scene();
    let p = small_params();
    let mut g = c.benchmark_group("sequential-64x48x64");
    g.sample_size(10);
    g.bench_function("atdca", |b| b.iter(|| hetero_hsi::seq::atdca(&s.cube, &p)));
    g.bench_function("ufcls", |b| b.iter(|| hetero_hsi::seq::ufcls(&s.cube, &p)));
    g.bench_function("pct", |b| b.iter(|| hetero_hsi::seq::pct(&s.cube, &p)));
    g.bench_function("morph", |b| b.iter(|| hetero_hsi::seq::morph(&s.cube, &p)));
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let s = small_scene();
    let p = small_params();
    let engine = Engine::new(simnet::presets::fully_heterogeneous());
    let mut g = c.benchmark_group("parallel-16ranks-64x48x64");
    g.sample_size(10);
    g.bench_function("hetero_atdca", |b| {
        b.iter(|| hetero_hsi::par::atdca::run(&engine, &s.cube, &p, &RunOptions::hetero()))
    });
    g.bench_function("hetero_morph", |b| {
        b.iter(|| hetero_hsi::par::morph::run(&engine, &s.cube, &p, &RunOptions::hetero()))
    });
    g.finish();
}

criterion_group!(benches, bench_sequential, bench_parallel);
criterion_main!(benches);
