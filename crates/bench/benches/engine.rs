//! Criterion benches for the simnet message-passing engine.

use criterion::{criterion_group, criterion_main, Criterion};
use simnet::comm::{broadcast, gather, scatter, ScatterMode};
use simnet::engine::{Ctx, Engine, WireVec};
use simnet::Platform;

fn bench_engine_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine-spawn");
    g.sample_size(20);
    for p in [4usize, 16, 64] {
        let engine = Engine::new(Platform::uniform("bench", p, 0.01, 1024, 1.0));
        g.bench_function(format!("noop_{p}_ranks"), |b| {
            b.iter(|| engine.run(|ctx: &mut Ctx<()>| ctx.rank()))
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let engine = Engine::new(Platform::uniform("bench", 16, 0.01, 1024, 1.0));
    let mut g = c.benchmark_group("collectives-16-ranks");
    g.sample_size(20);
    g.bench_function("broadcast_1k_f32", |b| {
        b.iter(|| {
            engine.run(|ctx: &mut Ctx<WireVec<f32>>| {
                let msg = if ctx.is_root() {
                    Some(WireVec(vec![1.0f32; 1024]))
                } else {
                    None
                };
                broadcast(ctx, 0, msg).expect("valid broadcast").0.len()
            })
        })
    });
    g.bench_function("gather_1k_f32", |b| {
        b.iter(|| {
            engine.run(|ctx: &mut Ctx<WireVec<f32>>| {
                gather(ctx, 0, WireVec(vec![1.0f32; 1024])).map(|v| v.len())
            })
        })
    });
    g.bench_function("scatter_1k_f32", |b| {
        b.iter(|| {
            engine.run(|ctx: &mut Ctx<WireVec<f32>>| {
                let items = if ctx.is_root() {
                    Some((0..16).map(|_| WireVec(vec![1.0f32; 1024])).collect())
                } else {
                    None
                };
                scatter(ctx, 0, items, ScatterMode::Charged)
                    .expect("valid scatter")
                    .0
                    .len()
            })
        })
    });
    g.finish();
}

fn bench_wea(c: &mut Criterion) {
    use hetero_hsi::wea::{hetero_fractions, RowCost, WeaConfig, WeaLinkModel};
    let platform = simnet::presets::fully_heterogeneous();
    let cost = RowCost {
        mflops_per_row: 2.0,
        mbits_per_row: 0.5,
        fixed_mflops: 1.0,
    };
    let mut g = c.benchmark_group("wea-fractions-16-procs");
    for (name, model) in [
        ("ignore", WeaLinkModel::Ignore),
        ("heuristic", WeaLinkModel::Heuristic { beta: 1.0 }),
        ("makespan", WeaLinkModel::Makespan),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                hetero_fractions(
                    &platform,
                    cost,
                    WeaConfig {
                        link_model: model,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine_spawn, bench_collectives, bench_wea);
criterion_main!(benches);
