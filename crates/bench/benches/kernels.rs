//! Criterion microbenches for the hot per-pixel kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsi_cube::metrics::{brightness, euclidean, sad, sid};
use hsi_cube::synth::{wtc_scene, WtcConfig};
use hsi_linalg::lstsq::FclsProblem;
use hsi_linalg::ortho::OrthoBasis;
use hsi_linalg::Matrix;
use hsi_morpho::StructuringElement;

fn spectra() -> (Vec<f32>, Vec<f32>) {
    let s = wtc_scene(WtcConfig {
        lines: 4,
        samples: 4,
        bands: 224,
        ..Default::default()
    });
    (s.cube.pixel(0, 0).to_vec(), s.cube.pixel(2, 2).to_vec())
}

fn bench_metrics(c: &mut Criterion) {
    let (x, y) = spectra();
    let mut g = c.benchmark_group("metrics-224-bands");
    g.bench_function("sad", |b| b.iter(|| sad(black_box(&x), black_box(&y))));
    g.bench_function("brightness", |b| b.iter(|| brightness(black_box(&x))));
    g.bench_function("euclidean", |b| {
        b.iter(|| euclidean(black_box(&x), black_box(&y)))
    });
    g.bench_function("sid", |b| b.iter(|| sid(black_box(&x), black_box(&y))));
    g.finish();
}

fn bench_projection(c: &mut Criterion) {
    let (x, _) = spectra();
    let wide: Vec<f64> = x.iter().map(|&v| v as f64).collect();
    let mut g = c.benchmark_group("osp-projection");
    for k in [1usize, 4, 18] {
        let mut basis = OrthoBasis::new(224);
        for i in 0..k {
            let v: Vec<f64> = (0..224)
                .map(|b| ((b * (i + 2)) as f64 * 0.37).sin())
                .collect();
            basis.push(&v);
        }
        g.bench_function(format!("complement_score_k{k}"), |b| {
            b.iter(|| basis.complement_score(black_box(&wide)))
        });
    }
    g.finish();
}

fn bench_fcls(c: &mut Criterion) {
    let scene = wtc_scene(WtcConfig {
        lines: 4,
        samples: 4,
        bands: 224,
        ..Default::default()
    });
    let mut g = c.benchmark_group("fcls-unmixing");
    for t in [2usize, 8, 18] {
        let rows: Vec<Vec<f64>> = (0..t)
            .map(|i| {
                scene.class_signatures[i % scene.class_signatures.len()]
                    .iter()
                    .map(|&v| v as f64 + 0.001 * i as f64)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let problem = FclsProblem::new(Matrix::from_rows(&refs)).unwrap();
        let px = scene.cube.pixel(1, 1).to_vec();
        g.bench_function(format!("solve_t{t}"), |b| {
            b.iter(|| problem.solve_f32(black_box(&px)))
        });
    }
    g.finish();
}

fn bench_mei(c: &mut Criterion) {
    let scene = wtc_scene(WtcConfig {
        lines: 32,
        samples: 32,
        bands: 64,
        ..Default::default()
    });
    let se = StructuringElement::square(1);
    c.bench_function("mei-32x32x64-2iter", |b| {
        b.iter(|| hsi_morpho::mei::mei(black_box(&scene.cube), &se, 2))
    });
}

fn bench_covariance(c: &mut Criterion) {
    let scene = wtc_scene(WtcConfig {
        lines: 16,
        samples: 16,
        bands: 224,
        ..Default::default()
    });
    c.bench_function("covariance-256px-224bands", |b| {
        b.iter(|| {
            let mut acc = hsi_linalg::covariance::CovarianceAccumulator::new(224);
            for i in 0..scene.cube.num_pixels() {
                acc.push_f32(scene.cube.pixel_flat(i));
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_metrics,
    bench_projection,
    bench_fcls,
    bench_mei,
    bench_covariance
);
criterion_main!(benches);
