//! **Table 4** — classification accuracy (percent) obtained by
//! Hetero-PCT and Hetero-MORPH for the USGS dust/debris classes, plus
//! single-processor times for the sequential versions.
//!
//! As in the paper, the accuracies come from the 16-node parallel runs
//! (the fully heterogeneous network); the parenthetical times are the
//! sequential baselines.
//!
//! ```text
//! cargo run -p repro-bench --release --bin table4
//! ```

use hetero_hsi::config::{AlgoParams, RunOptions};
use hetero_hsi::eval::{debris_accuracy, table4_rows};
use hsi_cube::synth::materials::NUM_DEBRIS_CLASSES;
use repro_bench::{build_scene, print_table, write_csv, BASELINE_CYCLE_TIME};
use simnet::engine::Engine;

fn main() {
    let scene = build_scene();
    let params = AlgoParams::default();
    let engine = Engine::new(simnet::presets::fully_heterogeneous());

    eprintln!("# running Hetero-PCT (c = {})", params.num_classes);
    let pct = hetero_hsi::par::pct::run(&engine, &scene.cube, &params, &RunOptions::hetero());
    eprintln!(
        "# running Hetero-MORPH (I_max = {})",
        params.morph_iterations
    );
    let morph = hetero_hsi::par::morph::run(&engine, &scene.cube, &params, &RunOptions::hetero());

    eprintln!("# timing sequential baselines");
    let t_pct = hetero_hsi::seq::pct(&scene.cube, &params).virtual_secs(BASELINE_CYCLE_TIME);
    let t_morph = hetero_hsi::seq::morph(&scene.cube, &params).virtual_secs(BASELINE_CYCLE_TIME);

    let acc_pct = debris_accuracy(&scene, &pct.result.0, NUM_DEBRIS_CLASSES);
    let acc_morph = debris_accuracy(&scene, &morph.result.0, NUM_DEBRIS_CLASSES);
    let rows_pct = table4_rows(&scene, &acc_pct, NUM_DEBRIS_CLASSES);
    let rows_morph = table4_rows(&scene, &acc_morph, NUM_DEBRIS_CLASSES);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for ((name, ap), (_, am)) in rows_pct.iter().zip(&rows_morph) {
        rows.push(vec![name.clone(), format!("{ap:.2}"), format!("{am:.2}")]);
        csv.push(format!("{name},{ap:.2},{am:.2}"));
    }
    rows.push(vec![
        "Overall".into(),
        format!("{:.2}", acc_pct.overall),
        format!("{:.2}", acc_morph.overall),
    ]);
    csv.push(format!(
        "Overall,{:.2},{:.2}",
        acc_pct.overall, acc_morph.overall
    ));

    print_table(
        &format!(
            "Table 4: dust/debris classification accuracy (%)  |  sequential times: PCT {t_pct:.0} s, MORPH {t_morph:.0} s (paper: 1884 s / 2334 s on the full scene)"
        ),
        &["Dust/debris class", "Hetero-PCT", "Hetero-MORPH"],
        &rows,
    );
    write_csv("table4.csv", "class,pct_acc,morph_acc", &csv);
}
