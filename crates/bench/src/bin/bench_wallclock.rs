//! End-to-end wall-clock benchmark + zero-copy gate → `BENCH_wallclock.json`.
//!
//! Runs all four analysis algorithms (ATDCA, UFCLS, PCT, MORPH) end to
//! end on the paper's four preset networks, recording for each run:
//!
//! * **wall-clock seconds** on the host (real time, thread-count- and
//!   machine-dependent — the throughput trajectory of the repository),
//! * the run's **virtual total time** (deterministic, host-independent),
//! * the deterministic **copy telemetry** (`simnet::CopyStats`):
//!   bytes deep-copied by collective fan-outs, hot-path allocation
//!   count, and the owned-payload baseline the pre-zero-copy
//!   implementation would have copied at the same sites.
//!
//! Two gates, both computed from the deterministic counters only, so
//! they are **always enforced** — they pass or fail identically on any
//! host, any core count:
//!
//! 1. **Broadcast copy bound** — an `Arc`-backed tree broadcast (every
//!    tree algorithm × every network) must deep-copy at most one
//!    root-payload's worth of bytes in total, not O(children × payload)
//!    per relay, while the recorded owned-payload baseline at the same
//!    sites is strictly positive. The owned-payload control run of the
//!    same schedule must be bit-identical in virtual time.
//! 2. **End-to-end copy reduction** — ATDCA and UFCLS with the
//!    `Arc`-backed message bodies must deep-copy at most *half* the
//!    owned-payload baseline recorded by the same run (a ≥ 2× measured
//!    reduction), with a non-trivial baseline.
//!
//! Environment:
//!
//! * `HETEROSPEC_BENCH_SCENE` — `tiny` (default), `small`, `medium`.
//! * `HETEROSPEC_BENCH_OUT` — output path (default
//!   `BENCH_wallclock.json` in the current directory).

use hetero_hsi::config::{AlgoParams, RunOptions};
use repro_bench::microjson::{object, Json};
use repro_bench::{print_table, run_algorithm, write_report, ALGORITHMS};
use simnet::engine::{Engine, WireVec};
use simnet::{coll, CollAlgorithm, CollectiveConfig, CopyStats};
use std::sync::Arc;
use std::time::Instant;

/// Broadcast payload for gate 1: the paper's endmember matrix `U`
/// (18 targets × 224 bands × f32), in bytes.
const U_BYTES: usize = 18 * 224 * 4;

/// The tree-shaped broadcast schedules gate 1 sweeps (linear is a
/// 1-deep tree and is covered by the same bound).
const TREE_ALGOS: [CollAlgorithm; 4] = [
    CollAlgorithm::Linear,
    CollAlgorithm::BinomialTree,
    CollAlgorithm::SegmentHierarchical,
    CollAlgorithm::PipelinedChunked,
];

fn copies_json(c: &CopyStats) -> Json {
    object(vec![
        (
            "bytes_deep_copied",
            Json::Number(c.bytes_deep_copied as f64),
        ),
        (
            "allocs_on_hot_path",
            Json::Number(c.allocs_on_hot_path as f64),
        ),
        (
            "bytes_owned_baseline",
            Json::Number(c.bytes_owned_baseline as f64),
        ),
    ])
}

/// One end-to-end (algorithm × network) measurement.
struct WallclockRecord {
    algorithm: &'static str,
    network: String,
    secs_wall: f64,
    virtual_total: f64,
    copies: CopyStats,
}

impl WallclockRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("algorithm", Json::String(self.algorithm.into())),
            ("network", Json::String(self.network.clone())),
            ("secs_wall", Json::Number(self.secs_wall)),
            ("virtual_total_secs", Json::Number(self.virtual_total)),
            ("copies", copies_json(&self.copies)),
        ])
    }
}

/// One gate-1 broadcast measurement (shared payload + owned control).
struct BroadcastRecord {
    network: String,
    algorithm: CollAlgorithm,
    payload_bytes: u64,
    shared: CopyStats,
    owned: CopyStats,
}

impl BroadcastRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("network", Json::String(self.network.clone())),
            ("algorithm", Json::String(self.algorithm.to_string())),
            ("payload_bytes", Json::Number(self.payload_bytes as f64)),
            ("shared", copies_json(&self.shared)),
            ("owned", copies_json(&self.owned)),
        ])
    }
}

fn main() {
    let scene_name = std::env::var("HETEROSPEC_BENCH_SCENE").unwrap_or_else(|_| "tiny".into());
    let (lines, samples) = match scene_name.as_str() {
        "tiny" => (96, 64),
        "small" => (512, 128),
        "medium" => (1024, 256),
        other => panic!("HETEROSPEC_BENCH_SCENE: unknown size '{other}'"),
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("# bench_wallclock: scene {scene_name} ({lines}x{samples}), host cores {cores}");
    let scene = hsi_cube::synth::wtc_scene(hsi_cube::synth::WtcConfig {
        lines,
        samples,
        ..Default::default()
    });
    let params = AlgoParams {
        num_targets: 6,
        morph_iterations: 2,
        ..Default::default()
    };
    let networks = simnet::presets::four_networks();

    // --- End-to-end wall-clock + copy telemetry, 4 algorithms × 4 nets.
    let mut records: Vec<WallclockRecord> = Vec::new();
    for algorithm in ALGORITHMS {
        for network in &networks {
            let engine = Engine::new(network.clone());
            let t = Instant::now();
            let run = run_algorithm(algorithm, &engine, &scene, &params, &RunOptions::hetero());
            let secs_wall = t.elapsed().as_secs_f64();
            records.push(WallclockRecord {
                algorithm,
                network: network.name().to_string(),
                secs_wall,
                virtual_total: run.report.total_time,
                copies: run.report.copies,
            });
        }
    }
    print_table(
        "bench_wallclock: end-to-end runs (wall-clock is host-dependent; the rest is not)",
        &[
            "Algorithm",
            "Network",
            "Wall s",
            "Virtual s",
            "Deep-copied B",
            "Baseline B",
        ],
        &records
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.to_string(),
                    r.network.clone(),
                    format!("{:.4}", r.secs_wall),
                    format!("{:.4}", r.virtual_total),
                    format!("{}", r.copies.bytes_deep_copied),
                    format!("{}", r.copies.bytes_owned_baseline),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // --- Gate 1: Arc-backed tree broadcast copies ≤ one payload total.
    let mut bcast_records: Vec<BroadcastRecord> = Vec::new();
    let mut gate_broadcast = true;
    for network in &networks {
        for algorithm in TREE_ALGOS {
            let cfg = CollectiveConfig::uniform(algorithm);
            let bits = (U_BYTES * 8) as u64;

            let shared_payload: Arc<WireVec<u8>> = Arc::new(WireVec(vec![0u8; U_BYTES]));
            let engine = Engine::new(network.clone());
            let shared_report = engine.run(|ctx| {
                let msg = ctx.is_root().then(|| Arc::clone(&shared_payload));
                let out = coll::broadcast(ctx, &cfg, 0, msg, bits).expect("valid broadcast");
                out.0.len()
            });

            let engine = Engine::new(network.clone());
            let owned_report = engine.run(|ctx| {
                let msg = ctx.is_root().then(|| WireVec(vec![0u8; U_BYTES]));
                let out = coll::broadcast(ctx, &cfg, 0, msg, bits).expect("valid broadcast");
                out.0.len()
            });

            // The simulation must not see the payload representation.
            assert_eq!(
                shared_report,
                owned_report,
                "shared vs owned broadcast diverged on {} under {algorithm}",
                network.name()
            );
            let s = shared_report.copies;
            let o = owned_report.copies;
            if s.bytes_deep_copied > U_BYTES as u64 {
                eprintln!(
                    "# GATE 1 FAIL: shared {algorithm} bcast on {} deep-copied {} B (> {} B payload)",
                    network.name(),
                    s.bytes_deep_copied,
                    U_BYTES
                );
                gate_broadcast = false;
            }
            if s.bytes_owned_baseline == 0 || o.bytes_deep_copied == 0 {
                eprintln!(
                    "# GATE 1 FAIL: {algorithm} on {} recorded no fan-out traffic \
                     (baseline {} B, owned deep copies {} B) — telemetry broken",
                    network.name(),
                    s.bytes_owned_baseline,
                    o.bytes_deep_copied
                );
                gate_broadcast = false;
            }
            bcast_records.push(BroadcastRecord {
                network: network.name().to_string(),
                algorithm,
                payload_bytes: U_BYTES as u64,
                shared: s,
                owned: o,
            });
        }
    }

    // --- Gate 2: end-to-end ≥ 2× copy reduction on ATDCA + UFCLS.
    let mut gate_e2e = true;
    let mut e2e_rows = Vec::new();
    for algorithm in ["ATDCA", "UFCLS"] {
        for network in &networks {
            let r = records
                .iter()
                .find(|r| r.algorithm == algorithm && r.network == network.name())
                .expect("end-to-end record present");
            let c = r.copies;
            let ok =
                c.bytes_owned_baseline > 0 && 2 * c.bytes_deep_copied <= c.bytes_owned_baseline;
            if !ok {
                eprintln!(
                    "# GATE 2 FAIL: {algorithm} on {}: deep-copied {} B vs baseline {} B \
                     (need ≥ 2× reduction and a non-zero baseline)",
                    network.name(),
                    c.bytes_deep_copied,
                    c.bytes_owned_baseline
                );
                gate_e2e = false;
            }
            e2e_rows.push((algorithm, network.name().to_string(), c, ok));
        }
    }

    eprintln!(
        "# gate 1 (Arc tree broadcast deep-copies ≤ {} B payload, all nets × algos): {}",
        U_BYTES,
        if gate_broadcast { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 2 (ATDCA/UFCLS end-to-end ≥ 2x copy reduction vs owned baseline): {}",
        if gate_e2e { "PASS" } else { "FAIL" }
    );

    // Shared tristate contract (see `repro_bench::gate_status`): the
    // gate is "skipped" only when no measurements were taken at all.
    // The counters themselves are deterministic, so whenever the sweeps
    // ran, the gate is enforced on every host.
    let gate_meaningful = !records.is_empty() && !bcast_records.is_empty();
    let gate_passed = gate_broadcast && gate_e2e;
    let enforced = gate_meaningful;
    let payload = vec![
        ("host_cores", Json::Number(cores as f64)),
        (
            "scene",
            object(vec![
                ("name", Json::String(scene_name.clone())),
                ("lines", Json::Number(lines as f64)),
                ("samples", Json::Number(samples as f64)),
                ("bands", Json::Number(scene.cube.bands() as f64)),
            ]),
        ),
        (
            "runs",
            Json::Array(records.iter().map(WallclockRecord::to_json).collect()),
        ),
        (
            "broadcast_copy_sweep",
            Json::Array(bcast_records.iter().map(BroadcastRecord::to_json).collect()),
        ),
        (
            "e2e_reduction",
            Json::Array(
                e2e_rows
                    .iter()
                    .map(|(alg, net, c, ok)| {
                        object(vec![
                            ("algorithm", Json::String((*alg).into())),
                            ("network", Json::String(net.clone())),
                            ("copies", copies_json(c)),
                            ("reduced_2x", Json::Bool(*ok)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    let status = write_report(
        "BENCH_wallclock.json",
        payload,
        vec![
            // Deterministic counters → enforced on every host.
            ("enforced", Json::Bool(enforced)),
            ("broadcast_copy_bound", Json::Bool(gate_broadcast)),
            ("e2e_reduction_2x", Json::Bool(gate_e2e)),
        ],
        gate_meaningful,
        gate_passed,
    );

    if enforced && status == "failed" {
        eprintln!("# GATE FAILED");
        std::process::exit(1);
    }
}
