//! **Ablation A7** — fused allreduce + broadcast/compute overlap →
//! `BENCH_allreduce.json`.
//!
//! Sweeps the fused `simnet::coll::allreduce` schedules (linear,
//! binomial tree, segment-hierarchical, auto) over the paper's four
//! networks and two payload sizes, checking the analytic cost replay
//! against the measured virtual time at every point. Four gates, all
//! deterministic and always enforced:
//!
//! 1. **Fusion win (collective)** — the auto-selected allreduce is
//!    strictly cheaper than the legacy split (linear gather + linear
//!    broadcast) on `fully_heterogeneous()` at the candidate payload.
//! 2. **Fusion win (end-to-end)** — UFCLS under the fused winner
//!    selection is strictly faster than the legacy run on
//!    `fully_heterogeneous()`, with bit-identical targets.
//! 3. **Overlap win** — chunk-overlapped ATDCA and UFCLS are strictly
//!    faster than the full-payload pipelined broadcast on *both*
//!    serial-link networks, never slower on any network, with
//!    bit-identical targets.
//! 4. **Model exactness** — predicted equals measured (< 1e-6) at every
//!    swept allreduce point.
//!
//! ```text
//! cargo run -p repro-bench --release --bin ablation_allreduce
//! ```
//!
//! `HETEROSPEC_BENCH_OUT` overrides the JSON output path.

use hetero_hsi::config::{AlgoParams, RunOptions};
use repro_bench::microjson::{object, Json};
use repro_bench::{print_table, write_csv, write_report};
use simnet::engine::{Engine, WireVec};
use simnet::{coll, CollAlgorithm, CollectiveConfig, Platform};

/// A gathered ATDCA/UFCLS candidate: 128 header bits + 224 f32 bands.
const CAND_BITS: u64 = 128 + 224 * 32;
/// A bulkier payload (a 126-element f32 row block per rank).
const BULK_BITS: u64 = 129_024;

struct SweepRecord {
    network: String,
    bits: u64,
    requested: CollAlgorithm,
    resolved: CollAlgorithm,
    predicted: f64,
    measured: f64,
}

impl SweepRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("op", Json::String("allreduce".into())),
            ("network", Json::String(self.network.clone())),
            ("bits", Json::Number(self.bits as f64)),
            ("requested", Json::String(self.requested.to_string())),
            ("resolved", Json::String(self.resolved.to_string())),
            ("predicted_secs", Json::Number(self.predicted)),
            ("measured_secs", Json::Number(self.measured)),
        ])
    }
}

/// One isolated allreduce of `bits` payload; all rank clocks start at
/// zero, so `total_time` is the collective's completion time.
fn run_allreduce(
    platform: &Platform,
    requested: CollAlgorithm,
    bits: u64,
) -> (CollAlgorithm, f64, f64) {
    let cfg = CollectiveConfig {
        allreduce: requested,
        ..CollectiveConfig::linear()
    };
    let bytes = (bits / 8) as usize;
    let report = Engine::new(platform.clone()).run(|ctx| {
        let own = vec![ctx.rank() as u8; bytes];
        coll::allreduce(
            ctx,
            &cfg,
            0,
            WireVec(own),
            |a, b| {
                WireVec(
                    a.0.iter()
                        .zip(&b.0)
                        .map(|(x, y)| x.wrapping_add(*y))
                        .collect(),
                )
            },
            bits,
        )
        .0
        .len()
    });
    let choice = report
        .collectives
        .first()
        .expect("collective choice recorded");
    (choice.algorithm, choice.predicted_secs, report.total_time)
}

/// The legacy split the fused schedule replaces: a linear gather of one
/// candidate per rank followed by a linear broadcast of the winner.
fn run_split_baseline(platform: &Platform, bits: u64) -> f64 {
    let cfg = CollectiveConfig::linear();
    let bytes = (bits / 8) as usize;
    Engine::new(platform.clone())
        .run(|ctx| {
            let winner = coll::gather(ctx, &cfg, 0, WireVec(vec![ctx.rank() as u8; bytes]), bits)
                .map(|entries| {
                    entries
                        .into_iter()
                        .filter_map(coll::GatherEntry::into_msg)
                        .next()
                        .expect("root contribution")
                });
            coll::broadcast(ctx, &cfg, 0, winner, bits)
                .expect("valid broadcast")
                .0
                .len()
        })
        .total_time
}

/// ATDCA + UFCLS targets and total times under one option set.
#[allow(clippy::type_complexity)]
fn detection_outputs(
    scene: &hsi_cube::synth::SyntheticScene,
    platform: &Platform,
    options: &RunOptions,
) -> (
    Vec<(usize, usize, Vec<f32>)>,
    f64,
    Vec<(usize, usize, Vec<f32>)>,
    f64,
) {
    let params = AlgoParams {
        num_targets: 6,
        ..Default::default()
    };
    let engine = Engine::new(platform.clone());
    let digest = |ts: &[hetero_hsi::seq::DetectedTarget]| {
        ts.iter()
            .map(|t| (t.line, t.sample, t.spectrum.clone()))
            .collect::<Vec<_>>()
    };
    let atdca = hetero_hsi::par::atdca::run(&engine, &scene.cube, &params, options);
    let ufcls = hetero_hsi::par::ufcls::run(&engine, &scene.cube, &params, options);
    (
        digest(&atdca.result),
        atdca.report.total_time,
        digest(&ufcls.result),
        ufcls.report.total_time,
    )
}

fn main() {
    let networks = simnet::presets::four_networks();
    let algos = [
        CollAlgorithm::Linear,
        CollAlgorithm::BinomialTree,
        CollAlgorithm::SegmentHierarchical,
        CollAlgorithm::Auto,
    ];
    let sizes: [u64; 2] = [CAND_BITS, BULK_BITS];

    // --- Sweep + gate 4 (model exactness).
    let mut records: Vec<SweepRecord> = Vec::new();
    let mut model_exact = true;
    for network in &networks {
        for &bits in &sizes {
            for &alg in &algos {
                let (resolved, predicted, measured) = run_allreduce(network, alg, bits);
                if (predicted - measured).abs() > 1e-6 {
                    eprintln!(
                        "# MODEL DRIFT: allreduce {alg} on {} at {bits} bits: \
                         predicted {predicted} vs measured {measured}",
                        network.name()
                    );
                    model_exact = false;
                }
                records.push(SweepRecord {
                    network: network.name().to_string(),
                    bits,
                    requested: alg,
                    resolved,
                    predicted,
                    measured,
                });
            }
        }
    }

    // --- Gate 1: fused collective beats the split baseline.
    let fully_het = &networks[0];
    let (_, _, fused_cand) = run_allreduce(fully_het, CollAlgorithm::Auto, CAND_BITS);
    let split_cand = run_split_baseline(fully_het, CAND_BITS);
    let gate_collective = fused_cand < split_cand;

    // --- Gate 2: fused UFCLS end-to-end win with identical targets.
    let scene = hsi_cube::synth::wtc_scene(hsi_cube::synth::WtcConfig::tiny());
    let legacy_opts = RunOptions::hetero();
    let fused_opts = RunOptions::hetero().with_collectives(CollectiveConfig {
        allreduce: CollAlgorithm::Auto,
        ..CollectiveConfig::linear()
    });
    let legacy = detection_outputs(&scene, fully_het, &legacy_opts);
    let fused = detection_outputs(&scene, fully_het, &fused_opts);
    let gate_fused_e2e = fused.3 < legacy.3 && fused.2 == legacy.2 && fused.0 == legacy.0;
    if !gate_fused_e2e {
        eprintln!(
            "# FUSED E2E: ufcls {} vs legacy {}, outputs identical: {}",
            fused.3,
            legacy.3,
            fused.2 == legacy.2 && fused.0 == legacy.0
        );
    }

    // --- Gate 3: overlap never slower anywhere, strictly faster on the
    // serial-link networks, outputs identical everywhere.
    let chunked_opts = RunOptions::hetero().with_collectives(CollectiveConfig {
        broadcast: CollAlgorithm::PipelinedChunked,
        ..CollectiveConfig::linear()
    });
    let overlap_opts = chunked_opts.with_bcast_overlap(true);
    let mut gate_overlap = true;
    let mut overlap_rows = Vec::new();
    for (i, network) in networks.iter().enumerate() {
        let plain = detection_outputs(&scene, network, &chunked_opts);
        let over = detection_outputs(&scene, network, &overlap_opts);
        let identical = plain.0 == over.0 && plain.2 == over.2;
        let serial_link = i == 0 || i == 3; // fully_heterogeneous, partially_homogeneous
        let atdca_ok = if serial_link {
            over.1 < plain.1
        } else {
            over.1 <= plain.1 + 1e-9
        };
        let ufcls_ok = if serial_link {
            over.3 < plain.3
        } else {
            over.3 <= plain.3 + 1e-9
        };
        if !(identical && atdca_ok && ufcls_ok) {
            eprintln!(
                "# OVERLAP GATE on {}: identical={identical} atdca {} vs {} ufcls {} vs {}",
                network.name(),
                over.1,
                plain.1,
                over.3,
                plain.3
            );
            gate_overlap = false;
        }
        overlap_rows.push((
            network.name().to_string(),
            plain.1,
            over.1,
            plain.3,
            over.3,
            identical,
        ));
    }

    // --- Report.
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for r in &records {
        rows.push(vec![
            r.network.clone(),
            format!("{}", r.bits),
            r.requested.to_string(),
            r.resolved.to_string(),
            format!("{:.6}", r.predicted),
            format!("{:.6}", r.measured),
        ]);
        csv.push(format!(
            "{},{},{},{},{:.9},{:.9}",
            r.network, r.bits, r.requested, r.resolved, r.predicted, r.measured
        ));
    }
    print_table(
        "Ablation A7: fused allreduce — predicted vs measured virtual seconds",
        &[
            "Network",
            "Bits",
            "Requested",
            "Resolved",
            "Predicted",
            "Measured",
        ],
        &rows,
    );
    let overlap_table: Vec<Vec<String>> = overlap_rows
        .iter()
        .map(|(net, ap, ao, up, uo, same)| {
            vec![
                net.clone(),
                format!("{ap:.6}"),
                format!("{ao:.6}"),
                format!("{up:.6}"),
                format!("{uo:.6}"),
                format!("{same}"),
            ]
        })
        .collect();
    print_table(
        "Ablation A7: broadcast/compute overlap — total virtual seconds",
        &[
            "Network",
            "ATDCA plain",
            "ATDCA overlap",
            "UFCLS plain",
            "UFCLS overlap",
            "Identical",
        ],
        &overlap_table,
    );
    write_csv(
        "ablation_allreduce.csv",
        "network,bits,requested,resolved,predicted_secs,measured_secs",
        &csv,
    );
    eprintln!(
        "# gate 1 (fused allreduce < gather+bcast at candidate bits on {}): {} ({fused_cand:.6} vs {split_cand:.6})",
        fully_het.name(),
        if gate_collective { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 2 (fused UFCLS end-to-end win, identical targets): {} ({:.6} vs {:.6})",
        if gate_fused_e2e { "PASS" } else { "FAIL" },
        fused.3,
        legacy.3
    );
    eprintln!(
        "# gate 3 (overlap never slower, strict win on serial links): {}",
        if gate_overlap { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 4 (model exact across {} points): {}",
        records.len(),
        if model_exact { "PASS" } else { "FAIL" }
    );

    let all_passed = gate_collective && gate_fused_e2e && gate_overlap && model_exact;
    let payload = vec![
        (
            "sweep",
            Json::Array(records.iter().map(SweepRecord::to_json).collect()),
        ),
        (
            "fusion",
            object(vec![
                ("fused_auto_secs", Json::Number(fused_cand)),
                ("split_linear_secs", Json::Number(split_cand)),
                ("ufcls_fused_secs", Json::Number(fused.3)),
                ("ufcls_legacy_secs", Json::Number(legacy.3)),
            ]),
        ),
        (
            "overlap",
            Json::Array(
                overlap_rows
                    .iter()
                    .map(|(net, ap, ao, up, uo, same)| {
                        object(vec![
                            ("network", Json::String(net.clone())),
                            ("atdca_plain_secs", Json::Number(*ap)),
                            ("atdca_overlap_secs", Json::Number(*ao)),
                            ("ufcls_plain_secs", Json::Number(*up)),
                            ("ufcls_overlap_secs", Json::Number(*uo)),
                            ("outputs_identical", Json::Bool(*same)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    let status = write_report(
        "BENCH_allreduce.json",
        payload,
        vec![
            ("fused_beats_split_collective", Json::Bool(gate_collective)),
            ("fused_ufcls_end_to_end", Json::Bool(gate_fused_e2e)),
            ("overlap_never_slower", Json::Bool(gate_overlap)),
            ("model_exact", Json::Bool(model_exact)),
        ],
        true,
        all_passed,
    );

    if status == "failed" {
        eprintln!("# GATE FAILED");
        std::process::exit(1);
    }
}
