//! **Ablation A2** — WEA link-model sweep under charged staging.
//!
//! On the partially homogeneous network (identical CPUs, heterogeneous
//! links) the only thing a workload estimator can adapt to is the
//! network. This ablation compares the literal Algorithm 1 (`Ignore`),
//! the additive heuristic at several β, and the makespan-equalising
//! allocator, with the initial scatter charged at Table-2 rates.
//!
//! ```text
//! cargo run -p repro-bench --release --bin ablation_wea
//! ```

use hetero_hsi::config::{AlgoParams, PartitionStrategy, RunOptions};
use hetero_hsi::wea::{WeaConfig, WeaLinkModel};
use repro_bench::{build_scene, print_table, run_algorithm, write_csv};
use simnet::comm::ScatterMode;
use simnet::engine::Engine;

fn main() {
    let scene = build_scene();
    let params = AlgoParams::default();
    let networks = [
        simnet::presets::partially_homogeneous(),
        simnet::presets::fully_heterogeneous(),
    ];
    let models: Vec<(String, WeaLinkModel)> = vec![
        ("Ignore (Algorithm 1)".into(), WeaLinkModel::Ignore),
        (
            "Heuristic beta=0.5".into(),
            WeaLinkModel::Heuristic { beta: 0.5 },
        ),
        (
            "Heuristic beta=1.0".into(),
            WeaLinkModel::Heuristic { beta: 1.0 },
        ),
        (
            "Heuristic beta=2.0".into(),
            WeaLinkModel::Heuristic { beta: 2.0 },
        ),
        ("Makespan".into(), WeaLinkModel::Makespan),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, model) in &models {
        let options = RunOptions {
            strategy: PartitionStrategy::Heterogeneous(WeaConfig {
                link_model: *model,
                ..Default::default()
            }),
            scatter_mode: ScatterMode::Charged,
            ..Default::default()
        };
        let mut row = vec![label.clone()];
        let mut line = label.replace(',', ";");
        for network in &networks {
            eprintln!("# ATDCA with {label} on {}", network.name());
            let engine = Engine::new(network.clone());
            let run = run_algorithm("ATDCA", &engine, &scene, &params, &options);
            row.push(format!("{:.1}", run.report.total_time));
            line += &format!(",{:.2}", run.report.total_time);
        }
        rows.push(row);
        csv.push(line);
    }
    print_table(
        "Ablation A2: Hetero-ATDCA total time (s) by WEA link model, scatter charged",
        &["WEA link model", "Part hom", "Fully het"],
        &rows,
    );
    write_csv("ablation_wea.csv", "model,part_hom,fully_het", &csv);
}
