//! **Table 8** — execution times of the heterogeneous algorithms on the
//! Thunderhead Beowulf cluster for 1–256 processors.
//!
//! ```text
//! cargo run -p repro-bench --release --bin table8
//! ```

use hetero_hsi::config::AlgoParams;
use repro_bench::{build_scene, print_table, run_thunderhead_sweep, write_csv, ALGORITHMS};

fn main() {
    let scene = build_scene();
    let entries = run_thunderhead_sweep(&scene, &AlgoParams::default());

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &cpus in simnet::presets::THUNDERHEAD_SWEEP.iter() {
        let mut row = vec![format!("{cpus}")];
        let mut line = format!("{cpus}");
        for algorithm in ALGORITHMS {
            let e = entries
                .iter()
                .find(|e| e.algorithm == algorithm && e.cpus == cpus)
                .expect("sweep entry");
            row.push(format!("{:.1}", e.total));
            line += &format!(",{:.2}", e.total);
        }
        rows.push(row);
        csv.push(line);
    }
    print_table(
        "Table 8: execution times (s) on Thunderhead by processor count",
        &["CPUs", "ATDCA", "UFCLS", "PCT", "MORPH"],
        &rows,
    );
    write_csv("table8.csv", "cpus,atdca,ufcls,pct,morph", &csv);
}
