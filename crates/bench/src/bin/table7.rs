//! **Table 7** — load-balancing rates `D_all` and `D_minus`
//! (`R_max/R_min` over processor run times, with and without the root)
//! for the eight algorithm variants on the four networks.
//!
//! ```text
//! cargo run -p repro-bench --release --bin table7
//! ```

use hetero_hsi::config::AlgoParams;
use repro_bench::{build_scene, print_table, run_matrix, write_csv, ALGORITHMS};

fn main() {
    let scene = build_scene();
    let entries = run_matrix(&scene, &AlgoParams::default());
    let networks = [
        ("fully-heterogeneous", "F-het"),
        ("fully-homogeneous", "F-hom"),
        ("partially-heterogeneous", "P-het"),
        ("partially-homogeneous", "P-hom"),
    ];

    let mut header: Vec<String> = vec!["Algorithm".into()];
    for (_, short) in networks {
        header.push(format!("{short} D_all"));
        header.push(format!("{short} D_minus"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for algorithm in ALGORITHMS {
        for variant in ["Hetero", "Homo"] {
            let mut row = vec![format!("{variant}-{algorithm}")];
            let mut line = format!("{variant}-{algorithm}");
            for (net, _) in networks {
                let e = entries
                    .iter()
                    .find(|e| e.algorithm == algorithm && e.variant == variant && e.network == net)
                    .expect("matrix entry");
                row.push(format!("{:.2}", e.d_all));
                row.push(format!("{:.2}", e.d_minus));
                line += &format!(",{:.3},{:.3}", e.d_all, e.d_minus);
            }
            rows.push(row);
            csv.push(line);
        }
    }
    print_table(
        "Table 7: load balancing rates (perfect balance = 1.00)",
        &header_refs,
        &rows,
    );
    write_csv(
        "table7.csv",
        "algorithm,fhet_dall,fhet_dminus,fhom_dall,fhom_dminus,phet_dall,phet_dminus,phom_dall,phom_dminus",
        &csv,
    );
}
