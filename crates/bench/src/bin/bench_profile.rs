//! **Profiler gate** — exact phase accounting → `BENCH_profile.json`.
//!
//! Profiles the four algorithms over the paper's four networks plus
//! both fault-tolerant drivers under a crash plan, and enforces the
//! profiler's contract on **every** cell. Four deterministic gates,
//! always enforced:
//!
//! 1. **Identity exact** — every rank's eight-phase fold equals its
//!    wall-clock bitwise (`f64::to_bits`, no epsilon) in every cell;
//! 2. **Path bounded** — critical-path length ≤ makespan and
//!    `fl(length + slack) == makespan` bitwise in every cell;
//! 3. **Pure observer** — each cell's timing report with the profile
//!    stripped is identical to the same run without profiling;
//! 4. **Recovery attributed** — under a crash plan both drivers
//!    surface a non-zero recovery phase while staying exact.
//!
//! ```text
//! cargo run -p repro-bench --release --bin bench_profile
//! ```
//!
//! `HETEROSPEC_BENCH_OUT` overrides the JSON output path.

use hetero_hsi::config::{AlgoParams, RunOptions};
use hetero_hsi::ft::{run_replan, run_self_sched, FtOptions};
use hetero_hsi::sched::AtdcaChunks;
use hsi_cube::synth::wtc_scene;
use repro_bench::microjson::{object, Json};
use repro_bench::{print_table, run_algorithm, scene_config, write_csv, write_report, ALGORITHMS};
use simnet::engine::Engine;
use simnet::prof::RunProfile;
use simnet::FaultPlan;

/// One profiled (platform, workload) measurement.
struct Cell {
    platform: String,
    workload: String,
    makespan: f64,
    path_secs: f64,
    slack_secs: f64,
    bottleneck: String,
    share: f64,
    identity: bool,
    bounded: bool,
    observer: bool,
}

impl Cell {
    fn new(platform: &str, workload: String, prof: &RunProfile, observer: bool) -> Cell {
        let cp = &prof.critical_path;
        Cell {
            platform: platform.to_string(),
            workload,
            makespan: prof.makespan,
            path_secs: cp.length,
            slack_secs: cp.slack,
            bottleneck: cp.bottleneck.owner.clone(),
            share: cp.bottleneck.share,
            identity: prof.identity_holds(),
            bounded: prof.path_bounded(),
            observer,
        }
    }

    fn to_json(&self) -> Json {
        object(vec![
            ("platform", Json::String(self.platform.clone())),
            ("workload", Json::String(self.workload.clone())),
            ("makespan_secs", Json::Number(self.makespan)),
            ("path_secs", Json::Number(self.path_secs)),
            ("slack_secs", Json::Number(self.slack_secs)),
            ("bottleneck", Json::String(self.bottleneck.clone())),
            ("bottleneck_share", Json::Number(self.share)),
            ("identity_exact", Json::Bool(self.identity)),
            ("path_bounded", Json::Bool(self.bounded)),
            ("pure_observer", Json::Bool(self.observer)),
        ])
    }
}

fn main() {
    // A quarter-size scene keeps the 4 × 4 matrix quick; the gated
    // quantities are bitwise relations on deterministic virtual times,
    // so they are scale-independent.
    let mut cfg = scene_config();
    cfg.lines = (cfg.lines / 2).max(64);
    cfg.samples = (cfg.samples / 2).max(32);
    eprintln!("# scene: {} x {} x {}", cfg.lines, cfg.samples, cfg.bands);
    let scene = wtc_scene(cfg);
    let params = AlgoParams::default();
    let options = RunOptions::hetero();
    let mut cells: Vec<Cell> = Vec::new();

    // --- Algorithm × network matrix. ---------------------------------
    for platform in simnet::presets::four_networks() {
        for algorithm in ALGORITHMS {
            eprintln!("# profiling {algorithm} on {}", platform.name());
            let profiled = run_algorithm(
                algorithm,
                &Engine::new(platform.clone()).with_profiling(true),
                &scene,
                &params,
                &options,
            );
            let plain = run_algorithm(
                algorithm,
                &Engine::new(platform.clone()),
                &scene,
                &params,
                &options,
            );
            let mut report = profiled.report;
            let prof = report.profile.take().expect("profiled run has a profile");
            let observer = plain.report.profile.is_none() && report == plain.report;
            cells.push(Cell::new(
                platform.name(),
                algorithm.to_string(),
                &prof,
                observer,
            ));
        }
    }

    // --- Fault-tolerant drivers under a crash plan. ------------------
    let algo = AtdcaChunks::new(&scene.cube, &params);
    let opts = FtOptions::default();
    let mut gate_recovery = true;
    for mode in ["self-sched", "replan"] {
        eprintln!("# profiling ATDCA/{mode} under crash(5, 0.02)");
        let run = |profiling: bool| {
            let engine = Engine::new(simnet::presets::fully_heterogeneous())
                .with_faults(FaultPlan::new().crash(5, 0.02))
                .with_profiling(profiling);
            match mode {
                "self-sched" => run_self_sched(&engine, &algo, &opts).report,
                _ => run_replan(&engine, &algo, &opts).report,
            }
        };
        let mut report = run(true);
        let plain = run(false);
        let prof = report.profile.take().expect("profiled run has a profile");
        let observer = plain.profile.is_none() && report == plain;
        gate_recovery &= prof.ranks.iter().any(|r| r.phases.recovery > 0.0);
        cells.push(Cell::new(
            "fully-heterogeneous",
            format!("ATDCA/{mode}+crash"),
            &prof,
            observer,
        ));
    }

    // --- Gates: enforced on every cell, no exceptions. ---------------
    let gate_identity = cells.iter().all(|c| c.identity);
    let gate_bounded = cells.iter().all(|c| c.bounded);
    let gate_observer = cells.iter().all(|c| c.observer);

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.platform.clone(),
                c.workload.clone(),
                format!("{:.3}", c.makespan),
                format!("{:.3}", c.path_secs),
                format!("{:.3}", c.slack_secs),
                c.bottleneck.clone(),
                format!("{:.1}", c.share * 100.0),
                format!("{}", c.identity && c.bounded && c.observer),
            ]
        })
        .collect();
    print_table(
        "Profiler gate: exact accounting + critical path on every cell",
        &[
            "Platform",
            "Workload",
            "Makespan s",
            "Path s",
            "Slack s",
            "Bottleneck",
            "Share %",
            "Exact",
        ],
        &rows,
    );
    write_csv(
        "bench_profile.csv",
        "platform,workload,makespan,path,slack,bottleneck,share,identity,bounded,observer",
        &cells
            .iter()
            .map(|c| {
                format!(
                    "{},{},{:.9},{:.9},{:.9},{},{:.6},{},{},{}",
                    c.platform,
                    c.workload,
                    c.makespan,
                    c.path_secs,
                    c.slack_secs,
                    c.bottleneck,
                    c.share,
                    c.identity,
                    c.bounded,
                    c.observer
                )
            })
            .collect::<Vec<_>>(),
    );

    eprintln!(
        "# gate 1 (accounting identity bitwise in all {} cells): {}",
        cells.len(),
        if gate_identity { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 2 (critical path bounded in all cells): {}",
        if gate_bounded { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 3 (profiling is a pure observer): {}",
        if gate_observer { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 4 (crash runs attribute a recovery phase): {}",
        if gate_recovery { "PASS" } else { "FAIL" }
    );

    let all_passed = gate_identity && gate_bounded && gate_observer && gate_recovery;
    let status = write_report(
        "BENCH_profile.json",
        vec![(
            "cells",
            Json::Array(cells.iter().map(Cell::to_json).collect()),
        )],
        vec![
            ("identity_exact", Json::Bool(gate_identity)),
            ("path_bounded", Json::Bool(gate_bounded)),
            ("pure_observer", Json::Bool(gate_observer)),
            ("recovery_attributed", Json::Bool(gate_recovery)),
        ],
        true,
        all_passed,
    );

    if status == "failed" {
        eprintln!("# GATE FAILED");
        std::process::exit(1);
    }
}
