//! **Ablation A8** — epoch-stamped membership for the ft tree
//! collectives → `BENCH_epochs.json`.
//!
//! The fault-tolerant drivers can ship each round's state down an
//! epoch-stamped survivor tree ([`FtOptions::collectives`]) instead of
//! the linear master fan-out. Two deterministic gates, always enforced:
//!
//! 1. **Zero surviving-contribution loss** — under every swept crash
//!    plan (interior relays and a leaf, barrier-phase through
//!    late-round times, single and double losses), the fixed-grid
//!    self-scheduling driver on the survivor tree produces a target
//!    list bit-identical to its fault-free run (spectra included), the
//!    re-planning driver matches its own fault-free output, and every
//!    observed loss bumps the membership epoch exactly once.
//! 2. **Tree beats linear** — the tree-mode drivers complete strictly
//!    faster than the linear fan-out on `fully_heterogeneous()`, with
//!    bit-identical outputs, both fault-free and under a mid-run relay
//!    crash.
//!
//! ```text
//! cargo run -p repro-bench --release --bin ablation_epochs
//! ```
//!
//! `HETEROSPEC_BENCH_OUT` overrides the JSON output path.

use hetero_hsi::config::AlgoParams;
use hetero_hsi::ft::{run_replan, run_self_sched, FtOptions, FtRun};
use hetero_hsi::sched::AtdcaChunks;
use hetero_hsi::seq::DetectedTarget;
use hsi_cube::synth::wtc_scene;
use repro_bench::microjson::{object, Json};
use repro_bench::{print_table, scene_config, write_csv, write_report};
use simnet::engine::Engine;
use simnet::{CollAlgorithm, CollectiveConfig, FaultPlan};

/// Full-fidelity output digest: coordinates *and* spectra, so a lost or
/// substituted contribution cannot hide behind a matching pixel count.
fn digest(targets: &[DetectedTarget]) -> Vec<(usize, usize, Vec<f32>)> {
    targets
        .iter()
        .map(|t| (t.line, t.sample, t.spectrum.clone()))
        .collect()
}

fn tree_opts() -> FtOptions {
    FtOptions {
        collectives: CollectiveConfig::uniform(CollAlgorithm::SegmentHierarchical),
        ..FtOptions::default()
    }
}

fn main() {
    // A quarter-size scene keeps the sweep quick; timing ratios and
    // output identity are scale-free.
    let mut cfg = scene_config();
    cfg.lines = (cfg.lines / 2).max(64);
    cfg.samples = (cfg.samples / 2).max(32);
    eprintln!("# scene: {} x {} x {}", cfg.lines, cfg.samples, cfg.bands);
    let scene = wtc_scene(cfg);
    let params = AlgoParams::default();
    let algo = AtdcaChunks::new(&scene.cube, &params);

    let run = |plan: FaultPlan, opts: &FtOptions, self_sched: bool| -> FtRun<_> {
        let engine = Engine::new(simnet::presets::fully_heterogeneous()).with_faults(plan);
        if self_sched {
            run_self_sched(&engine, &algo, opts)
        } else {
            run_replan(&engine, &algo, opts)
        }
    };

    eprintln!("# fault-free baselines (tree and linear, both drivers)");
    let base_tree_ss = run(FaultPlan::new(), &tree_opts(), true);
    let base_tree_rp = run(FaultPlan::new(), &tree_opts(), false);
    let base_lin_ss = run(FaultPlan::new(), &FtOptions::default(), true);
    let base_lin_rp = run(FaultPlan::new(), &FtOptions::default(), false);
    let d_tree_ss = digest(&base_tree_ss.output);
    let d_tree_rp = digest(&base_tree_rp.output);
    let t0 = base_tree_ss.report.total_time;
    eprintln!(
        "# T0 tree: ss {:.3}s rp {:.3}s | linear: ss {:.3}s rp {:.3}s",
        t0,
        base_tree_rp.report.total_time,
        base_lin_ss.report.total_time,
        base_lin_rp.report.total_time,
    );

    // Surface the dominant critical-path contributor of the fault-free
    // tree run (observability only — never gated here).
    {
        let engine = Engine::new(simnet::presets::fully_heterogeneous()).with_profiling(true);
        let profiled = run_self_sched(&engine, &algo, &tree_opts());
        if let Some(p) = &profiled.report.profile {
            eprintln!("# tree self-sched {}", p.bottleneck_line());
        }
    }

    // --- Gate 1: survivor contributions survive every crash plan. ----
    // Ranks 4, 8 and 10 lead segments of `fully_heterogeneous` (interior
    // relays of the segment-hierarchical tree); 13 is a leaf. Times are
    // fractions of the fault-free tree run, from barrier-phase (~0) to
    // late-round, plus a double loss of two relays.
    let plans: Vec<(String, FaultPlan)> = vec![
        ("relay 4 @ barrier".into(), FaultPlan::new().crash(4, 1e-4)),
        (
            "relay 4 @ 0.25 T0".into(),
            FaultPlan::new().crash(4, 0.25 * t0),
        ),
        (
            "relay 8 @ 0.50 T0".into(),
            FaultPlan::new().crash(8, 0.50 * t0),
        ),
        (
            "relay 10 @ 0.75 T0".into(),
            FaultPlan::new().crash(10, 0.75 * t0),
        ),
        (
            "leaf 13 @ 0.40 T0".into(),
            FaultPlan::new().crash(13, 0.40 * t0),
        ),
        (
            "relays 4+10 @ 0.20/0.55 T0".into(),
            FaultPlan::new().crash(4, 0.20 * t0).crash(10, 0.55 * t0),
        ),
    ];
    let mut gate_no_loss = true;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut sweep_json = Vec::new();
    for (label, plan) in &plans {
        let ss = run(plan.clone(), &tree_opts(), true);
        let rp = run(plan.clone(), &tree_opts(), false);
        let ss_ok = digest(&ss.output) == d_tree_ss;
        let rp_ok = digest(&rp.output) == d_tree_rp;
        let epochs_ok = ss.report.epochs.len() == ss.recoveries.len()
            && rp.report.epochs.len() == rp.recoveries.len();
        // Replays are bit-identical, reports included.
        let ss2 = run(plan.clone(), &tree_opts(), true);
        let replay_ok = ss.report == ss2.report && digest(&ss2.output) == digest(&ss.output);
        let ok = ss_ok && rp_ok && epochs_ok && replay_ok;
        gate_no_loss &= ok;
        rows.push(vec![
            label.clone(),
            format!("{}", ss.recoveries.len()),
            format!("{}", ss.report.epochs.len()),
            format!("{:.3}", ss.report.total_time),
            format!("{:.3}", rp.report.total_time),
            format!("{ok}"),
        ]);
        csv.push(format!(
            "{label},{},{},{:.6},{:.6},{ok}",
            ss.recoveries.len(),
            ss.report.epochs.len(),
            ss.report.total_time,
            rp.report.total_time,
        ));
        sweep_json.push(object(vec![
            ("plan", Json::String(label.clone())),
            ("recoveries", Json::Number(ss.recoveries.len() as f64)),
            ("epoch_bumps", Json::Number(ss.report.epochs.len() as f64)),
            ("selfsched_secs", Json::Number(ss.report.total_time)),
            ("replan_secs", Json::Number(rp.report.total_time)),
            ("selfsched_output_identical", Json::Bool(ss_ok)),
            ("replan_output_identical", Json::Bool(rp_ok)),
            ("replay_identical", Json::Bool(replay_ok)),
        ]));
        if !ok {
            eprintln!("# LOSS under plan '{label}': ss {ss_ok} rp {rp_ok} epochs {epochs_ok} replay {replay_ok}");
        }
    }
    print_table(
        "Ablation A8: epoch-stamped tree ft under crash plans (ATDCA)",
        &[
            "Plan",
            "Losses",
            "Epochs",
            "SelfSched s",
            "Replan s",
            "Intact",
        ],
        &rows,
    );
    write_csv(
        "ablation_epochs.csv",
        "plan,recoveries,epoch_bumps,t_selfsched,t_replan,intact",
        &csv,
    );

    // --- Gate 2: tree mode strictly beats the linear fan-out. --------
    let same_outputs =
        d_tree_ss == digest(&base_lin_ss.output) && d_tree_rp == digest(&base_lin_rp.output);
    let faultfree_win = base_tree_ss.report.total_time < base_lin_ss.report.total_time
        && base_tree_rp.report.total_time < base_lin_rp.report.total_time;
    let crash_plan = || FaultPlan::new().crash(4, 0.25 * t0);
    let crash_tree_rp = run(crash_plan(), &tree_opts(), false);
    let crash_lin_rp = run(crash_plan(), &FtOptions::default(), false);
    let crash_win = crash_tree_rp.report.total_time < crash_lin_rp.report.total_time;
    let gate_tree_wins = faultfree_win && crash_win && same_outputs;
    eprintln!(
        "# gate 1 (zero surviving-contribution loss across {} plans): {}",
        plans.len(),
        if gate_no_loss { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 2 (tree < linear, identical outputs): {} (ss {:.3} vs {:.3}, rp {:.3} vs {:.3}, crashed rp {:.3} vs {:.3})",
        if gate_tree_wins { "PASS" } else { "FAIL" },
        base_tree_ss.report.total_time,
        base_lin_ss.report.total_time,
        base_tree_rp.report.total_time,
        base_lin_rp.report.total_time,
        crash_tree_rp.report.total_time,
        crash_lin_rp.report.total_time,
    );

    let all_passed = gate_no_loss && gate_tree_wins;
    let payload = vec![
        ("sweep", Json::Array(sweep_json)),
        (
            "tree_vs_linear",
            object(vec![
                (
                    "tree_selfsched_secs",
                    Json::Number(base_tree_ss.report.total_time),
                ),
                (
                    "linear_selfsched_secs",
                    Json::Number(base_lin_ss.report.total_time),
                ),
                (
                    "tree_replan_secs",
                    Json::Number(base_tree_rp.report.total_time),
                ),
                (
                    "linear_replan_secs",
                    Json::Number(base_lin_rp.report.total_time),
                ),
                (
                    "crashed_tree_replan_secs",
                    Json::Number(crash_tree_rp.report.total_time),
                ),
                (
                    "crashed_linear_replan_secs",
                    Json::Number(crash_lin_rp.report.total_time),
                ),
                ("outputs_identical", Json::Bool(same_outputs)),
            ]),
        ),
    ];
    let status = write_report(
        "BENCH_epochs.json",
        payload,
        vec![
            ("no_contribution_loss", Json::Bool(gate_no_loss)),
            ("tree_beats_linear", Json::Bool(gate_tree_wins)),
        ],
        true,
        all_passed,
    );

    if status == "failed" {
        eprintln!("# GATE FAILED");
        std::process::exit(1);
    }
}
