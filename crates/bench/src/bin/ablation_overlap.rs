//! **Ablation A3** — MORPH overlap policy: exact halos
//! (`2·r·I_max` lines, bit-identical interior scores) versus the
//! paper-style single-kernel halo (`r` lines, slight boundary effects).
//!
//! Reports both the timing impact (redundant computation grows with
//! processor count) and the classification-accuracy impact.
//!
//! ```text
//! cargo run -p repro-bench --release --bin ablation_overlap
//! ```

use hetero_hsi::config::{AlgoParams, OverlapPolicy, RunOptions};
use hetero_hsi::eval::debris_accuracy;
use hsi_cube::synth::materials::NUM_DEBRIS_CLASSES;
use repro_bench::{build_scene, print_table, write_csv};
use simnet::engine::Engine;

fn main() {
    let scene = build_scene();
    let params = AlgoParams::default();
    let cpu_counts = [4usize, 16, 64, 256];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for policy in [OverlapPolicy::SingleKernel, OverlapPolicy::Exact] {
        let options = RunOptions {
            morph_overlap: policy,
            ..RunOptions::hetero()
        };
        for &cpus in &cpu_counts {
            eprintln!("# MORPH ({policy:?}) on thunderhead({cpus})");
            let engine = Engine::new(simnet::presets::thunderhead(cpus));
            let run = hetero_hsi::par::morph::run(&engine, &scene.cube, &params, &options);
            let acc = debris_accuracy(&scene, &run.result.0, NUM_DEBRIS_CLASSES).overall;
            rows.push(vec![
                format!("{policy:?}"),
                format!("{cpus}"),
                format!("{:.1}", run.report.total_time),
                format!("{acc:.2}"),
            ]);
            csv.push(format!(
                "{policy:?},{cpus},{:.2},{acc:.2}",
                run.report.total_time
            ));
        }
    }
    print_table(
        "Ablation A3: MORPH overlap policy vs processor count",
        &["Overlap", "CPUs", "Time (s)", "Debris acc (%)"],
        &rows,
    );
    write_csv(
        "ablation_overlap.csv",
        "policy,cpus,total_s,debris_acc",
        &csv,
    );
}
