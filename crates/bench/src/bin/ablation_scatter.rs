//! **Ablation A1** — effect of charging the initial data scatter.
//!
//! The paper's reported COM magnitudes imply the image was pre-staged
//! (see DESIGN.md); this ablation quantifies what full Table-2-rate
//! staging would cost on each network, and shows the makespan WEA
//! adapting to the links when staging is charged.
//!
//! ```text
//! cargo run -p repro-bench --release --bin ablation_scatter
//! ```

use hetero_hsi::config::{AlgoParams, RunOptions};
use repro_bench::{build_scene, print_table, run_algorithm, write_csv};
use simnet::comm::ScatterMode;
use simnet::engine::Engine;

fn main() {
    let scene = build_scene();
    let params = AlgoParams::default();
    let networks = simnet::presets::four_networks();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for algorithm in ["ATDCA", "MORPH"] {
        for (variant, base) in [
            ("Hetero", RunOptions::hetero()),
            ("Homo", RunOptions::homo()),
        ] {
            for mode in [ScatterMode::Free, ScatterMode::Charged] {
                let options = RunOptions {
                    scatter_mode: mode,
                    ..base
                };
                let mut row = vec![format!("{variant}-{algorithm}"), format!("{mode:?}")];
                let mut line = format!("{variant}-{algorithm},{mode:?}");
                for network in &networks {
                    eprintln!("# {variant}-{algorithm} ({mode:?}) on {}", network.name());
                    let engine = Engine::new(network.clone());
                    let run = run_algorithm(algorithm, &engine, &scene, &params, &options);
                    row.push(format!("{:.1}", run.report.total_time));
                    line += &format!(",{:.2}", run.report.total_time);
                }
                rows.push(row);
                csv.push(line);
            }
        }
    }
    print_table(
        "Ablation A1: total time (s) with free vs charged initial scatter",
        &[
            "Algorithm",
            "Scatter",
            "Fully het",
            "Fully hom",
            "Part het",
            "Part hom",
        ],
        &rows,
    );
    write_csv(
        "ablation_scatter.csv",
        "algorithm,scatter,fully_het,fully_hom,part_het,part_hom",
        &csv,
    );
}
