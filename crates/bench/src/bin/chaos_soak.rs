//! `chaos_soak` — budgeted differential-fuzzing campaign over the
//! whole stack (see `crates/chaos` and `docs/TESTING.md`).
//!
//! Draws scenarios from a pinned base seed, checks each against the
//! seven-invariant oracle, shrinks every violation to a minimal
//! reproducer, and emits `BENCH_chaos.json` through the shared
//! [`repro_bench::write_report`] envelope. Deterministic: the same
//! seed and scenario count reproduce the same campaign bit-for-bit on
//! any host (the wall-clock budget is the only nondeterministic knob —
//! leave it unset for pinned CI runs).
//!
//! Environment:
//!
//! * `HETEROSPEC_CHAOS_SEED` — base seed (default `20060925`; scenario
//!   `i` uses `seed + i`).
//! * `HETEROSPEC_CHAOS_SCENARIOS` — campaign size (default 500).
//! * `HETEROSPEC_CHAOS_BUDGET_S` — optional wall-clock budget in
//!   seconds; the campaign stops drawing new scenarios once exceeded
//!   and reports how many it completed.
//! * `HETEROSPEC_BENCH_OUT` — output path (default `BENCH_chaos.json`).
//!
//! Gates (all enforced):
//!
//! * `zero_shrunk_failures` — no scenario violated any invariant;
//! * `all_invariants_exercised` — every one of the seven invariants
//!   performed at least one comparison across the campaign;
//! * `shrinker_selftest` — with an injected invariant break, the
//!   shrinker converges to ≤ 3 ranks and ≤ 1 fault event (the harness
//!   can fail, and failures minimize).
//!
//! On violation the full Rust reproducer (a pasteable `#[test]`) is
//! printed to stderr and a structured record lands in the report's
//! `failures` array.

use chaos::{reproducer, shrink, CheckCounts, Injection, Invariant, Oracle, Scenario, Shrunk};
use repro_bench::microjson::{object, Json};
use repro_bench::write_report;
use std::time::Instant;
use testutil::gen::FaultEvent;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Injects a deliberate break and asserts the shrinker minimizes it —
/// the soak's proof that a red scenario would actually surface small.
fn shrinker_selftest() -> bool {
    let oracle = Oracle::with_injection(Injection::FailOnCrash);
    let mut bloated = Scenario::generate(3);
    bloated.ranks = 8;
    bloated.segments = 3;
    bloated.faults = vec![
        FaultEvent::Slowdown {
            rank: 3,
            from: 0.0,
            until: 0.2,
            factor: 2.5,
        },
        FaultEvent::Crash { rank: 5, at: 0.05 },
        FaultEvent::LinkOutage {
            seg_a: 0,
            seg_b: 2,
            from: 0.01,
            until: 0.04,
        },
    ];
    let Some(violation) = oracle.check(&bloated).violation else {
        eprintln!("# selftest: injected oracle failed to reject a crash scenario");
        return false;
    };
    let minimal = shrink(&oracle, &bloated, &violation);
    let ok = minimal.scenario.ranks <= 3
        && minimal.scenario.faults.len() <= 1
        && minimal.scenario.faults.iter().all(FaultEvent::is_crash);
    eprintln!(
        "# selftest: injected break shrank to {} ranks, {} fault(s) in {} steps: {}",
        minimal.scenario.ranks,
        minimal.scenario.faults.len(),
        minimal.steps,
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

fn failure_json(f: &Shrunk) -> Json {
    let s = &f.scenario;
    object(vec![
        (
            "invariant",
            Json::String(f.violation.invariant.name().into()),
        ),
        ("detail", Json::String(f.violation.detail.clone())),
        ("seed", Json::Number(s.seed as f64)),
        ("ranks", Json::Number(s.ranks as f64)),
        ("segments", Json::Number(s.segments as f64)),
        ("algo", Json::String(format!("{:?}", s.algo))),
        ("driver", Json::String(format!("{:?}", s.driver))),
        ("collective", Json::String(format!("{:?}", s.collective))),
        ("offload", Json::String(format!("{:?}", s.offload))),
        (
            "scene",
            Json::Array(vec![
                Json::Number(s.lines as f64),
                Json::Number(s.samples as f64),
                Json::Number(s.bands as f64),
            ]),
        ),
        ("chunk_lines", Json::Number(s.chunk_lines as f64)),
        (
            "faults",
            Json::Array(
                s.faults
                    .iter()
                    .map(|e| Json::String(format!("{e:?}")))
                    .collect(),
            ),
        ),
        ("shrink_steps", Json::Number(f.steps as f64)),
    ])
}

fn main() {
    let base_seed = env_u64("HETEROSPEC_CHAOS_SEED", 20_060_925);
    let requested = env_u64("HETEROSPEC_CHAOS_SCENARIOS", 500) as usize;
    let budget_s = env_u64("HETEROSPEC_CHAOS_BUDGET_S", 0);
    let started = Instant::now();

    let selftest_ok = shrinker_selftest();

    let oracle = Oracle::new();
    let mut totals = CheckCounts::default();
    let mut completed = 0usize;
    let mut skipped = 0usize;
    let mut failures: Vec<Shrunk> = Vec::new();
    for i in 0..requested {
        if budget_s > 0 && started.elapsed().as_secs() >= budget_s {
            eprintln!("# budget of {budget_s}s exhausted after {completed} scenarios");
            break;
        }
        let scenario = Scenario::generate(base_seed + i as u64);
        let verdict = oracle.check(&scenario);
        totals.merge(&verdict.counts);
        completed += 1;
        if verdict.skipped {
            skipped += 1;
            continue;
        }
        if let Some(violation) = verdict.violation {
            eprintln!(
                "# VIOLATION at seed {}: [{}] {}",
                scenario.seed,
                violation.invariant.name(),
                violation.detail
            );
            let minimal = shrink(&oracle, &scenario, &violation);
            eprintln!(
                "# shrunk in {} steps to {} ranks / {} fault(s); reproducer:",
                minimal.steps,
                minimal.scenario.ranks,
                minimal.scenario.faults.len()
            );
            eprintln!("{}", reproducer(&minimal.scenario, &minimal.violation));
            // Unique by minimized shape: the same root cause found via
            // different seeds shrinks to the same scenario.
            if !failures.iter().any(|f| {
                f.scenario == minimal.scenario
                    && f.violation.invariant == minimal.violation.invariant
            }) {
                failures.push(minimal);
            }
        }
    }

    let gate_zero_failures = failures.is_empty();
    let gate_all_exercised = Invariant::ALL.iter().all(|&i| totals.of(i) > 0);
    eprintln!(
        "# {completed}/{requested} scenarios, {} checks total, {skipped} skipped, {} unique shrunk failure(s)",
        totals.total(),
        failures.len()
    );
    for invariant in Invariant::ALL {
        eprintln!(
            "#   {:<24} {:>8} checks",
            invariant.name(),
            totals.of(invariant)
        );
    }
    eprintln!(
        "# gate 1 (zero shrunk failures): {}",
        if gate_zero_failures { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 2 (all seven invariants exercised): {}",
        if gate_all_exercised { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 3 (shrinker selftest): {}",
        if selftest_ok { "PASS" } else { "FAIL" }
    );

    let checks = object(
        Invariant::ALL
            .iter()
            .map(|&i| (i.name(), Json::Number(totals.of(i) as f64)))
            .collect(),
    );
    let all_passed = gate_zero_failures && gate_all_exercised && selftest_ok;
    // Meaningful only if the campaign ran at all (a zero-scenario run
    // proves nothing and must read "skipped", not "passed").
    let status = write_report(
        "BENCH_chaos.json",
        vec![
            ("base_seed", Json::Number(base_seed as f64)),
            ("scenarios_requested", Json::Number(requested as f64)),
            ("scenarios_completed", Json::Number(completed as f64)),
            ("scenarios_skipped", Json::Number(skipped as f64)),
            ("checks", checks),
            (
                "failures",
                Json::Array(failures.iter().map(failure_json).collect()),
            ),
            (
                "elapsed_secs",
                Json::Number(started.elapsed().as_secs_f64()),
            ),
        ],
        vec![
            ("zero_shrunk_failures", Json::Bool(gate_zero_failures)),
            ("all_invariants_exercised", Json::Bool(gate_all_exercised)),
            ("shrinker_selftest", Json::Bool(selftest_ok)),
        ],
        completed > 0,
        all_passed,
    );

    if status == "failed" {
        eprintln!("# GATE FAILED");
        std::process::exit(1);
    }
}
