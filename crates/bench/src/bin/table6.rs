//! **Table 6** — communication (COM), sequential computation (SEQ) and
//! parallel computation (PAR) times for the eight algorithm variants on
//! the four networks.
//!
//! ```text
//! cargo run -p repro-bench --release --bin table6
//! ```

use hetero_hsi::config::AlgoParams;
use repro_bench::{build_scene, print_table, run_matrix, write_csv, ALGORITHMS};

fn main() {
    let scene = build_scene();
    let entries = run_matrix(&scene, &AlgoParams::default());
    let networks = [
        ("fully-heterogeneous", "F-het"),
        ("fully-homogeneous", "F-hom"),
        ("partially-heterogeneous", "P-het"),
        ("partially-homogeneous", "P-hom"),
    ];

    let mut header: Vec<String> = vec!["Algorithm".into()];
    for (_, short) in networks {
        for metric in ["COM", "SEQ", "PAR"] {
            header.push(format!("{short} {metric}"));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for algorithm in ALGORITHMS {
        for variant in ["Hetero", "Homo"] {
            let mut row = vec![format!("{variant}-{algorithm}")];
            let mut line = format!("{variant}-{algorithm}");
            for (net, _) in networks {
                let e = entries
                    .iter()
                    .find(|e| e.algorithm == algorithm && e.variant == variant && e.network == net)
                    .expect("matrix entry");
                for v in [e.com, e.seq, e.par] {
                    row.push(format!("{v:.1}"));
                    line += &format!(",{v:.2}");
                }
            }
            rows.push(row);
            csv.push(line);
        }
    }
    print_table(
        "Table 6: COM / SEQ / PAR decomposition (s) per network",
        &header_refs,
        &rows,
    );
    write_csv(
        "table6.csv",
        "algorithm,fhet_com,fhet_seq,fhet_par,fhom_com,fhom_seq,fhom_par,phet_com,phet_seq,phet_par,phom_com,phom_seq,phom_par",
        &csv,
    );
}
