//! **Ablation A5** — recovery overhead of the two fault-tolerance
//! modes under deterministic crash plans.
//!
//! A fault-free run of each mode fixes its baseline completion time
//! `T₀`; the sweep then crashes one or two workers at a fraction of
//! `T₀` and reports the relative completion-time overhead
//! `(T − T₀)/T₀`. Static WEA with re-planning restarts the lost
//! worker's whole outstanding batch on the survivors, so its overhead
//! grows with how much of the partition the crash orphans; chunked
//! self-scheduling re-queues at most one in-flight chunk, so mid-run
//! crashes cost it only detection latency plus one chunk.
//!
//! ```text
//! cargo run -p repro-bench --release --bin ablation_faults
//! ```

use hetero_hsi::config::AlgoParams;
use hetero_hsi::ft::{run_replan, run_self_sched, FtOptions, FtRun};
use hetero_hsi::sched::AtdcaChunks;
use hsi_cube::synth::wtc_scene;
use repro_bench::{print_table, scene_config, write_csv};
use simnet::engine::Engine;
use simnet::FaultPlan;

fn main() {
    // A quarter-size scene keeps the sweep quick; overhead ratios are
    // scale-free.
    let mut cfg = scene_config();
    cfg.lines = (cfg.lines / 2).max(64);
    cfg.samples = (cfg.samples / 2).max(32);
    eprintln!("# scene: {} x {} x {}", cfg.lines, cfg.samples, cfg.bands);
    let scene = wtc_scene(cfg);
    let params = AlgoParams::default();
    let algo = AtdcaChunks::new(&scene.cube, &params);
    let opts = FtOptions::default();
    let platform = || simnet::presets::fully_heterogeneous();

    let run = |plan: FaultPlan, self_sched: bool| -> FtRun<_> {
        let engine = Engine::new(platform()).with_faults(plan);
        if self_sched {
            run_self_sched(&engine, &algo, &opts)
        } else {
            run_replan(&engine, &algo, &opts)
        }
    };

    eprintln!("# fault-free baselines");
    let t0_replan = run(FaultPlan::new(), false).report.total_time;
    let t0_ss = run(FaultPlan::new(), true).report.total_time;
    eprintln!("# T0 replan {t0_replan:.3}s, T0 self-sched {t0_ss:.3}s");

    // Crash the WEA-favoured fast node first; a second loss takes a
    // mid-speed node in the other segment.
    let crash_ranks = [2usize, 9];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &frac in &[0.25f64, 0.5, 0.75] {
        for count in [1usize, 2] {
            let plan_for = |t0: f64| {
                let mut plan = FaultPlan::new();
                for &r in &crash_ranks[..count] {
                    plan = plan.crash(r, frac * t0);
                }
                plan
            };
            eprintln!("# crash at {frac} x T0, {count} worker(s)");
            let rp = run(plan_for(t0_replan), false);
            let ss = run(plan_for(t0_ss), true);
            let ovh_rp = 100.0 * (rp.report.total_time - t0_replan) / t0_replan;
            let ovh_ss = 100.0 * (ss.report.total_time - t0_ss) / t0_ss;
            rows.push(vec![
                format!("{frac:.2}"),
                format!("{count}"),
                format!("{:.2}", rp.report.total_time),
                format!("{ovh_rp:+.1}%"),
                format!("{:.2}", ss.report.total_time),
                format!("{ovh_ss:+.1}%"),
                format!("{}", rp.recoveries.len()),
                format!("{}", ss.recoveries.len()),
            ]);
            csv.push(format!(
                "{frac},{count},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                t0_replan, rp.report.total_time, ovh_rp, t0_ss, ss.report.total_time, ovh_ss,
            ));
        }
    }
    print_table(
        &format!(
            "Ablation A5: ATDCA completion time (s) under worker crashes \
             (T0: replan {t0_replan:.2}s, self-sched {t0_ss:.2}s)"
        ),
        &[
            "Crash@xT0",
            "Crashes",
            "Replan",
            "ovh",
            "SelfSched",
            "ovh",
            "rec(rp)",
            "rec(ss)",
        ],
        &rows,
    );
    write_csv(
        "ablation_faults.csv",
        "crash_frac,crash_count,t0_replan,t_replan,ovh_replan_pct,t0_selfsched,t_selfsched,ovh_selfsched_pct",
        &csv,
    );
}
