//! **Ablation A6** — collective algorithm selection → `BENCH_collectives.json`.
//!
//! Sweeps the `simnet::coll` schedules (linear, binomial tree,
//! segment-hierarchical, pipelined-chunked, auto) over the paper's four
//! networks and a range of message sizes, comparing each algorithm's
//! *measured* virtual completion time against the cost model's
//! *prediction* (they agree exactly for healthy rank-0-rooted runs —
//! that equality is what makes `Auto` trustworthy). Three gates, all
//! deterministic and always enforced:
//!
//! 1. **Topology win** — segment-hierarchical broadcast strictly beats
//!    linear on `fully_heterogeneous()` for an endmember-matrix-sized
//!    (`U`: 18 × 224 × f32) payload.
//! 2. **Auto is undominated** — at every swept (op, network, size)
//!    point, `Auto`'s measured time is within ε of the best concrete
//!    algorithm's measured time.
//! 3. **Payload identity** — ATDCA/UFCLS/PCT/MORPH produce bit-identical
//!    outputs under every collective backend.
//!
//! ```text
//! cargo run -p repro-bench --release --bin ablation_collectives
//! ```
//!
//! `HETEROSPEC_BENCH_OUT` overrides the JSON output path.

use hetero_hsi::config::{AlgoParams, RunOptions};
use repro_bench::microjson::{object, Json};
use repro_bench::{print_table, write_csv, write_report};
use simnet::engine::{Engine, WireVec};
use simnet::{coll, CollAlgorithm, CollOp, CollectiveConfig, Platform};

/// Tolerance for "Auto is no worse than the best concrete algorithm".
const EPS: f64 = 1e-9;
/// The paper's endmember matrix `U`: 18 targets × 224 bands × f32.
const U_BITS: u64 = 18 * 224 * 32;

/// One swept measurement.
struct SweepRecord {
    op: CollOp,
    network: String,
    bits: u64,
    requested: CollAlgorithm,
    resolved: CollAlgorithm,
    predicted: f64,
    measured: f64,
}

impl SweepRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("op", Json::String(self.op.to_string())),
            ("network", Json::String(self.network.clone())),
            ("bits", Json::Number(self.bits as f64)),
            ("requested", Json::String(self.requested.to_string())),
            ("resolved", Json::String(self.resolved.to_string())),
            ("predicted_secs", Json::Number(self.predicted)),
            ("measured_secs", Json::Number(self.measured)),
        ])
    }
}

/// Runs one broadcast or gather of `bits` payload under `cfg` and
/// returns `(resolved algorithm, predicted secs, measured secs)`. All
/// rank clocks start at zero, so the report's `total_time` *is* the
/// collective's completion time.
fn run_collective(
    platform: &Platform,
    op: CollOp,
    requested: CollAlgorithm,
    bits: u64,
) -> (CollAlgorithm, f64, f64) {
    let cfg = CollectiveConfig::uniform(requested);
    let engine = Engine::new(platform.clone());
    let bytes = (bits / 8) as usize;
    let report = engine.run(|ctx| match op {
        CollOp::Broadcast => {
            let msg = if ctx.is_root() {
                Some(WireVec(vec![0u8; bytes]))
            } else {
                None
            };
            let out = coll::broadcast(ctx, &cfg, 0, msg, bits).expect("valid broadcast");
            out.0.len()
        }
        CollOp::Gather => {
            let entries = coll::gather(ctx, &cfg, 0, WireVec(vec![0u8; bytes]), bits);
            entries.map_or(0, |e| e.len())
        }
        other => unreachable!("sweep only covers broadcast/gather, got {other}"),
    });
    let choice = report
        .collectives
        .first()
        .expect("collective choice recorded");
    (choice.algorithm, choice.predicted_secs, report.total_time)
}

/// Runs all four analysis algorithms under `cfg` on a tiny scene,
/// returning a comparable digest of every output.
#[allow(clippy::type_complexity)]
fn algorithm_outputs(
    scene: &hsi_cube::synth::SyntheticScene,
    backend: CollAlgorithm,
) -> (
    Vec<(usize, usize, Vec<f32>)>,
    Vec<(usize, usize, Vec<f32>)>,
    hsi_cube::LabelImage,
    (hsi_cube::LabelImage, Vec<Vec<f32>>),
) {
    let params = AlgoParams {
        num_targets: 6,
        morph_iterations: 2,
        ..Default::default()
    };
    let options = RunOptions::hetero().with_collectives(CollectiveConfig::uniform(backend));
    let engine = Engine::new(simnet::presets::fully_heterogeneous());
    let digest = |ts: &[hetero_hsi::seq::DetectedTarget]| {
        ts.iter()
            .map(|t| (t.line, t.sample, t.spectrum.clone()))
            .collect::<Vec<_>>()
    };
    let atdca = hetero_hsi::par::atdca::run(&engine, &scene.cube, &params, &options);
    let ufcls = hetero_hsi::par::ufcls::run(&engine, &scene.cube, &params, &options);
    let pct = hetero_hsi::par::pct::run(&engine, &scene.cube, &params, &options);
    let morph = hetero_hsi::par::morph::run(&engine, &scene.cube, &params, &options);
    (
        digest(&atdca.result),
        digest(&ufcls.result),
        pct.result.0,
        morph.result,
    )
}

fn main() {
    let networks = simnet::presets::four_networks();
    let bcast_algos = [
        CollAlgorithm::Linear,
        CollAlgorithm::BinomialTree,
        CollAlgorithm::SegmentHierarchical,
        CollAlgorithm::PipelinedChunked,
        CollAlgorithm::Auto,
    ];
    let gather_algos = [
        CollAlgorithm::Linear,
        CollAlgorithm::BinomialTree,
        CollAlgorithm::SegmentHierarchical,
        CollAlgorithm::Auto,
    ];
    // One 224-band f32 spectrum, the U matrix, and two bulkier payloads.
    let bcast_sizes: [u64; 4] = [224 * 32, U_BITS, 2_000_000, 16_777_216];
    let gather_sizes: [u64; 3] = [224 * 32, U_BITS, 2_000_000];

    let mut records: Vec<SweepRecord> = Vec::new();
    let mut model_exact = true;
    let mut sweep = |op: CollOp, algos: &[CollAlgorithm], sizes: &[u64]| {
        for network in &networks {
            for &bits in sizes {
                for &alg in algos {
                    let (resolved, predicted, measured) = run_collective(network, op, alg, bits);
                    // The cost model is an exact replay for healthy
                    // rank-0-rooted collectives (see simnet::coll::cost).
                    if (predicted - measured).abs() > 1e-6 {
                        eprintln!(
                            "# MODEL DRIFT: {op} {alg} on {} at {bits} bits: \
                             predicted {predicted} vs measured {measured}",
                            network.name()
                        );
                        model_exact = false;
                    }
                    records.push(SweepRecord {
                        op,
                        network: network.name().to_string(),
                        bits,
                        requested: alg,
                        resolved,
                        predicted,
                        measured,
                    });
                }
            }
        }
    };
    sweep(CollOp::Broadcast, &bcast_algos, &bcast_sizes);
    sweep(CollOp::Gather, &gather_algos, &gather_sizes);

    // --- Gate 1: topology win at the U payload.
    let find = |op: CollOp, net: &str, bits: u64, alg: CollAlgorithm| {
        records
            .iter()
            .find(|r| r.op == op && r.network == net && r.bits == bits && r.requested == alg)
            .map(|r| r.measured)
            .expect("swept point present")
    };
    let fully_het = networks[0].name().to_string();
    let lin_u = find(CollOp::Broadcast, &fully_het, U_BITS, CollAlgorithm::Linear);
    let hier_u = find(
        CollOp::Broadcast,
        &fully_het,
        U_BITS,
        CollAlgorithm::SegmentHierarchical,
    );
    let gate_topology = hier_u < lin_u;

    // --- Gate 2: Auto undominated at every swept point.
    let mut gate_auto = true;
    for net in networks.iter().map(|n| n.name().to_string()) {
        for (op, sizes) in [
            (CollOp::Broadcast, &bcast_sizes[..]),
            (CollOp::Gather, &gather_sizes[..]),
        ] {
            for &bits in sizes {
                let auto = find(op, &net, bits, CollAlgorithm::Auto);
                let best = records
                    .iter()
                    .filter(|r| {
                        r.op == op
                            && r.network == net
                            && r.bits == bits
                            && r.requested != CollAlgorithm::Auto
                    })
                    .map(|r| r.measured)
                    .fold(f64::INFINITY, f64::min);
                if auto > best + EPS {
                    eprintln!(
                        "# AUTO DOMINATED: {op} on {net} at {bits} bits: auto {auto} > best {best}"
                    );
                    gate_auto = false;
                }
            }
        }
    }

    // --- Gate 3: payload identity across backends.
    eprintln!("# verifying algorithm outputs across collective backends");
    let scene = hsi_cube::synth::wtc_scene(hsi_cube::synth::WtcConfig::tiny());
    let baseline = algorithm_outputs(&scene, CollAlgorithm::Linear);
    let mut gate_identity = true;
    let mut identity_rows = Vec::new();
    for &backend in &bcast_algos[1..] {
        let out = algorithm_outputs(&scene, backend);
        let same = out == baseline;
        if !same {
            eprintln!("# OUTPUT DRIFT under backend {backend}");
            gate_identity = false;
        }
        identity_rows.push((backend, same));
    }

    // --- Report.
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for r in &records {
        rows.push(vec![
            r.op.to_string(),
            r.network.clone(),
            format!("{}", r.bits),
            r.requested.to_string(),
            r.resolved.to_string(),
            format!("{:.6}", r.predicted),
            format!("{:.6}", r.measured),
        ]);
        csv.push(format!(
            "{},{},{},{},{},{:.9},{:.9}",
            r.op, r.network, r.bits, r.requested, r.resolved, r.predicted, r.measured
        ));
    }
    print_table(
        "Ablation A6: collective algorithms — predicted vs measured virtual seconds",
        &[
            "Op",
            "Network",
            "Bits",
            "Requested",
            "Resolved",
            "Predicted",
            "Measured",
        ],
        &rows,
    );
    write_csv(
        "ablation_collectives.csv",
        "op,network,bits,requested,resolved,predicted_secs,measured_secs",
        &csv,
    );
    eprintln!(
        "# gate 1 (seg-hierarchical < linear bcast at U on {fully_het}): {} ({hier_u:.6} vs {lin_u:.6})",
        if gate_topology { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 2 (auto undominated across {} points): {}",
        records.len(),
        if gate_auto { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 3 (outputs bit-identical across backends): {}",
        if gate_identity { "PASS" } else { "FAIL" }
    );

    let all_passed = gate_topology && gate_auto && gate_identity && model_exact;
    let status = write_report(
        "BENCH_collectives.json",
        vec![
            (
                "sweep",
                Json::Array(records.iter().map(SweepRecord::to_json).collect()),
            ),
            (
                "identity",
                Json::Array(
                    identity_rows
                        .iter()
                        .map(|(backend, same)| {
                            object(vec![
                                ("backend", Json::String(backend.to_string())),
                                ("identical_to_linear", Json::Bool(*same)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ],
        vec![
            ("hier_beats_linear_bcast_u", Json::Bool(gate_topology)),
            ("auto_undominated", Json::Bool(gate_auto)),
            ("outputs_identical", Json::Bool(gate_identity)),
            ("model_exact", Json::Bool(model_exact)),
        ],
        true,
        all_passed,
    );

    if status == "failed" {
        eprintln!("# GATE FAILED");
        std::process::exit(1);
    }
}
