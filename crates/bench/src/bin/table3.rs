//! **Table 3** — spectral similarity (SAD) between the target pixels
//! detected by Hetero-ATDCA / Hetero-UFCLS and the known ground-truth
//! hot spots, plus single-processor times for the sequential versions.
//!
//! ```text
//! cargo run -p repro-bench --release --bin table3
//! ```

use hetero_hsi::config::AlgoParams;
use hetero_hsi::eval::target_table;
use repro_bench::{build_scene, print_table, write_csv, BASELINE_CYCLE_TIME};

fn main() {
    let scene = build_scene();
    let params = AlgoParams::default();

    // The paper sets t = 18 "after calculating the intrinsic
    // dimensionality of the data"; report both estimators for context.
    let hfc = hetero_hsi::vd::hfc(&scene.cube, 1e-3).dimension;
    let nf = hetero_hsi::vd::noise_floor(&scene.cube, 20.0).dimension;
    eprintln!("# virtual dimensionality: HFC = {hfc}, noise-floor = {nf} (paper used t = 18)");

    eprintln!("# running sequential ATDCA (t = {})", params.num_targets);
    let atdca = hetero_hsi::seq::atdca(&scene.cube, &params);
    eprintln!("# running sequential UFCLS (t = {})", params.num_targets);
    let ufcls = hetero_hsi::seq::ufcls(&scene.cube, &params);

    let t_atdca = atdca.virtual_secs(BASELINE_CYCLE_TIME);
    let t_ufcls = ufcls.virtual_secs(BASELINE_CYCLE_TIME);
    let rows_a = target_table(&scene, &atdca.result);
    let rows_u = target_table(&scene, &ufcls.result);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (a, u) in rows_a.iter().zip(&rows_u) {
        rows.push(vec![
            format!("'{}' ({:.0} F)", a.name, a.temp_f),
            format!("{:.3}", a.sad),
            format!("{:.3}", u.sad),
        ]);
        csv.push(format!(
            "{},{:.0},{:.4},{:.4}",
            a.name, a.temp_f, a.sad, u.sad
        ));
    }
    print_table(
        &format!(
            "Table 3: SAD to known targets  |  sequential times: ATDCA {t_atdca:.0} s, UFCLS {t_ufcls:.0} s (paper: 1263 s / 916 s on the full 2133x512 scene)"
        ),
        &["Hot spot", "Hetero-ATDCA", "Hetero-UFCLS"],
        &rows,
    );
    write_csv("table3.csv", "hot_spot,temp_f,atdca_sad,ufcls_sad", &csv);
}
