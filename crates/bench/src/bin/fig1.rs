//! **Figure 1** — false-colour composite of the scene and the thermal
//! hot-spot map.
//!
//! The paper displays the AVIRIS channels at 1682, 1107 and 655 nm as
//! red, green and blue, with the USGS thermal map beside it. This
//! binary renders the synthetic scene the same way: a PPM image at
//! `target/experiments/fig1_composite.ppm` (with hot spots circled) and
//! an ASCII thumbnail + hot-spot table on stdout.
//!
//! ```text
//! cargo run -p repro-bench --release --bin fig1
//! ```

use hsi_cube::synth::bands;
use repro_bench::{build_scene, experiments_dir};
use std::io::Write;

/// Band index nearest a wavelength (nm) on the scene's grid.
fn band_at(nm: f64, n: usize) -> usize {
    let grid = bands::grid(n);
    let um = nm / 1000.0;
    grid.iter()
        .enumerate()
        .min_by(|a, b| (a.1 - um).abs().partial_cmp(&(b.1 - um).abs()).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

fn main() {
    let scene = build_scene();
    let cube = &scene.cube;
    let (r_band, g_band, b_band) = (
        band_at(1682.0, cube.bands()),
        band_at(1107.0, cube.bands()),
        band_at(655.0, cube.bands()),
    );
    eprintln!("# composite bands: R={r_band} (1682 nm), G={g_band} (1107 nm), B={b_band} (655 nm)");

    // Per-channel 2%-98% stretch.
    let stretch = |band: usize| -> (f32, f32) {
        let mut v: Vec<f32> = (0..cube.num_pixels())
            .map(|i| cube.pixel_flat(i)[band])
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (
            v[(v.len() as f64 * 0.02) as usize],
            v[((v.len() as f64 * 0.98) as usize).min(v.len() - 1)],
        )
    };
    let ranges = [stretch(r_band), stretch(g_band), stretch(b_band)];
    let to8 = |v: f32, (lo, hi): (f32, f32)| -> u8 {
        (((v - lo) / (hi - lo).max(1e-6)).clamp(0.0, 1.0) * 255.0) as u8
    };

    // PPM with hot spots marked by a white box.
    let mut ppm = Vec::with_capacity(cube.num_pixels() * 3 + 64);
    write!(ppm, "P6\n{} {}\n255\n", cube.samples(), cube.lines()).unwrap();
    let near_target = |l: usize, s: usize| -> bool {
        scene.targets.iter().any(|t| {
            let (tl, ts) = t.coord;
            let dl = l.abs_diff(tl);
            let ds = s.abs_diff(ts);
            (dl == 2 && ds <= 2) || (ds == 2 && dl <= 2)
        })
    };
    for l in 0..cube.lines() {
        for s in 0..cube.samples() {
            if near_target(l, s) {
                ppm.extend_from_slice(&[255, 255, 255]);
            } else {
                let px = cube.pixel(l, s);
                ppm.push(to8(px[r_band], ranges[0]));
                ppm.push(to8(px[g_band], ranges[1]));
                ppm.push(to8(px[b_band], ranges[2]));
            }
        }
    }
    let path = experiments_dir().join("fig1_composite.ppm");
    std::fs::write(&path, &ppm).expect("write ppm");
    eprintln!("# wrote {}", path.display());

    // ASCII thumbnail by luminance.
    println!("\nFigure 1 (ASCII luminance thumbnail, * = thermal hot spot):");
    let (th, tw) = (24usize, 64usize);
    let ramp: &[u8] = b" .:-=+#%@";
    for tl in 0..th {
        let mut row = String::new();
        for ts in 0..tw {
            let l = tl * cube.lines() / th;
            let s = ts * cube.samples() / tw;
            if scene.targets.iter().any(|t| {
                t.coord.0 * th / cube.lines() == tl && t.coord.1 * tw / cube.samples() == ts
            }) {
                row.push('*');
                continue;
            }
            let px = cube.pixel(l, s);
            let lum = (px[r_band] + px[g_band] + px[b_band]) / 3.0;
            let idx = ((lum / 0.6).clamp(0.0, 0.999) * ramp.len() as f32) as usize;
            row.push(ramp[idx] as char);
        }
        println!("  |{row}|");
    }
    println!("\nthermal hot spots (the paper's Fig. 1 right panel):");
    for t in &scene.targets {
        println!(
            "  '{}' {:>4.0} F at (line {:>4}, sample {:>4})",
            t.name, t.temp_f, t.coord.0, t.coord.1
        );
    }
}
