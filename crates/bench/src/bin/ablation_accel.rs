//! **Ablation A9** — accelerator offload policies → `BENCH_accel.json`.
//!
//! Sweeps the four chunked algorithms over the two accel presets
//! (`accel_heterogeneous`, `accel_thunderhead`) under every
//! [`OffloadPolicy`], on the fixed self-scheduling grid so outputs are
//! comparable bit for bit. Three deterministic gates, always enforced:
//!
//! 1. **Auto undominated** — for every (platform, algorithm) cell,
//!    `Auto` completes no slower than `Never` *and* no slower than
//!    `Always` (the per-chunk cost model never picks the losing side);
//! 2. **Kernel-time win** — on the GPU-everywhere Thunderhead preset,
//!    `Auto` spends at least 2× less aggregate kernel time (host +
//!    device virtual ms, summed over ranks) than `Never`;
//! 3. **Output identity** — each cell's output digest is identical
//!    across `Never`/`Always`/`Auto`: device execution is pure time
//!    accounting, never a numeric path.
//!
//! ```text
//! cargo run -p repro-bench --release --bin ablation_accel
//! ```
//!
//! `HETEROSPEC_BENCH_OUT` overrides the JSON output path.

use hetero_hsi::config::AlgoParams;
use hetero_hsi::ft::{run_self_sched, FtOptions};
use hetero_hsi::sched::{AtdcaChunks, ChunkedAlgo, MorphChunks, PctChunks, UfclsChunks};
use hetero_hsi::seq::DetectedTarget;
use hetero_hsi::OffloadPolicy;
use hsi_cube::synth::{wtc_scene, SyntheticScene};
use repro_bench::microjson::{object, Json};
use repro_bench::{print_table, scene_config, write_csv, write_report};
use simnet::engine::Engine;
use simnet::Platform;

const POLICIES: [OffloadPolicy; 3] = [
    OffloadPolicy::Never,
    OffloadPolicy::Always,
    OffloadPolicy::Auto,
];

/// Full-fidelity digest of a target list (coordinates and spectra).
fn digest(targets: &[DetectedTarget]) -> Vec<(usize, usize, Vec<f32>)> {
    targets
        .iter()
        .map(|t| (t.line, t.sample, t.spectrum.clone()))
        .collect()
}

/// One (platform, algorithm, policy) measurement.
struct Cell {
    platform: String,
    algorithm: &'static str,
    policy: &'static str,
    total_secs: f64,
    kernel_ms: f64,
    launches: u64,
    bytes_h2d: u64,
}

impl Cell {
    fn to_json(&self) -> Json {
        object(vec![
            ("platform", Json::String(self.platform.clone())),
            ("algorithm", Json::String(self.algorithm.into())),
            ("policy", Json::String(self.policy.into())),
            ("total_secs", Json::Number(self.total_secs)),
            ("kernel_ms", Json::Number(self.kernel_ms)),
            ("launches", Json::Number(self.launches as f64)),
            ("bytes_h2d", Json::Number(self.bytes_h2d as f64)),
        ])
    }
}

/// Runs one algorithm under all three policies on the fixed grid and
/// reports (output-identity across policies, one cell per policy).
fn sweep_cell<A, D, F>(
    platform: &Platform,
    algorithm: &'static str,
    algo: &A,
    dig: F,
) -> (bool, Vec<Cell>)
where
    A: ChunkedAlgo + Sync,
    A::Output: Send,
    D: PartialEq,
    F: Fn(&A::Output) -> D,
{
    let mut cells = Vec::new();
    let mut baseline: Option<D> = None;
    let mut identical = true;
    for policy in POLICIES {
        let opts = FtOptions {
            offload: policy,
            ..FtOptions::default()
        };
        let run = run_self_sched(&Engine::new(platform.clone()), algo, &opts);
        let d = dig(&run.output);
        match &baseline {
            None => baseline = Some(d),
            Some(b) => identical &= &d == b,
        }
        let kernel_ms: f64 = run
            .report
            .offloads
            .iter()
            .map(|o| o.host_ms + o.device_ms)
            .sum();
        cells.push(Cell {
            platform: platform.name().to_string(),
            algorithm,
            policy: policy.label(),
            total_secs: run.report.total_time,
            kernel_ms,
            launches: run.report.offloads.iter().map(|o| o.launches).sum(),
            bytes_h2d: run.report.offloads.iter().map(|o| o.bytes_h2d).sum(),
        });
    }
    (identical, cells)
}

/// A deferred per-algorithm sweep (name, runner).
type AlgoSweep<'a> = (&'static str, Box<dyn Fn() -> (bool, Vec<Cell>) + 'a>);

/// All four algorithms on one platform.
fn sweep_platform(
    platform: &Platform,
    scene: &SyntheticScene,
    params: &AlgoParams,
) -> (bool, Vec<Cell>) {
    let cube = &scene.cube;
    let mut identical = true;
    let mut cells = Vec::new();
    let runs: [AlgoSweep; 4] = [
        ("ATDCA", {
            let a = AtdcaChunks::new(cube, params);
            Box::new(move || sweep_cell(platform, "ATDCA", &a, |o| digest(o)))
        }),
        ("UFCLS", {
            let a = UfclsChunks::new(cube, params);
            Box::new(move || sweep_cell(platform, "UFCLS", &a, |o| digest(o)))
        }),
        ("PCT", {
            let a = PctChunks::new(cube, params);
            Box::new(move || {
                sweep_cell(platform, "PCT", &a, |o| {
                    (o.0.as_slice().to_vec(), o.1.mean.clone())
                })
            })
        }),
        ("MORPH", {
            let a = MorphChunks::new(cube, params);
            Box::new(move || {
                sweep_cell(platform, "MORPH", &a, |o| {
                    (o.0.as_slice().to_vec(), o.1.clone())
                })
            })
        }),
    ];
    for (name, run) in &runs {
        eprintln!("# running {name} on {} (3 policies)", platform.name());
        let (same, mut c) = run();
        identical &= same;
        cells.append(&mut c);
    }
    (identical, cells)
}

fn main() {
    // A quarter-size scene keeps the 2 × 4 × 3 sweep quick; the gated
    // quantities are ratios of deterministic virtual times.
    let mut cfg = scene_config();
    cfg.lines = (cfg.lines / 2).max(64);
    cfg.samples = (cfg.samples / 2).max(32);
    eprintln!("# scene: {} x {} x {}", cfg.lines, cfg.samples, cfg.bands);
    let scene = wtc_scene(cfg);
    let params = AlgoParams::default();

    let platforms = [
        simnet::presets::accel_heterogeneous(),
        simnet::presets::accel_thunderhead(16),
    ];
    let mut cells: Vec<Cell> = Vec::new();
    let mut gate_identity = true;
    for platform in &platforms {
        let (same, mut c) = sweep_platform(platform, &scene, &params);
        gate_identity &= same;
        cells.append(&mut c);
    }

    // Surface each platform's dominant critical-path contributor under
    // `Auto` (observability only — never gated here).
    let atdca = AtdcaChunks::new(&scene.cube, &params);
    for platform in &platforms {
        let engine = Engine::new(platform.clone()).with_profiling(true);
        let opts = FtOptions {
            offload: OffloadPolicy::Auto,
            ..FtOptions::default()
        };
        let profiled = run_self_sched(&engine, &atdca, &opts);
        if let Some(p) = &profiled.report.profile {
            eprintln!("# {} ATDCA/auto {}", platform.name(), p.bottleneck_line());
        }
    }

    // --- Gate 1: Auto undominated in every cell. ---------------------
    let find = |platform: &str, algorithm: &str, policy: &str| -> &Cell {
        cells
            .iter()
            .find(|c| c.platform == platform && c.algorithm == algorithm && c.policy == policy)
            .expect("cell present")
    };
    let mut gate_undominated = true;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for platform in &platforms {
        for algorithm in repro_bench::ALGORITHMS {
            let never = find(platform.name(), algorithm, "never");
            let always = find(platform.name(), algorithm, "always");
            let auto = find(platform.name(), algorithm, "auto");
            let undominated =
                auto.total_secs <= never.total_secs && auto.total_secs <= always.total_secs;
            gate_undominated &= undominated;
            rows.push(vec![
                platform.name().to_string(),
                algorithm.to_string(),
                format!("{:.3}", never.total_secs),
                format!("{:.3}", always.total_secs),
                format!("{:.3}", auto.total_secs),
                format!("{}", auto.launches),
                format!("{undominated}"),
            ]);
            csv.push(format!(
                "{},{algorithm},{:.6},{:.6},{:.6},{},{undominated}",
                platform.name(),
                never.total_secs,
                always.total_secs,
                auto.total_secs,
                auto.launches,
            ));
        }
    }
    print_table(
        "Ablation A9: offload policies on the accel presets (fixed grid)",
        &[
            "Platform",
            "Algo",
            "Never s",
            "Always s",
            "Auto s",
            "Launches",
            "Auto<=both",
        ],
        &rows,
    );
    write_csv(
        "ablation_accel.csv",
        "platform,algorithm,t_never,t_always,t_auto,auto_launches,undominated",
        &csv,
    );

    // --- Gate 2: >= 2x aggregate kernel-time win on the GPU cluster. -
    let gpu = platforms[1].name();
    let never_kernel: f64 = repro_bench::ALGORITHMS
        .iter()
        .map(|a| find(gpu, a, "never").kernel_ms)
        .sum();
    let auto_kernel: f64 = repro_bench::ALGORITHMS
        .iter()
        .map(|a| find(gpu, a, "auto").kernel_ms)
        .sum();
    let kernel_ratio = never_kernel / auto_kernel.max(f64::MIN_POSITIVE);
    let gate_kernel_win = kernel_ratio >= 2.0;

    eprintln!(
        "# gate 1 (Auto undominated in all {} cells): {}",
        rows.len(),
        if gate_undominated { "PASS" } else { "FAIL" }
    );
    eprintln!(
        "# gate 2 (>= 2x kernel-time win on {gpu}): {} ({:.1} ms never / {:.1} ms auto = {:.2}x)",
        if gate_kernel_win { "PASS" } else { "FAIL" },
        never_kernel,
        auto_kernel,
        kernel_ratio,
    );
    eprintln!(
        "# gate 3 (outputs bit-identical across policies): {}",
        if gate_identity { "PASS" } else { "FAIL" }
    );

    let all_passed = gate_undominated && gate_kernel_win && gate_identity;
    let status = write_report(
        "BENCH_accel.json",
        vec![
            (
                "sweep",
                Json::Array(cells.iter().map(Cell::to_json).collect()),
            ),
            (
                "kernel_time",
                object(vec![
                    ("platform", Json::String(gpu.to_string())),
                    ("never_ms", Json::Number(never_kernel)),
                    ("auto_ms", Json::Number(auto_kernel)),
                    ("ratio", Json::Number(kernel_ratio)),
                ]),
            ),
        ],
        vec![
            ("auto_undominated", Json::Bool(gate_undominated)),
            ("kernel_time_win_2x", Json::Bool(gate_kernel_win)),
            ("outputs_identical", Json::Bool(gate_identity)),
        ],
        true,
        all_passed,
    );

    if status == "failed" {
        eprintln!("# GATE FAILED");
        std::process::exit(1);
    }
}
