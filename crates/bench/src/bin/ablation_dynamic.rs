//! **Ablation A4** — static WEA vs dynamic self-scheduling under
//! unforeseen load (the paper's future-work direction).
//!
//! Static WEA plans from nominal cycle-times; when a node is secretly
//! slowed by background load, its partition becomes the critical path.
//! Chunked self-scheduling observes completion feedback and reroutes.
//! The sweep varies the surprise slowdown of the platform's nominally
//! fastest node (p3) and the chunk size.
//!
//! ```text
//! cargo run -p repro-bench --release --bin ablation_dynamic
//! ```

use hetero_hsi::config::AlgoParams;
use hetero_hsi::dynamic::{self_schedule_morph, static_wea_morph};
use hsi_cube::synth::wtc_scene;
use repro_bench::{print_table, scene_config, write_csv};

fn main() {
    // A quarter-size scene keeps this sweep quick; relations are
    // scale-free.
    let mut cfg = scene_config();
    cfg.lines = (cfg.lines / 2).max(64);
    cfg.samples = (cfg.samples / 2).max(32);
    eprintln!("# scene: {} x {} x {}", cfg.lines, cfg.samples, cfg.bands);
    let scene = wtc_scene(cfg);
    let params = AlgoParams::default();
    let platform = simnet::presets::fully_heterogeneous();
    let nominal: Vec<f64> = platform.procs().iter().map(|p| p.cycle_time).collect();
    let overhead = 2.0e-3; // request/assign round trip per chunk

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for slowdown in [1.0f64, 2.0, 4.0, 8.0] {
        let mut true_cycle = nominal.clone();
        true_cycle[2] *= slowdown; // p3, WEA's favourite node
        eprintln!("# slowdown x{slowdown}: static baseline");
        let stat = static_wea_morph(&platform, &true_cycle, &scene.cube, &params);
        let mut row = vec![format!("x{slowdown}"), format!("{:.1}", stat.total_time)];
        let mut line = format!("{slowdown},{:.3}", stat.total_time);
        for chunk in [2usize, 8, 32] {
            eprintln!("# slowdown x{slowdown}: dynamic, chunk {chunk}");
            let dynm = self_schedule_morph(
                &platform,
                &true_cycle,
                &scene.cube,
                &params,
                chunk,
                overhead,
            );
            row.push(format!("{:.1}", dynm.total_time));
            line += &format!(",{:.3}", dynm.total_time);
        }
        rows.push(row);
        csv.push(line);
    }
    print_table(
        "Ablation A4: MORPH completion time (s), static WEA vs self-scheduling, p3 secretly slowed",
        &[
            "Slowdown",
            "Static WEA",
            "Dyn chunk=2",
            "Dyn chunk=8",
            "Dyn chunk=32",
        ],
        &rows,
    );
    write_csv(
        "ablation_dynamic.csv",
        "slowdown,static,dyn2,dyn8,dyn32",
        &csv,
    );
}
