//! Kernel wall-clock benchmark → `BENCH_kernels.json`.
//!
//! Times the data-parallel hyperspectral kernels (blocked covariance,
//! the argmax scans, morphological erosion) scalar vs parallel on real
//! host threads, verifies the outputs are bit-identical either way, and
//! writes one machine-readable record per run so the repository keeps a
//! per-commit throughput trajectory. **This measures wall-clock time
//! only** — the experiment tables use analytic virtual time and are
//! unaffected by thread counts (see `docs/PERF.md`).
//!
//! Environment:
//!
//! * `HETEROSPEC_BENCH_SCENE` — `tiny` (default), `small`, `medium`:
//!   the synthetic scene the kernels scan.
//! * `HETEROSPEC_BENCH_THREADS` — parallel width (default: host cores).
//! * `HETEROSPEC_BENCH_GATE` — set to `1` to *enforce* the speedup gate
//!   (≥ [`GATE_SPEEDUP`]× on covariance and brightness argmax, exit 1
//!   on failure). The gate is only meaningful with ≥ 8 host cores; on
//!   smaller hosts it records the measurement and reports the gate as
//!   skipped, so CI smoke runs stay green on shared runners.
//! * `HETEROSPEC_BENCH_OUT` — output path (default
//!   `BENCH_kernels.json` in the current directory).

use hsi_cube::synth::{wtc_scene, WtcConfig};
use hsi_linalg::covariance::CovarianceAccumulator;
use hsi_linalg::ortho::OrthoBasis;
use repro_bench::microjson::{object, Json};
use repro_bench::write_report;
use std::time::Instant;

/// Required parallel-vs-scalar speedup on the gated kernels.
const GATE_SPEEDUP: f64 = 4.0;
/// Host-core floor below which the gate cannot be meaningful.
const GATE_MIN_CORES: usize = 8;
/// Timing repetitions; the best (minimum) time is recorded.
const REPS: usize = 3;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn best_secs(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct KernelRecord {
    name: &'static str,
    pixels: usize,
    secs_scalar: f64,
    secs_parallel: f64,
}

impl KernelRecord {
    fn speedup(&self) -> f64 {
        self.secs_scalar / self.secs_parallel
    }

    fn to_json(&self) -> Json {
        object(vec![
            ("name", Json::String(self.name.into())),
            ("pixels", Json::Number(self.pixels as f64)),
            ("secs_scalar", Json::Number(self.secs_scalar)),
            ("secs_parallel", Json::Number(self.secs_parallel)),
            ("speedup", Json::Number(self.speedup())),
            (
                "mpixels_per_s_parallel",
                Json::Number(self.pixels as f64 / self.secs_parallel / 1e6),
            ),
        ])
    }
}

fn main() {
    let scene_name = std::env::var("HETEROSPEC_BENCH_SCENE").unwrap_or_else(|_| "tiny".into());
    let (lines, samples) = match scene_name.as_str() {
        "tiny" => (96, 64),
        "small" => (512, 128),
        "medium" => (1024, 256),
        other => panic!("HETEROSPEC_BENCH_SCENE: unknown size '{other}'"),
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = env_usize("HETEROSPEC_BENCH_THREADS", cores);

    eprintln!("# bench_kernels: scene {scene_name} ({lines}x{samples}), threads {threads} (host cores {cores})");
    let scene = wtc_scene(WtcConfig {
        lines,
        samples,
        ..Default::default()
    });
    let cube = &scene.cube;
    let full = (0, cube.lines());
    let pixels = cube.num_pixels();
    let seq_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let par_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    let mut records: Vec<KernelRecord> = Vec::new();

    // --- Covariance: legacy per-pixel scalar loop vs blocked+parallel.
    {
        let scalar = best_secs(|| {
            let mut acc = CovarianceAccumulator::new(cube.bands());
            for i in 0..pixels {
                acc.push_f32(cube.pixel_flat(i));
            }
            std::hint::black_box(acc.count());
        });
        let blocked = best_secs(|| {
            let mut acc = CovarianceAccumulator::new(cube.bands());
            acc.push_pixels_f32(cube.as_slice());
            std::hint::black_box(acc.count());
        });
        let parallel = best_secs(|| {
            let (acc, _) = par_pool.install(|| hetero_hsi::kernels::covariance_partial(cube, full));
            std::hint::black_box(acc.count());
        });
        // Bit-determinism across widths (the blocked panel path is also
        // bit-identical to scalar; chunk merging regroups sums, so the
        // chunked kernel is compared against its own 1-thread run).
        let a = seq_pool.install(|| hetero_hsi::kernels::covariance_partial(cube, full).0);
        let b = par_pool.install(|| hetero_hsi::kernels::covariance_partial(cube, full).0);
        assert_eq!(a, b, "covariance kernel drifted across thread counts");
        records.push(KernelRecord {
            name: "covariance_blocked",
            pixels,
            secs_scalar: scalar,
            secs_parallel: blocked,
        });
        records.push(KernelRecord {
            name: "covariance",
            pixels,
            secs_scalar: scalar,
            secs_parallel: parallel,
        });
    }

    // --- Argmax: brightness scan.
    {
        let scalar = best_secs(|| {
            let (best, _) = seq_pool.install(|| hetero_hsi::kernels::brightest(cube, full));
            std::hint::black_box(best);
        });
        let parallel = best_secs(|| {
            let (best, _) = par_pool.install(|| hetero_hsi::kernels::brightest(cube, full));
            std::hint::black_box(best);
        });
        let a = seq_pool.install(|| hetero_hsi::kernels::brightest(cube, full).0);
        let b = par_pool.install(|| hetero_hsi::kernels::brightest(cube, full).0);
        assert_eq!(a, b, "brightest kernel drifted across thread counts");
        records.push(KernelRecord {
            name: "argmax_brightness",
            pixels,
            secs_scalar: scalar,
            secs_parallel: parallel,
        });
    }

    // --- Argmax: orthogonal-projection scan against a 3-vector basis.
    {
        let mut basis = OrthoBasis::new(cube.bands());
        for sig in scene.class_signatures.iter().take(3) {
            let v: Vec<f64> = sig.iter().map(|&x| x as f64).collect();
            basis.push(&v);
        }
        let scalar = best_secs(|| {
            let (best, _) =
                seq_pool.install(|| hetero_hsi::kernels::max_projection(cube, &basis, full));
            std::hint::black_box(best);
        });
        let parallel = best_secs(|| {
            let (best, _) =
                par_pool.install(|| hetero_hsi::kernels::max_projection(cube, &basis, full));
            std::hint::black_box(best);
        });
        let a = seq_pool.install(|| hetero_hsi::kernels::max_projection(cube, &basis, full).0);
        let b = par_pool.install(|| hetero_hsi::kernels::max_projection(cube, &basis, full).0);
        assert_eq!(a, b, "max_projection kernel drifted across thread counts");
        records.push(KernelRecord {
            name: "argmax_projection",
            pixels,
            secs_scalar: scalar,
            secs_parallel: parallel,
        });
    }

    // --- Morphology: cumulative-SAD erosion (map + selection).
    {
        let se = hsi_morpho::StructuringElement::square(1);
        let scalar = best_secs(|| {
            let sel = seq_pool.install(|| hsi_morpho::ops::erosion(cube, &se));
            std::hint::black_box(sel.coords.len());
        });
        let parallel = best_secs(|| {
            let sel = par_pool.install(|| hsi_morpho::ops::erosion(cube, &se));
            std::hint::black_box(sel.coords.len());
        });
        let a = seq_pool.install(|| hsi_morpho::ops::erosion(cube, &se));
        let b = par_pool.install(|| hsi_morpho::ops::erosion(cube, &se));
        assert_eq!(a, b, "erosion kernel drifted across thread counts");
        records.push(KernelRecord {
            name: "morpho_erosion",
            pixels,
            secs_scalar: scalar,
            secs_parallel: parallel,
        });
    }

    for r in &records {
        eprintln!(
            "# {:<20} scalar {:>9.4}s  parallel {:>9.4}s  speedup {:>5.2}x",
            r.name,
            r.secs_scalar,
            r.secs_parallel,
            r.speedup()
        );
    }

    // --- Speedup gate (covariance + brightness argmax).
    let gate_requested = std::env::var("HETEROSPEC_BENCH_GATE").as_deref() == Ok("1");
    let gate_meaningful = cores >= GATE_MIN_CORES && threads >= GATE_MIN_CORES;
    let gated: Vec<&KernelRecord> = records
        .iter()
        .filter(|r| r.name == "covariance" || r.name == "argmax_brightness")
        .collect();
    let gate_passed = gated.iter().all(|r| r.speedup() >= GATE_SPEEDUP);
    let enforced = gate_requested && gate_meaningful;
    if gate_requested && !gate_meaningful {
        eprintln!(
            "# gate requested but host has {cores} cores / {threads} threads (< {GATE_MIN_CORES}): recording only"
        );
    }

    // `meaningful = gate_meaningful`: on small hosts the shared
    // envelope records "skipped" — distinct from a genuine "failed" so
    // trend tooling never mistakes a small CI runner for a regression.
    let status = write_report(
        "BENCH_kernels.json",
        vec![
            ("host_cores", Json::Number(cores as f64)),
            ("threads", Json::Number(threads as f64)),
            (
                "scene",
                object(vec![
                    ("name", Json::String(scene_name.clone())),
                    ("lines", Json::Number(cube.lines() as f64)),
                    ("samples", Json::Number(cube.samples() as f64)),
                    ("bands", Json::Number(cube.bands() as f64)),
                ]),
            ),
            (
                "kernels",
                Json::Array(records.iter().map(KernelRecord::to_json).collect()),
            ),
        ],
        vec![
            ("required_speedup", Json::Number(GATE_SPEEDUP)),
            ("min_cores", Json::Number(GATE_MIN_CORES as f64)),
            ("enforced", Json::Bool(enforced)),
        ],
        gate_meaningful,
        gate_passed,
    );

    if enforced && status == "failed" {
        eprintln!(
            "# GATE FAILED: covariance/argmax parallel speedup below {GATE_SPEEDUP}x at {threads} threads"
        );
        std::process::exit(1);
    }
}
