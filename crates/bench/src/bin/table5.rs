//! **Table 5** — execution times (virtual seconds) of the heterogeneous
//! algorithms and their homogeneous versions on the four networks.
//!
//! ```text
//! cargo run -p repro-bench --release --bin table5
//! ```

use hetero_hsi::config::AlgoParams;
use repro_bench::{build_scene, print_table, run_matrix, write_csv, ALGORITHMS};

fn main() {
    let scene = build_scene();
    let entries = run_matrix(&scene, &AlgoParams::default());
    let networks = [
        "fully-heterogeneous",
        "fully-homogeneous",
        "partially-heterogeneous",
        "partially-homogeneous",
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for algorithm in ALGORITHMS {
        for variant in ["Hetero", "Homo"] {
            let mut row = vec![format!("{variant}-{algorithm}")];
            let mut line = format!("{variant}-{algorithm}");
            for net in networks {
                let e = entries
                    .iter()
                    .find(|e| e.algorithm == algorithm && e.variant == variant && e.network == net)
                    .expect("matrix entry");
                row.push(format!("{:.1}", e.total));
                line += &format!(",{:.2}", e.total);
            }
            rows.push(row);
            csv.push(line);
        }
    }
    print_table(
        "Table 5: execution times (s) of heterogeneous algorithms and their homogeneous versions",
        &[
            "Algorithm",
            "Fully het",
            "Fully hom",
            "Part het",
            "Part hom",
        ],
        &rows,
    );
    write_csv(
        "table5.csv",
        "algorithm,fully_het,fully_hom,part_het,part_hom",
        &csv,
    );
}
