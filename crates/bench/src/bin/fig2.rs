//! **Figure 2** — scalability (speedup vs single-processor run) of the
//! heterogeneous parallel algorithms on Thunderhead.
//!
//! Prints the speedup series and an ASCII plot; the series is also
//! written to `target/experiments/fig2.csv` for external plotting.
//!
//! ```text
//! cargo run -p repro-bench --release --bin fig2
//! ```

use hetero_hsi::config::AlgoParams;
use repro_bench::{build_scene, print_table, run_thunderhead_sweep, write_csv, ALGORITHMS};

fn main() {
    let scene = build_scene();
    let entries = run_thunderhead_sweep(&scene, &AlgoParams::default());

    let base: Vec<f64> = ALGORITHMS
        .iter()
        .map(|a| {
            entries
                .iter()
                .find(|e| &e.algorithm == a && e.cpus == 1)
                .expect("baseline")
                .total
        })
        .collect();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut series: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ALGORITHMS.len()];
    for &cpus in simnet::presets::THUNDERHEAD_SWEEP.iter() {
        let mut row = vec![format!("{cpus}")];
        let mut line = format!("{cpus}");
        for (i, algorithm) in ALGORITHMS.iter().enumerate() {
            let e = entries
                .iter()
                .find(|e| &e.algorithm == algorithm && e.cpus == cpus)
                .expect("sweep entry");
            let speedup = simnet::report::speedup(base[i], e.total);
            series[i].push((cpus, speedup));
            row.push(format!("{speedup:.1}"));
            line += &format!(",{speedup:.3}");
        }
        rows.push(row);
        csv.push(line);
    }
    print_table(
        "Figure 2: speedup over the 1-processor run on Thunderhead",
        &["CPUs", "ATDCA", "UFCLS", "PCT", "MORPH"],
        &rows,
    );
    write_csv("fig2.csv", "cpus,atdca,ufcls,pct,morph", &csv);

    // ASCII rendition of the figure: speedup vs CPUs, linear reference.
    println!("\nFigure 2 (ASCII): x = CPUs (0..256), y = speedup (0..256), '/' = linear");
    let height = 20usize;
    let width = 64usize;
    let marks = ['a', 'u', 'p', 'm']; // ATDCA, UFCLS, PCT, MORPH
    let mut grid = vec![vec![' '; width + 1]; height + 1];
    for (x, _) in (0..=width).enumerate() {
        let cpus = x as f64 / width as f64 * 256.0;
        let y = (cpus / 256.0 * height as f64).round() as usize;
        grid[height - y.min(height)][x] = '.';
    }
    for (i, s) in series.iter().enumerate() {
        for &(cpus, sp) in s {
            let x = (cpus as f64 / 256.0 * width as f64).round() as usize;
            let y = ((sp / 256.0) * height as f64).round() as usize;
            grid[height - y.min(height)][x.min(width)] = marks[i];
        }
    }
    for row in grid {
        println!("  |{}", row.iter().collect::<String>());
    }
    println!("  +{}", "-".repeat(width + 1));
    println!("   legend: a=ATDCA u=UFCLS p=PCT m=MORPH .=linear");
}
