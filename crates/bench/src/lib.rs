//! # repro-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation section
//! (`cargo run -p repro-bench --release --bin table5` etc.), plus three
//! ablations and the criterion microbenches under `benches/`.
//!
//! All binaries print a paper-style text table and write a CSV to
//! `target/experiments/`. The scene size is selected with the
//! `HETEROSPEC_SCENE` environment variable (`tiny`, `small`, `medium`,
//! (the default), `large`, `full`); virtual times scale linearly with pixel
//! count, so every ratio is size-invariant (see DESIGN.md). The `full`
//! size is the paper's 2133×512 scene and takes several minutes of real
//! compute per algorithm.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use hetero_hsi::config::{AlgoParams, RunOptions};
use hetero_hsi::framework::ParallelRun;
use hsi_cube::synth::{wtc_scene, SyntheticScene, WtcConfig};
use microjson::Json;
use simnet::engine::Engine;
use std::path::PathBuf;

pub mod microjson;

/// Thunderhead-class cycle time used for sequential baselines
/// (secs/Mflop), matching the paper's single-processor columns.
pub const BASELINE_CYCLE_TIME: f64 = simnet::presets::HOMOGENEOUS_CYCLE_TIME;

/// Scene size selection via `HETEROSPEC_SCENE`.
pub fn scene_config() -> WtcConfig {
    let choice = std::env::var("HETEROSPEC_SCENE").unwrap_or_else(|_| "medium".into());
    let (lines, samples) = match choice.as_str() {
        "tiny" => (96, 64),
        "small" => (512, 128),
        "medium" => (1024, 256),
        "large" => (2048, 384),
        "full" => (2133, 512),
        other => panic!("HETEROSPEC_SCENE: unknown size '{other}'"),
    };
    WtcConfig {
        lines,
        samples,
        ..Default::default()
    }
}

/// Builds the WTC-like scene for the selected size (announcing it).
pub fn build_scene() -> SyntheticScene {
    let cfg = scene_config();
    eprintln!(
        "# scene: {} x {} x {} bands (HETEROSPEC_SCENE to change)",
        cfg.lines, cfg.samples, cfg.bands
    );
    wtc_scene(cfg)
}

/// The algorithms of the study, in the paper's table order.
pub const ALGORITHMS: [&str; 4] = ["ATDCA", "UFCLS", "PCT", "MORPH"];

/// Dispatches a parallel run by algorithm name, discarding the analysis
/// result (timing experiments).
pub fn run_algorithm(
    name: &str,
    engine: &Engine,
    scene: &SyntheticScene,
    params: &AlgoParams,
    options: &RunOptions,
) -> ParallelRun<()> {
    match name {
        "ATDCA" => strip(hetero_hsi::par::atdca::run(
            engine,
            &scene.cube,
            params,
            options,
        )),
        "UFCLS" => strip(hetero_hsi::par::ufcls::run(
            engine,
            &scene.cube,
            params,
            options,
        )),
        "PCT" => strip(hetero_hsi::par::pct::run(
            engine,
            &scene.cube,
            params,
            options,
        )),
        "MORPH" => strip(hetero_hsi::par::morph::run(
            engine,
            &scene.cube,
            params,
            options,
        )),
        other => panic!("unknown algorithm '{other}'"),
    }
}

fn strip<T>(run: ParallelRun<T>) -> ParallelRun<()> {
    ParallelRun {
        result: (),
        report: run.report,
    }
}

/// One timing record of the 8 × 4 experiment matrix.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// Algorithm (`ATDCA`…)
    pub algorithm: String,
    /// `Hetero` or `Homo`.
    pub variant: String,
    /// Platform name.
    pub network: String,
    /// Total execution time (Table 5).
    pub total: f64,
    /// Communication time (Table 6).
    pub com: f64,
    /// Sequential computation time (Table 6).
    pub seq: f64,
    /// Parallel computation time, idles included (Table 6).
    pub par: f64,
    /// Imbalance over all processors (Table 7).
    pub d_all: f64,
    /// Imbalance excluding the root (Table 7).
    pub d_minus: f64,
}

impl MatrixEntry {
    fn to_json(&self) -> Json {
        microjson::object(vec![
            ("algorithm", Json::String(self.algorithm.clone())),
            ("variant", Json::String(self.variant.clone())),
            ("network", Json::String(self.network.clone())),
            ("total", Json::Number(self.total)),
            ("com", Json::Number(self.com)),
            ("seq", Json::Number(self.seq)),
            ("par", Json::Number(self.par)),
            ("d_all", Json::Number(self.d_all)),
            ("d_minus", Json::Number(self.d_minus)),
        ])
    }

    fn from_json(value: &Json) -> Option<MatrixEntry> {
        Some(MatrixEntry {
            algorithm: value.get("algorithm")?.as_str()?.to_string(),
            variant: value.get("variant")?.as_str()?.to_string(),
            network: value.get("network")?.as_str()?.to_string(),
            total: value.get("total")?.as_f64()?,
            com: value.get("com")?.as_f64()?,
            seq: value.get("seq")?.as_f64()?,
            par: value.get("par")?.as_f64()?,
            d_all: value.get("d_all")?.as_f64()?,
            d_minus: value.get("d_minus")?.as_f64()?,
        })
    }
}

/// Runs (or loads from cache) the full 8-algorithm × 4-network matrix
/// shared by Tables 5, 6 and 7.
pub fn run_matrix(scene: &SyntheticScene, params: &AlgoParams) -> Vec<MatrixEntry> {
    let cache = experiments_dir().join(format!(
        "matrix-{}x{}x{}.json",
        scene.cube.lines(),
        scene.cube.samples(),
        scene.cube.bands()
    ));
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Some(entries) = Json::parse(&text)
            .ok()
            .as_ref()
            .and_then(Json::as_array)
            .and_then(|items| items.iter().map(MatrixEntry::from_json).collect())
        {
            eprintln!("# loaded cached matrix from {}", cache.display());
            return entries;
        }
    }
    let networks = simnet::presets::four_networks();
    let mut entries = Vec::new();
    for algorithm in ALGORITHMS {
        for (variant, options) in [
            ("Hetero", RunOptions::hetero()),
            ("Homo", RunOptions::homo()),
        ] {
            for network in &networks {
                eprintln!("# running {variant}-{algorithm} on {}", network.name());
                let engine = Engine::new(network.clone());
                let run = run_algorithm(algorithm, &engine, scene, params, &options);
                let d = run.report.decomposition();
                let i = run.report.imbalance();
                entries.push(MatrixEntry {
                    algorithm: algorithm.to_string(),
                    variant: variant.to_string(),
                    network: network.name().to_string(),
                    total: d.total,
                    com: d.com,
                    seq: d.seq,
                    par: d.par,
                    d_all: i.d_all,
                    d_minus: i.d_minus,
                });
            }
        }
    }
    let json = Json::Array(entries.iter().map(MatrixEntry::to_json).collect());
    let _ = std::fs::write(&cache, json.pretty());
    entries
}

/// One record of the Thunderhead scalability sweep (Table 8 / Fig. 2).
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Algorithm name.
    pub algorithm: String,
    /// Processor count.
    pub cpus: usize,
    /// Total execution time in virtual seconds.
    pub total: f64,
    /// Sequential component.
    pub seq: f64,
}

impl SweepEntry {
    fn to_json(&self) -> Json {
        microjson::object(vec![
            ("algorithm", Json::String(self.algorithm.clone())),
            ("cpus", Json::Number(self.cpus as f64)),
            ("total", Json::Number(self.total)),
            ("seq", Json::Number(self.seq)),
        ])
    }

    fn from_json(value: &Json) -> Option<SweepEntry> {
        Some(SweepEntry {
            algorithm: value.get("algorithm")?.as_str()?.to_string(),
            cpus: value.get("cpus")?.as_usize()?,
            total: value.get("total")?.as_f64()?,
            seq: value.get("seq")?.as_f64()?,
        })
    }
}

/// Runs (or loads) the Thunderhead sweep over the paper's processor
/// counts for all four heterogeneous algorithms.
pub fn run_thunderhead_sweep(scene: &SyntheticScene, params: &AlgoParams) -> Vec<SweepEntry> {
    let cache = experiments_dir().join(format!(
        "thunderhead-{}x{}x{}.json",
        scene.cube.lines(),
        scene.cube.samples(),
        scene.cube.bands()
    ));
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Some(entries) = Json::parse(&text)
            .ok()
            .as_ref()
            .and_then(Json::as_array)
            .and_then(|items| items.iter().map(SweepEntry::from_json).collect())
        {
            eprintln!("# loaded cached sweep from {}", cache.display());
            return entries;
        }
    }
    let mut entries = Vec::new();
    for algorithm in ALGORITHMS {
        for &cpus in simnet::presets::THUNDERHEAD_SWEEP.iter() {
            eprintln!("# running {algorithm} on thunderhead({cpus})");
            let platform = simnet::presets::thunderhead(cpus);
            let engine = Engine::new(platform);
            let run = run_algorithm(algorithm, &engine, scene, params, &RunOptions::hetero());
            let d = run.report.decomposition();
            entries.push(SweepEntry {
                algorithm: algorithm.to_string(),
                cpus,
                total: d.total,
                seq: d.seq,
            });
        }
    }
    let json = Json::Array(entries.iter().map(SweepEntry::to_json).collect());
    let _ = std::fs::write(&cache, json.pretty());
    entries
}

/// Tristate gate status for the `BENCH_*.json` emitters.
///
/// `"skipped"` means the host or configuration cannot make the
/// measurement meaningful (e.g. too few cores, empty sweep) — distinct
/// from a genuine `"failed"` so trend tooling never mistakes a small CI
/// runner for a regression. Every emitter writes this same schema.
pub fn gate_status(meaningful: bool, passed: bool) -> &'static str {
    if !meaningful {
        "skipped"
    } else if passed {
        "passed"
    } else {
        "failed"
    }
}

/// Writes the canonical `BENCH_*.json` report envelope shared by every
/// emitter (`bench_*`, `ablation_*`, `chaos_soak`), so the schema —
/// `commit` / `epoch_secs` stamps, named gate booleans, the tristate
/// `status` of [`gate_status`] and the aggregate `passed` — cannot
/// drift between binaries:
///
/// ```json
/// { "commit": …, "epoch_secs": …, <payload…>,
///   "gates": { <gates…>, "status": "skipped|passed|failed", "passed": bool } }
/// ```
///
/// `payload` is the emitter's measurement body; `gates` are its named
/// gate fields (booleans plus any context values). The caller computes
/// `all_passed` (write_report does not guess which gate entries are
/// enforced) and `meaningful` (`false` ⇒ `"skipped"`, see
/// [`gate_status`]). Writes to `HETEROSPEC_BENCH_OUT` or `default_out`,
/// logs `# wrote <path>`, and returns the status so the caller decides
/// the exit code.
///
/// # Panics
/// Panics when the output path is unwritable.
pub fn write_report(
    default_out: &str,
    payload: Vec<(&str, microjson::Json)>,
    gates: Vec<(&str, microjson::Json)>,
    meaningful: bool,
    all_passed: bool,
) -> &'static str {
    use microjson::{object, Json};
    let status = gate_status(meaningful, all_passed);
    let mut gate_fields = gates;
    gate_fields.push(("status", Json::String(status.into())));
    gate_fields.push(("passed", Json::Bool(all_passed)));
    let mut fields = vec![
        ("commit", Json::String(git_commit())),
        ("epoch_secs", Json::Number(epoch_secs() as f64)),
    ];
    fields.extend(payload);
    fields.push(("gates", object(gate_fields)));
    let doc = object(fields);
    let out = std::env::var("HETEROSPEC_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, doc.pretty()).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("# wrote {out}");
    status
}

/// The current git commit hash, `"unknown"` outside a checkout.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Seconds since the UNIX epoch, for the `epoch_secs` stamp in the
/// `BENCH_*.json` emitters.
pub fn epoch_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Directory where experiment outputs (CSV/JSON) are written.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Writes rows as a CSV file into [`experiments_dir`].
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = experiments_dir().join(name);
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("# failed to write {}: {e}", path.display()),
    }
}

/// Renders a simple aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(line));
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i] + 2))
            .collect::<String>()
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!("{}", "-".repeat(line));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!("{}", "-".repeat(line));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_config_sizes() {
        // Default is medium.
        std::env::remove_var("HETEROSPEC_SCENE");
        let c = scene_config();
        assert_eq!((c.lines, c.samples), (1024, 256));
    }

    #[test]
    fn gate_status_tristate() {
        assert_eq!(gate_status(false, true), "skipped");
        assert_eq!(gate_status(false, false), "skipped");
        assert_eq!(gate_status(true, true), "passed");
        assert_eq!(gate_status(true, false), "failed");
    }

    #[test]
    fn strip_discards_result() {
        // Covered implicitly by run_algorithm; here check table printing
        // does not panic on ragged input.
        print_table("t", &["a", "b"], &[vec!["1".into(), "22".into()]]);
    }

    #[test]
    fn csv_written_to_experiments_dir() {
        write_csv(
            "unit-test.csv",
            "a,b",
            &["1,2".to_string(), "3,4".to_string()],
        );
        let text = std::fs::read_to_string(experiments_dir().join("unit-test.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_file(experiments_dir().join("unit-test.csv"));
    }

    #[test]
    fn run_algorithm_dispatches_all_names() {
        use hsi_cube::synth::{wtc_scene, WtcConfig};
        let scene = wtc_scene(WtcConfig {
            lines: 24,
            samples: 16,
            bands: 16,
            ..Default::default()
        });
        let params = AlgoParams {
            num_targets: 3,
            num_classes: 3,
            morph_iterations: 1,
            ..Default::default()
        };
        let engine = Engine::new(simnet::presets::thunderhead(2));
        for name in ALGORITHMS {
            let run = run_algorithm(name, &engine, &scene, &params, &RunOptions::hetero());
            assert!(run.report.total_time > 0.0, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_algorithm_panics() {
        use hsi_cube::synth::{wtc_scene, WtcConfig};
        let scene = wtc_scene(WtcConfig {
            lines: 4,
            samples: 4,
            bands: 4,
            ..Default::default()
        });
        let engine = Engine::new(simnet::presets::thunderhead(1));
        let _ = run_algorithm(
            "NOPE",
            &engine,
            &scene,
            &AlgoParams::default(),
            &RunOptions::hetero(),
        );
    }
}
