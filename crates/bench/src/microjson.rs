//! Minimal JSON reader/writer used by the experiment caches and the
//! kernel benchmark emitter.
//!
//! The workspace is built fully offline, so instead of `serde` this is
//! a small hand-rolled recursive-descent parser plus a pretty printer
//! producing `serde_json::to_string_pretty`-style output (two-space
//! indent). It reads any valid JSON document, which keeps caches
//! written by earlier revisions loadable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order preserved lexicographically.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as usize, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The value as &str, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) if items.is_empty() => out.push_str("[]"),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(map) if map.is_empty() => out.push_str("{}"),
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Convenience: an object from key/value pairs.
pub fn object(pairs: Vec<(&str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            let _ = write!(out, "{}", n as i64);
            out.push_str(".0");
            // Integral floats round-trip as `N.0`; usize-like fields are
            // accepted back by `as_usize` since fract() == 0.
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object_value(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // files; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = object(vec![
            ("name", Json::String("covariance".into())),
            ("threads", Json::Number(8.0)),
            ("speedup", Json::Number(4.25)),
            (
                "runs",
                Json::Array(vec![Json::Number(1.5), Json::Null, Json::Bool(true)]),
            ),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_serde_style_pretty_output() {
        let text = r#"[
  {
    "algorithm": "ATDCA",
    "total": 41.25,
    "cpus": 16
  }
]"#;
        let doc = Json::parse(text).unwrap();
        let entry = &doc.as_array().unwrap()[0];
        assert_eq!(entry.get("algorithm").unwrap().as_str(), Some("ATDCA"));
        assert_eq!(entry.get("total").unwrap().as_f64(), Some(41.25));
        assert_eq!(entry.get("cpus").unwrap().as_usize(), Some(16));
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = Json::String("line\nbreak \"quote\" \\slash\u{1}".into());
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{broken").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integral_floats_keep_point_zero() {
        assert_eq!(Json::Number(16.0).pretty(), "16.0");
        assert_eq!(Json::Number(-3.0).pretty(), "-3.0");
        assert_eq!(Json::Number(0.5).pretty(), "0.5");
        assert_eq!(Json::parse("16.0").unwrap().as_usize(), Some(16));
    }
}
