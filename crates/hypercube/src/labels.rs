//! Label images and classification scoring.
//!
//! The paper's Table 4 reports per-class and overall classification
//! accuracies of Hetero-PCT and Hetero-MORPH against the USGS dust/debris
//! ground truth. Our classifiers are *unsupervised* — they emit arbitrary
//! cluster ids — so scoring first finds the accuracy-maximising mapping
//! from predicted clusters to ground-truth classes (majority vote per
//! cluster), then reports per-class recall and overall accuracy, exactly
//! the conventional protocol for unsupervised thematic maps.

use std::collections::HashMap;

/// Sentinel label for pixels with no ground-truth class (not scored).
pub const UNLABELED: u16 = u16::MAX;

/// A 2-D image of `u16` class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelImage {
    lines: usize,
    samples: usize,
    labels: Vec<u16>,
}

impl LabelImage {
    /// Creates a label image filled with [`UNLABELED`].
    pub fn unlabeled(lines: usize, samples: usize) -> Self {
        LabelImage {
            lines,
            samples,
            labels: vec![UNLABELED; lines * samples],
        }
    }

    /// Creates a label image from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `labels.len() != lines * samples`.
    pub fn from_vec(lines: usize, samples: usize, labels: Vec<u16>) -> Self {
        assert_eq!(labels.len(), lines * samples, "from_vec: length mismatch");
        LabelImage {
            lines,
            samples,
            labels,
        }
    }

    /// Number of lines (rows).
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Number of samples (columns).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Label at `(line, sample)`.
    #[inline]
    pub fn get(&self, line: usize, sample: usize) -> u16 {
        self.labels[line * self.samples + sample]
    }

    /// Sets the label at `(line, sample)`.
    #[inline]
    pub fn set(&mut self, line: usize, sample: usize, label: u16) {
        self.labels[line * self.samples + sample] = label;
    }

    /// Borrow of the flat label buffer.
    pub fn as_slice(&self) -> &[u16] {
        &self.labels
    }

    /// Distinct labels present (excluding [`UNLABELED`]), sorted.
    pub fn distinct_labels(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self
            .labels
            .iter()
            .copied()
            .filter(|&l| l != UNLABELED)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of pixels carrying each label (excluding [`UNLABELED`]).
    pub fn class_counts(&self) -> HashMap<u16, usize> {
        let mut m = HashMap::new();
        for &l in &self.labels {
            if l != UNLABELED {
                *m.entry(l).or_insert(0) += 1;
            }
        }
        m
    }
}

/// Classification accuracy report: per-class recall plus overall accuracy,
/// after the optimal cluster→class mapping.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// `(class label, recall percentage)` for every ground-truth class,
    /// sorted by class label.
    pub per_class: Vec<(u16, f64)>,
    /// Overall accuracy percentage over all labeled pixels.
    pub overall: f64,
    /// The cluster→class mapping that was applied.
    pub mapping: HashMap<u16, u16>,
}

/// Scores a predicted label image against ground truth.
///
/// Each predicted cluster is mapped to the ground-truth class that is the
/// majority among its pixels; per-class recall and overall accuracy are
/// then computed over all pixels whose truth label is not [`UNLABELED`].
///
/// # Panics
/// Panics if the two images have different shapes.
pub fn score(predicted: &LabelImage, truth: &LabelImage) -> AccuracyReport {
    assert_eq!(
        (predicted.lines, predicted.samples),
        (truth.lines, truth.samples),
        "score: shape mismatch"
    );
    // cluster -> (class -> count)
    let mut votes: HashMap<u16, HashMap<u16, usize>> = HashMap::new();
    for (&p, &t) in predicted.labels.iter().zip(&truth.labels) {
        if t == UNLABELED || p == UNLABELED {
            continue;
        }
        *votes.entry(p).or_default().entry(t).or_insert(0) += 1;
    }
    // Majority mapping with deterministic tie-break on the class label.
    let mut mapping: HashMap<u16, u16> = HashMap::new();
    for (&cluster, counts) in &votes {
        let mut best: Option<(u16, usize)> = None;
        let mut classes: Vec<_> = counts.iter().collect();
        classes.sort_by_key(|(c, _)| **c);
        for (&class, &n) in classes {
            match best {
                Some((_, bn)) if n <= bn => {}
                _ => best = Some((class, n)),
            }
        }
        if let Some((class, _)) = best {
            mapping.insert(cluster, class);
        }
    }

    let mut correct_per_class: HashMap<u16, usize> = HashMap::new();
    let mut total_per_class: HashMap<u16, usize> = HashMap::new();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (&p, &t) in predicted.labels.iter().zip(&truth.labels) {
        if t == UNLABELED {
            continue;
        }
        total += 1;
        *total_per_class.entry(t).or_insert(0) += 1;
        let mapped = if p == UNLABELED {
            UNLABELED
        } else {
            *mapping.get(&p).unwrap_or(&UNLABELED)
        };
        if mapped == t {
            correct += 1;
            *correct_per_class.entry(t).or_insert(0) += 1;
        }
    }

    let mut per_class: Vec<(u16, f64)> = total_per_class
        .iter()
        .map(|(&class, &n)| {
            let c = *correct_per_class.get(&class).unwrap_or(&0);
            (class, 100.0 * c as f64 / n as f64)
        })
        .collect();
    per_class.sort_by_key(|(c, _)| *c);

    AccuracyReport {
        per_class,
        overall: if total == 0 {
            0.0
        } else {
            100.0 * correct as f64 / total as f64
        },
        mapping,
    }
}

/// A confusion matrix over ground-truth classes (rows) and predicted
/// clusters mapped to classes (columns), in sorted class order.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    /// Sorted ground-truth class labels indexing rows and columns.
    pub classes: Vec<u16>,
    /// `counts[i][j]` = pixels of true class `classes[i]` predicted as
    /// `classes[j]` (after mapping).
    pub counts: Vec<Vec<usize>>,
}

/// Builds a confusion matrix after applying the majority mapping computed
/// by [`score`].
pub fn confusion_matrix(predicted: &LabelImage, truth: &LabelImage) -> ConfusionMatrix {
    let report = score(predicted, truth);
    let classes = truth.distinct_labels();
    let idx: HashMap<u16, usize> = classes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut counts = vec![vec![0usize; classes.len()]; classes.len()];
    for (&p, &t) in predicted.labels.iter().zip(&truth.labels) {
        if t == UNLABELED {
            continue;
        }
        let mapped = if p == UNLABELED {
            None
        } else {
            report.mapping.get(&p).copied()
        };
        if let Some(m) = mapped {
            if let (Some(&ti), Some(&mi)) = (idx.get(&t), idx.get(&m)) {
                counts[ti][mi] += 1;
            }
        }
    }
    ConfusionMatrix { classes, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_100() {
        let truth = LabelImage::from_vec(2, 2, vec![0, 0, 1, 1]);
        // Clusters 7 and 3 map onto classes 0 and 1.
        let pred = LabelImage::from_vec(2, 2, vec![7, 7, 3, 3]);
        let r = score(&pred, &truth);
        assert_eq!(r.overall, 100.0);
        assert_eq!(r.per_class, vec![(0, 100.0), (1, 100.0)]);
        assert_eq!(r.mapping[&7], 0);
        assert_eq!(r.mapping[&3], 1);
    }

    #[test]
    fn partial_errors_scored_per_class() {
        let truth = LabelImage::from_vec(1, 4, vec![0, 0, 1, 1]);
        let pred = LabelImage::from_vec(1, 4, vec![5, 6, 6, 6]);
        // Cluster 5 -> 0; cluster 6 has votes {0:1, 1:2} -> 1.
        let r = score(&pred, &truth);
        assert_eq!(r.overall, 75.0);
        assert_eq!(r.per_class, vec![(0, 50.0), (1, 100.0)]);
    }

    #[test]
    fn unlabeled_pixels_ignored() {
        let truth = LabelImage::from_vec(1, 3, vec![0, UNLABELED, 1]);
        let pred = LabelImage::from_vec(1, 3, vec![2, 2, 9]);
        let r = score(&pred, &truth);
        assert_eq!(r.overall, 100.0);
    }

    #[test]
    fn unlabeled_prediction_counts_as_error() {
        let truth = LabelImage::from_vec(1, 2, vec![0, 0]);
        let pred = LabelImage::from_vec(1, 2, vec![1, UNLABELED]);
        let r = score(&pred, &truth);
        assert_eq!(r.overall, 50.0);
    }

    #[test]
    fn distinct_labels_and_counts() {
        let img = LabelImage::from_vec(1, 5, vec![2, 0, 2, UNLABELED, 1]);
        assert_eq!(img.distinct_labels(), vec![0, 1, 2]);
        let counts = img.class_counts();
        assert_eq!(counts[&2], 2);
        assert_eq!(counts.get(&UNLABELED), None);
    }

    #[test]
    fn confusion_matrix_diagonal_for_perfect() {
        let truth = LabelImage::from_vec(1, 4, vec![0, 0, 1, 1]);
        let pred = LabelImage::from_vec(1, 4, vec![4, 4, 8, 8]);
        let cm = confusion_matrix(&pred, &truth);
        assert_eq!(cm.classes, vec![0, 1]);
        assert_eq!(cm.counts[0][0], 2);
        assert_eq!(cm.counts[1][1], 2);
        assert_eq!(cm.counts[0][1], 0);
    }

    #[test]
    fn empty_truth_yields_zero_overall() {
        let truth = LabelImage::unlabeled(2, 2);
        let pred = LabelImage::from_vec(2, 2, vec![0, 1, 2, 3]);
        let r = score(&pred, &truth);
        assert_eq!(r.overall, 0.0);
        assert!(r.per_class.is_empty());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = LabelImage::unlabeled(2, 3);
        img.set(1, 2, 5);
        assert_eq!(img.get(1, 2), 5);
        assert_eq!(img.get(0, 0), UNLABELED);
    }
}
