//! # hsi-cube — hyperspectral image substrate for `heterospec`
//!
//! Everything the parallel algorithms of Plaza (CLUSTER 2006) need to know
//! about hyperspectral imagery lives here:
//!
//! * [`cube`] — the [`HyperCube`] container: a `lines × samples × bands`
//!   image cube stored band-interleaved-by-pixel (BIP), so each pixel's
//!   full spectral signature is one contiguous slice. Row-block extraction
//!   (with optional overlap borders) supports the paper's hybrid
//!   spatial-domain partitioning.
//! * [`metrics`] — spectral similarity measures: the spectral angle
//!   distance (SAD, eq. 1 of the paper), spectral information divergence
//!   (SID), Euclidean distance and pixel brightness.
//! * [`labels`] — label images, confusion matrices and classification
//!   accuracy scoring against ground truth (the paper's Table 4 metric).
//! * [`synth`] — a parametric synthetic-scene generator standing in for
//!   the AVIRIS World Trade Center scene: 224-band material signatures,
//!   blackbody thermal hot spots (700–1300 °F), spatially coherent class
//!   regions with linear mixing and sensor noise, plus exact ground truth.
//! * [`io`] — minimal ENVI-style raw+header I/O so cubes can be persisted
//!   and exchanged with real tooling.
//!
//! The design keeps pixels in `f32` (AVIRIS-like dynamic range needs no
//! more) while all reductions accumulate in `f64`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cube;
pub mod io;
pub mod labels;
pub mod library;
pub mod metrics;
pub mod stats;
pub mod synth;

pub use cube::HyperCube;
pub use labels::LabelImage;
