//! The hyperspectral image cube container.
//!
//! Storage is band-interleaved-by-pixel (BIP): the spectrum of pixel
//! `(line, sample)` occupies the contiguous slice
//! `data[(line*samples + sample)*bands ..][..bands]`. This matches the
//! paper's hybrid partitioning strategy — partitions are blocks of
//! *spatially adjacent pixel vectors that retain their full spectral
//! content* — because a row block is then a single contiguous memory
//! region, shippable through the message-passing engine in one message
//! (the role MPI derived datatypes play in the paper).

use std::fmt;

/// A `lines × samples × bands` hyperspectral image cube (BIP layout, `f32`).
///
/// ```
/// use hsi_cube::HyperCube;
/// let mut cube = HyperCube::zeros(2, 3, 4);
/// cube.pixel_mut(1, 2)[0] = 0.5;
/// assert_eq!(cube.pixel(1, 2), &[0.5, 0.0, 0.0, 0.0]);
/// assert_eq!(cube.num_pixels(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct HyperCube {
    lines: usize,
    samples: usize,
    bands: usize,
    data: Vec<f32>,
}

/// Spatial coordinates of a pixel: `(line, sample)` = (row, column).
pub type Coord = (usize, usize);

impl HyperCube {
    /// Creates a zero-filled cube.
    pub fn zeros(lines: usize, samples: usize, bands: usize) -> Self {
        HyperCube {
            lines,
            samples,
            bands,
            data: vec![0.0; lines * samples * bands],
        }
    }

    /// Creates a cube from a flat BIP vector.
    ///
    /// # Panics
    /// Panics if `data.len() != lines * samples * bands`.
    pub fn from_vec(lines: usize, samples: usize, bands: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            lines * samples * bands,
            "from_vec: data length mismatch"
        );
        HyperCube {
            lines,
            samples,
            bands,
            data,
        }
    }

    /// Number of image lines (rows).
    #[inline]
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Number of samples per line (columns).
    #[inline]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of spectral bands.
    #[inline]
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Total number of pixels (`lines × samples`).
    #[inline]
    pub fn num_pixels(&self) -> usize {
        self.lines * self.samples
    }

    /// Size of the raw data in bytes (`f32` elements × 4).
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Borrow of the full flat BIP buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the full flat BIP buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the cube, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Spectrum of the pixel at `(line, sample)` as a contiguous slice.
    ///
    /// # Panics
    /// Panics (in debug) on out-of-range coordinates.
    #[inline]
    pub fn pixel(&self, line: usize, sample: usize) -> &[f32] {
        debug_assert!(line < self.lines && sample < self.samples);
        let start = (line * self.samples + sample) * self.bands;
        &self.data[start..start + self.bands]
    }

    /// Mutable spectrum of the pixel at `(line, sample)`.
    #[inline]
    pub fn pixel_mut(&mut self, line: usize, sample: usize) -> &mut [f32] {
        debug_assert!(line < self.lines && sample < self.samples);
        let start = (line * self.samples + sample) * self.bands;
        &mut self.data[start..start + self.bands]
    }

    /// Spectrum of the `i`-th pixel in row-major pixel order.
    #[inline]
    pub fn pixel_flat(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.num_pixels());
        &self.data[i * self.bands..(i + 1) * self.bands]
    }

    /// Converts a flat pixel index to `(line, sample)` coordinates.
    #[inline]
    pub fn coord_of(&self, i: usize) -> Coord {
        (i / self.samples, i % self.samples)
    }

    /// Converts `(line, sample)` coordinates to a flat pixel index.
    #[inline]
    pub fn index_of(&self, (line, sample): Coord) -> usize {
        line * self.samples + sample
    }

    /// Iterator over `(coord, spectrum)` pairs in row-major order.
    pub fn iter_pixels(&self) -> impl Iterator<Item = (Coord, &[f32])> + '_ {
        (0..self.num_pixels()).map(move |i| (self.coord_of(i), self.pixel_flat(i)))
    }

    /// Extracts lines `[first_line, first_line + n_lines)` as an owned
    /// sub-cube (the unit of work shipped to a worker).
    ///
    /// # Panics
    /// Panics if the requested range exceeds the cube.
    pub fn extract_lines(&self, first_line: usize, n_lines: usize) -> HyperCube {
        assert!(
            first_line + n_lines <= self.lines,
            "extract_lines: range {}..{} exceeds {} lines",
            first_line,
            first_line + n_lines,
            self.lines
        );
        let row_len = self.samples * self.bands;
        let start = first_line * row_len;
        let end = (first_line + n_lines) * row_len;
        HyperCube {
            lines: n_lines,
            samples: self.samples,
            bands: self.bands,
            data: self.data[start..end].to_vec(),
        }
    }

    /// Extracts lines with an **overlap border** of `overlap` lines on each
    /// side (clamped to the image boundary), as used by Hetero-MORPH to
    /// trade redundant computation for communication. Returns the sub-cube
    /// together with the number of extra lines actually prepended (so the
    /// caller can map local to global line numbers).
    pub fn extract_lines_with_overlap(
        &self,
        first_line: usize,
        n_lines: usize,
        overlap: usize,
    ) -> (HyperCube, usize) {
        assert!(first_line + n_lines <= self.lines);
        let lo = first_line.saturating_sub(overlap);
        let hi = (first_line + n_lines + overlap).min(self.lines);
        (self.extract_lines(lo, hi - lo), first_line - lo)
    }

    /// Returns the spectrum of the pixel with the largest brightness
    /// `xᵀx`, with its coordinates; ties resolve to the first in row-major
    /// order. Returns `None` for an empty cube.
    pub fn brightest_pixel(&self) -> Option<(Coord, &[f32])> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.num_pixels() {
            let b = crate::metrics::brightness(self.pixel_flat(i));
            match best {
                Some((_, score)) if b <= score => {}
                _ => best = Some((i, b)),
            }
        }
        best.map(|(i, _)| (self.coord_of(i), self.pixel_flat(i)))
    }

    /// Returns a new cube containing only the given bands (in the given
    /// order). Standard preprocessing for AVIRIS products, whose water-
    /// absorption bands are customarily removed before analysis.
    ///
    /// # Panics
    /// Panics when `bands` is empty or any index is out of range.
    pub fn select_bands(&self, bands: &[usize]) -> HyperCube {
        assert!(!bands.is_empty(), "select_bands: no bands selected");
        for &b in bands {
            assert!(b < self.bands, "select_bands: band {b} out of range");
        }
        let mut data = Vec::with_capacity(self.num_pixels() * bands.len());
        for i in 0..self.num_pixels() {
            let px = self.pixel_flat(i);
            for &b in bands {
                data.push(px[b]);
            }
        }
        HyperCube {
            lines: self.lines,
            samples: self.samples,
            bands: bands.len(),
            data,
        }
    }

    /// Per-band mean spectrum of the whole cube (used in tests and as the
    /// sequential reference for the PCT mean step).
    pub fn mean_spectrum(&self) -> Vec<f64> {
        let mut mean = vec![0.0f64; self.bands];
        for i in 0..self.num_pixels() {
            for (m, &v) in mean.iter_mut().zip(self.pixel_flat(i)) {
                *m += v as f64;
            }
        }
        let n = self.num_pixels().max(1) as f64;
        for m in &mut mean {
            *m /= n;
        }
        mean
    }
}

impl fmt::Debug for HyperCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HyperCube({} lines x {} samples x {} bands, {:.1} MB)",
            self.lines,
            self.samples,
            self.bands,
            self.size_bytes() as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_cube() -> HyperCube {
        // 3 lines x 4 samples x 2 bands; value = pixel index + band/10.
        let mut c = HyperCube::zeros(3, 4, 2);
        for i in 0..12 {
            for b in 0..2 {
                let (l, s) = (i / 4, i % 4);
                c.pixel_mut(l, s)[b] = i as f32 + b as f32 / 10.0;
            }
        }
        c
    }

    #[test]
    fn shape_accessors() {
        let c = HyperCube::zeros(3, 4, 5);
        assert_eq!(c.lines(), 3);
        assert_eq!(c.samples(), 4);
        assert_eq!(c.bands(), 5);
        assert_eq!(c.num_pixels(), 12);
        assert_eq!(c.size_bytes(), 3 * 4 * 5 * 4);
    }

    #[test]
    fn pixel_access_roundtrip() {
        let c = ramp_cube();
        assert_eq!(c.pixel(0, 0), &[0.0, 0.1]);
        assert_eq!(c.pixel(2, 3), &[11.0, 11.1]);
        assert_eq!(c.pixel_flat(5), c.pixel(1, 1));
    }

    #[test]
    fn coord_index_inverse() {
        let c = HyperCube::zeros(7, 9, 1);
        for i in 0..c.num_pixels() {
            assert_eq!(c.index_of(c.coord_of(i)), i);
        }
    }

    #[test]
    fn extract_lines_preserves_content() {
        let c = ramp_cube();
        let sub = c.extract_lines(1, 2);
        assert_eq!(sub.lines(), 2);
        assert_eq!(sub.pixel(0, 0), c.pixel(1, 0));
        assert_eq!(sub.pixel(1, 3), c.pixel(2, 3));
    }

    #[test]
    #[should_panic(expected = "extract_lines")]
    fn extract_lines_out_of_range_panics() {
        ramp_cube().extract_lines(2, 2);
    }

    #[test]
    fn extract_with_overlap_clamps_at_borders() {
        let c = ramp_cube();
        // First partition: no lines above to prepend.
        let (sub, pre) = c.extract_lines_with_overlap(0, 1, 1);
        assert_eq!(pre, 0);
        assert_eq!(sub.lines(), 2); // 1 own + 1 below
                                    // Middle partition gets both sides.
        let (sub, pre) = c.extract_lines_with_overlap(1, 1, 1);
        assert_eq!(pre, 1);
        assert_eq!(sub.lines(), 3);
        // Last partition: nothing below.
        let (sub, pre) = c.extract_lines_with_overlap(2, 1, 1);
        assert_eq!(pre, 1);
        assert_eq!(sub.lines(), 2);
    }

    #[test]
    fn brightest_pixel_is_global_max() {
        let c = ramp_cube();
        let ((l, s), px) = c.brightest_pixel().unwrap();
        assert_eq!((l, s), (2, 3));
        assert_eq!(px, c.pixel(2, 3));
    }

    #[test]
    fn brightest_pixel_empty_cube() {
        let c = HyperCube::zeros(0, 0, 4);
        assert!(c.brightest_pixel().is_none());
    }

    #[test]
    fn mean_spectrum_of_constant_cube() {
        let c = HyperCube::from_vec(2, 2, 3, vec![2.0; 12]);
        let m = c.mean_spectrum();
        assert_eq!(m, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn iter_pixels_covers_all_in_order() {
        let c = ramp_cube();
        let coords: Vec<_> = c.iter_pixels().map(|(xy, _)| xy).collect();
        assert_eq!(coords.len(), 12);
        assert_eq!(coords[0], (0, 0));
        assert_eq!(coords[11], (2, 3));
    }
}
