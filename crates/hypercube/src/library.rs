//! Spectral libraries: named reference signatures.
//!
//! The USGS spectral library is how the paper's ground truth was built —
//! field-collected signatures matched into the AVIRIS scene. This module
//! provides the same abstraction: a set of named spectra with SAD
//! matching, a supervised spectral-angle-mapper (SAM) classifier, and a
//! plain-text persistence format (one `name: v v v…` line per entry).

use crate::metrics::sad;
use crate::{HyperCube, LabelImage};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// A named collection of reference spectra.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpectralLibrary {
    entries: Vec<(String, Vec<f32>)>,
}

/// Errors from library I/O and matching.
#[derive(Debug)]
pub enum LibraryError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Spectra lengths are inconsistent.
    BandMismatch {
        /// Expected band count (from the first entry).
        expected: usize,
        /// Offending band count.
        found: usize,
    },
}

impl std::fmt::Display for LibraryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibraryError::Io(e) => write!(f, "I/O error: {e}"),
            LibraryError::Parse { line, message } => write!(f, "line {line}: {message}"),
            LibraryError::BandMismatch { expected, found } => {
                write!(f, "band mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

impl From<std::io::Error> for LibraryError {
    fn from(e: std::io::Error) -> Self {
        LibraryError::Io(e)
    }
}

impl SpectralLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a library from `(name, spectrum)` pairs.
    ///
    /// # Panics
    /// Panics when spectra lengths differ or any spectrum is empty.
    pub fn from_entries(entries: Vec<(String, Vec<f32>)>) -> Self {
        let mut lib = Self::new();
        for (name, spectrum) in entries {
            lib.push(name, spectrum);
        }
        lib
    }

    /// Adds an entry.
    ///
    /// # Panics
    /// Panics when the spectrum is empty or its length differs from the
    /// library's.
    pub fn push(&mut self, name: impl Into<String>, spectrum: Vec<f32>) {
        assert!(!spectrum.is_empty(), "push: empty spectrum");
        if let Some(b) = self.bands() {
            assert_eq!(spectrum.len(), b, "push: band count mismatch");
        }
        self.entries.push((name.into(), spectrum));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the library has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Band count (None when empty).
    pub fn bands(&self) -> Option<usize> {
        self.entries.first().map(|(_, s)| s.len())
    }

    /// Entry name by index.
    pub fn name(&self, i: usize) -> &str {
        &self.entries[i].0
    }

    /// Entry spectrum by index.
    pub fn spectrum(&self, i: usize) -> &[f32] {
        &self.entries[i].1
    }

    /// Finds the best SAD match for a pixel: `(index, sad)`. Returns
    /// `None` when the library is empty.
    pub fn best_match(&self, pixel: &[f32]) -> Option<(usize, f64)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, (_, s))| (i, sad(pixel, s)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Supervised SAM classification: labels every pixel with its best
    /// library match; pixels whose best SAD exceeds `reject_threshold`
    /// (radians) are labeled [`crate::labels::UNLABELED`].
    ///
    /// # Panics
    /// Panics on an empty library or band mismatch with the cube.
    pub fn classify(&self, cube: &HyperCube, reject_threshold: f64) -> LabelImage {
        assert!(!self.is_empty(), "classify: empty library");
        assert_eq!(
            self.bands(),
            Some(cube.bands()),
            "classify: band count mismatch"
        );
        let mut out = LabelImage::unlabeled(cube.lines(), cube.samples());
        for line in 0..cube.lines() {
            for sample in 0..cube.samples() {
                let (idx, d) = self
                    .best_match(cube.pixel(line, sample))
                    .expect("non-empty library");
                if d <= reject_threshold {
                    out.set(line, sample, idx as u16);
                }
            }
        }
        out
    }

    /// Writes the library as text: one `name: v v v…` line per entry.
    pub fn save(&self, path: &Path) -> Result<(), LibraryError> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        for (name, spectrum) in &self.entries {
            write!(w, "{name}:")?;
            for v in spectrum {
                write!(w, " {v}")?;
            }
            writeln!(w)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Loads a library written by [`Self::save`]. Blank lines and lines
    /// starting with `#` are ignored.
    pub fn load(path: &Path) -> Result<Self, LibraryError> {
        let reader = BufReader::new(std::fs::File::open(path)?);
        let mut lib = Self::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (name, rest) = trimmed.split_once(':').ok_or(LibraryError::Parse {
                line: lineno + 1,
                message: "missing ':' separator".into(),
            })?;
            let spectrum: Result<Vec<f32>, _> =
                rest.split_whitespace().map(|t| t.parse::<f32>()).collect();
            let spectrum = spectrum.map_err(|e| LibraryError::Parse {
                line: lineno + 1,
                message: format!("bad value: {e}"),
            })?;
            if spectrum.is_empty() {
                return Err(LibraryError::Parse {
                    line: lineno + 1,
                    message: "entry has no values".into(),
                });
            }
            if let Some(b) = lib.bands() {
                if spectrum.len() != b {
                    return Err(LibraryError::BandMismatch {
                        expected: b,
                        found: spectrum.len(),
                    });
                }
            }
            lib.push(name.trim().to_string(), spectrum);
        }
        Ok(lib)
    }

    /// Builds the ground-truth library of a synthetic scene (one entry
    /// per material class).
    pub fn from_scene(scene: &crate::synth::SyntheticScene) -> Self {
        Self::from_entries(
            scene
                .class_names
                .iter()
                .zip(&scene.class_signatures)
                .map(|(n, s)| (n.to_string(), s.clone()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{score, UNLABELED};
    use crate::synth::{wtc_scene, WtcConfig};

    #[test]
    fn push_and_match() {
        let mut lib = SpectralLibrary::new();
        lib.push("a", vec![1.0, 0.0]);
        lib.push("b", vec![0.0, 1.0]);
        let (i, d) = lib.best_match(&[0.9, 0.1]).unwrap();
        assert_eq!(lib.name(i), "a");
        assert!(d < 0.2);
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.bands(), Some(2));
    }

    #[test]
    #[should_panic(expected = "band count mismatch")]
    fn mismatched_push_panics() {
        let mut lib = SpectralLibrary::new();
        lib.push("a", vec![1.0, 0.0]);
        lib.push("b", vec![1.0]);
    }

    #[test]
    fn supervised_sam_hits_ceiling_accuracy() {
        // Classifying with the true class signatures is the ceiling any
        // unsupervised method is compared against.
        let s = wtc_scene(WtcConfig::tiny());
        let lib = SpectralLibrary::from_scene(&s);
        let labels = lib.classify(&s.cube, f64::INFINITY);
        let report = score(&labels, &s.truth);
        assert!(
            report.overall > 85.0,
            "SAM ceiling too low: {:.1}%",
            report.overall
        );
    }

    #[test]
    fn reject_threshold_marks_anomalies() {
        let s = wtc_scene(WtcConfig::tiny());
        let lib = SpectralLibrary::from_scene(&s);
        // A strict threshold must reject the thermal hot spots (their
        // spectra are unlike every library entry).
        let labels = lib.classify(&s.cube, 0.15);
        let g = s.targets.iter().find(|t| t.name == 'G').unwrap();
        assert_eq!(labels.get(g.coord.0, g.coord.1), UNLABELED);
    }

    #[test]
    fn save_load_roundtrip() {
        let s = wtc_scene(WtcConfig {
            lines: 4,
            samples: 4,
            bands: 8,
            ..Default::default()
        });
        let lib = SpectralLibrary::from_scene(&s);
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("lib.txt");
        lib.save(&path).unwrap();
        let back = SpectralLibrary::load(&path).unwrap();
        assert_eq!(back.len(), lib.len());
        for i in 0..lib.len() {
            assert_eq!(back.name(i), lib.name(i));
            for (a, b) in back.spectrum(i).iter().zip(lib.spectrum(i)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn load_rejects_malformed() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.txt");
        std::fs::write(&path, "no separator here\n").unwrap();
        assert!(matches!(
            SpectralLibrary::load(&path),
            Err(LibraryError::Parse { line: 1, .. })
        ));
        std::fs::write(&path, "a: 1 2\nb: 1 2 3\n").unwrap();
        assert!(matches!(
            SpectralLibrary::load(&path),
            Err(LibraryError::BandMismatch {
                expected: 2,
                found: 3
            })
        ));
        std::fs::write(&path, "# comment\n\na: 1 2\n").unwrap();
        assert_eq!(SpectralLibrary::load(&path).unwrap().len(), 1);
    }
}
