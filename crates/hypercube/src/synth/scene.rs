//! The synthetic scene builder.
//!
//! A scene is assembled in four stages, mirroring how a real urban AVIRIS
//! acquisition is structured:
//!
//! 1. **Spatial layout** — each material class owns a handful of seed
//!    points; every pixel belongs to the class of its nearest seed
//!    (a Voronoi tessellation), producing the spatially coherent regions
//!    that spatial/spectral algorithms such as Hetero-MORPH exploit.
//! 2. **Linear mixing** — near region borders, pixels are convex mixtures
//!    of the two nearest classes with weights driven by the distance
//!    difference, reproducing the mixed-pixel phenomenon central to
//!    hyperspectral analysis (and to UFCLS in particular).
//! 3. **Thermal targets** — point targets add a temperature-scaled
//!    blackbody term on top of the local background (the WTC hot spots).
//! 4. **Sensor noise** — i.i.d. Gaussian noise per band (Box–Muller from
//!    a seeded ChaCha stream, so scenes are bit-reproducible).

use super::blackbody;
use super::materials::Material;
use crate::cube::{Coord, HyperCube};
use crate::labels::LabelImage;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Placement request for a thermal point target.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetPlacement {
    /// Single-letter designation ('A'–'G' in the WTC preset).
    pub name: char,
    /// Fire temperature in °F.
    pub temp_f: f64,
    /// Pixel coordinates `(line, sample)`.
    pub coord: Coord,
    /// Amplitude of the thermal term added to the background (reflectance
    /// units at the signature's peak band).
    pub amplitude: f64,
    /// Multiplicative emissivity features `(center µm, width µm, amp)`:
    /// the thermal term is scaled by `1 + Σ amp·exp(−(λ−c)²/2w²)`.
    /// Different fires burn different material mixes, so each real hot
    /// spot has its own emission structure — this is what makes the hot
    /// spots mutually distinct spectral directions (and ATDCA able to
    /// separate them, as in the paper's Table 3).
    pub emissivity: Vec<(f64, f64, f64)>,
}

/// A placed target in the generated scene (the ground-truth record).
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSpec {
    /// Single-letter designation.
    pub name: char,
    /// Fire temperature in °F.
    pub temp_f: f64,
    /// Pixel coordinates `(line, sample)`.
    pub coord: Coord,
}

/// A generated scene: the cube, per-pixel ground-truth class labels, the
/// placed targets and the noise-free class signatures.
#[derive(Debug, Clone)]
pub struct SyntheticScene {
    /// The hyperspectral image cube.
    pub cube: HyperCube,
    /// Ground-truth class label per pixel (class = material index).
    pub truth: LabelImage,
    /// Ground-truth thermal targets.
    pub targets: Vec<TargetSpec>,
    /// Noise-free reflectance signature of each class, in label order.
    pub class_signatures: Vec<Vec<f32>>,
    /// Names of the material classes, in label order.
    pub class_names: Vec<&'static str>,
}

/// Builder for [`SyntheticScene`].
///
/// ```
/// use hsi_cube::synth::scene::SceneBuilder;
/// use hsi_cube::synth::materials;
/// let scene = SceneBuilder::new(16, 16, 32)
///     .seed(7)
///     .materials(materials::full_library())
///     .build();
/// assert_eq!(scene.cube.bands(), 32);
/// assert_eq!(scene.class_names.len(), 11);
/// ```
#[derive(Debug, Clone)]
pub struct SceneBuilder {
    lines: usize,
    samples: usize,
    bands: usize,
    seed: u64,
    noise_sigma: f64,
    shading_sigma: f64,
    mix_width: f64,
    seeds_per_class: usize,
    seed_weights: Option<Vec<usize>>,
    materials: Vec<Material>,
    targets: Vec<TargetPlacement>,
}

impl SceneBuilder {
    /// Starts a builder for a `lines × samples × bands` scene.
    pub fn new(lines: usize, samples: usize, bands: usize) -> Self {
        SceneBuilder {
            lines,
            samples,
            bands,
            seed: 0,
            noise_sigma: 0.004,
            shading_sigma: 0.0,
            mix_width: 2.0,
            seeds_per_class: 4,
            seed_weights: None,
            materials: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Sets the RNG seed (scenes are deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-band Gaussian noise standard deviation.
    pub fn noise_sigma(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Sets the illumination (shading) variability: each pixel's
    /// reflective component is scaled by `max(0.3, 1 + σ·𝒩)`, modelling
    /// urban shadow and slope effects. Thermal target emission is *not*
    /// shaded (fires emit). Scaling preserves spectral angles, so
    /// SAD-based processing is unaffected — but it defeats detectors
    /// that are not scale-invariant, which is precisely how UFCLS loses
    /// the coolest hot spots in the paper's Table 3 while ATDCA's
    /// orthogonal projection (which annihilates every scaled copy of an
    /// in-span direction) does not.
    pub fn shading_sigma(mut self, sigma: f64) -> Self {
        self.shading_sigma = sigma;
        self
    }

    /// Sets the border mixing width in pixels (0 disables mixing).
    pub fn mix_width(mut self, w: f64) -> Self {
        self.mix_width = w;
        self
    }

    /// Sets how many Voronoi seeds each class owns.
    pub fn seeds_per_class(mut self, n: usize) -> Self {
        assert!(n > 0, "seeds_per_class: need at least one seed");
        self.seeds_per_class = n;
        self
    }

    /// Sets per-class seed counts (overrides [`Self::seeds_per_class`]);
    /// classes with more seeds occupy proportionally more of the scene.
    ///
    /// # Panics
    /// Panics at [`Self::build`] if the length differs from the material
    /// count or any entry is zero.
    pub fn seed_weights(mut self, weights: Vec<usize>) -> Self {
        self.seed_weights = Some(weights);
        self
    }

    /// Sets the material library (class label = index).
    pub fn materials(mut self, m: Vec<Material>) -> Self {
        self.materials = m;
        self
    }

    /// Adds thermal point targets.
    pub fn targets(mut self, t: Vec<TargetPlacement>) -> Self {
        self.targets = t;
        self
    }

    /// Generates the scene.
    ///
    /// # Panics
    /// Panics if no materials were supplied, the scene is empty, or a
    /// target lies outside the image.
    pub fn build(self) -> SyntheticScene {
        assert!(!self.materials.is_empty(), "build: no materials supplied");
        assert!(
            self.lines > 0 && self.samples > 0 && self.bands > 0,
            "build: empty scene"
        );
        for t in &self.targets {
            assert!(
                t.coord.0 < self.lines && t.coord.1 < self.samples,
                "build: target {} at {:?} outside {}x{}",
                t.name,
                t.coord,
                self.lines,
                self.samples
            );
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let grid = super::bands::grid(self.bands);
        let signatures: Vec<Vec<f32>> = self
            .materials
            .iter()
            .map(|m| m.reflectance(&grid).iter().map(|&v| v as f32).collect())
            .collect();

        // Stage 1: Voronoi seeds. Each class places its seed count
        // (uniform by default, or per-class weights).
        let weights: Vec<usize> = match &self.seed_weights {
            Some(w) => {
                assert_eq!(
                    w.len(),
                    self.materials.len(),
                    "seed_weights: need one entry per material"
                );
                assert!(w.iter().all(|&n| n > 0), "seed_weights: zero entry");
                w.clone()
            }
            None => vec![self.seeds_per_class; self.materials.len()],
        };
        let mut seeds: Vec<(f64, f64, u16)> = Vec::new();
        for (class, &count) in weights.iter().enumerate() {
            for _ in 0..count {
                let l = rng.gen_range(0.0..self.lines as f64);
                let s = rng.gen_range(0.0..self.samples as f64);
                seeds.push((l, s, class as u16));
            }
        }

        // Per-line generation, parallelised with rayon. Each line owns a
        // ChaCha stream seeded from (scene seed, line), so the result is
        // bit-identical regardless of thread count or schedule.
        use rayon::prelude::*;
        let row_results: Vec<(Vec<f32>, Vec<u16>)> = (0..self.lines)
            .into_par_iter()
            .map(|line| {
                let mut row = vec![0.0f32; self.samples * self.bands];
                let mut labels = vec![0u16; self.samples];
                let mut line_rng =
                    ChaCha8Rng::seed_from_u64(splitmix(self.seed ^ (line as u64 + 1)));
                let mut gauss = GaussianStream::new(&mut line_rng);
                for sample in 0..self.samples {
                    // Nearest and second-nearest seed of a different class.
                    let (pl, ps) = (line as f64 + 0.5, sample as f64 + 0.5);
                    let mut d1 = f64::INFINITY;
                    let mut c1 = 0u16;
                    for &(sl, ss, class) in &seeds {
                        let d = (sl - pl).powi(2) + (ss - ps).powi(2);
                        if d < d1 {
                            d1 = d;
                            c1 = class;
                        }
                    }
                    let mut d2 = f64::INFINITY;
                    let mut c2 = c1;
                    for &(sl, ss, class) in &seeds {
                        if class == c1 {
                            continue;
                        }
                        let d = (sl - pl).powi(2) + (ss - ps).powi(2);
                        if d < d2 {
                            d2 = d;
                            c2 = class;
                        }
                    }
                    labels[sample] = c1;

                    // Stage 2: mixing weight from the distance margin.
                    let w1 = if self.mix_width > 0.0 && c2 != c1 {
                        let margin = d2.sqrt() - d1.sqrt();
                        // w1 in [0.5, 1]: at the exact border the two
                        // classes contribute equally; one mix-width in,
                        // the pixel is effectively pure.
                        0.5 + 0.5 * (margin / self.mix_width).clamp(0.0, 1.0)
                    } else {
                        1.0
                    };

                    let shade = if self.shading_sigma > 0.0 {
                        (1.0 + self.shading_sigma * gauss.next(&mut line_rng)).max(0.3)
                    } else {
                        1.0
                    };
                    let px = &mut row[sample * self.bands..(sample + 1) * self.bands];
                    let (sig1, sig2) = (&signatures[c1 as usize], &signatures[c2 as usize]);
                    for b in 0..self.bands {
                        let pure = w1 * sig1[b] as f64 + (1.0 - w1) * sig2[b] as f64;
                        // Stage 4 (noise + shading) folded into this pass.
                        px[b] = (shade * pure + self.noise_sigma * gauss.next(&mut line_rng))
                            .max(0.0) as f32;
                    }
                }
                (row, labels)
            })
            .collect();
        let mut data = Vec::with_capacity(self.lines * self.samples * self.bands);
        let mut label_data = Vec::with_capacity(self.lines * self.samples);
        for (row, labels) in row_results {
            data.extend_from_slice(&row);
            label_data.extend_from_slice(&labels);
        }
        let mut cube = HyperCube::from_vec(self.lines, self.samples, self.bands, data);
        let truth = LabelImage::from_vec(self.lines, self.samples, label_data);
        let _ = &mut rng;

        // Stage 3: thermal targets on top of whatever background is there.
        let mut placed = Vec::with_capacity(self.targets.len());
        for t in &self.targets {
            let thermal = blackbody::thermal_signature(&grid, t.temp_f);
            let px = cube.pixel_mut(t.coord.0, t.coord.1);
            for b in 0..self.bands {
                let mut emiss = 1.0;
                for &(c, w, a) in &t.emissivity {
                    let d = (grid[b] - c) / w;
                    emiss += a * (-0.5 * d * d).exp();
                }
                px[b] = (0.4 * px[b] as f64 + t.amplitude * thermal[b] * emiss.max(0.0)).max(0.0)
                    as f32;
            }
            placed.push(TargetSpec {
                name: t.name,
                temp_f: t.temp_f,
                coord: t.coord,
            });
        }

        SyntheticScene {
            cube,
            truth,
            targets: placed,
            class_signatures: signatures,
            class_names: self.materials.iter().map(|m| m.name).collect(),
        }
    }
}

/// SplitMix64 finaliser: decorrelates per-line seeds derived from the
/// scene seed by XOR.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Box–Muller Gaussian sampler producing pairs from a uniform stream.
struct GaussianStream {
    spare: Option<f64>,
}

impl GaussianStream {
    fn new(_rng: &mut ChaCha8Rng) -> Self {
        GaussianStream { spare: None }
    }

    fn next(&mut self, rng: &mut ChaCha8Rng) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Draw until u1 is safely positive (probability ~1 per draw).
        let mut u1: f64 = rng.gen();
        while u1 <= f64::MIN_POSITIVE {
            u1 = rng.gen();
        }
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::sad;
    use crate::synth::materials;

    fn tiny_scene(seed: u64) -> SyntheticScene {
        SceneBuilder::new(24, 16, 32)
            .seed(seed)
            .materials(materials::full_library())
            .targets(vec![TargetPlacement {
                name: 'A',
                temp_f: 1000.0,
                coord: (5, 5),
                amplitude: 2.0,
                emissivity: vec![(1.6, 0.08, 0.5)],
            }])
            .build()
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = tiny_scene(7);
        let b = tiny_scene(7);
        assert_eq!(a.cube, b.cube);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_scene(1);
        let b = tiny_scene(2);
        assert_ne!(a.cube, b.cube);
    }

    #[test]
    fn every_pixel_labeled() {
        let s = tiny_scene(3);
        for line in 0..24 {
            for sample in 0..16 {
                assert_ne!(s.truth.get(line, sample), crate::labels::UNLABELED);
            }
        }
    }

    #[test]
    fn pixels_resemble_their_class_signature() {
        // Away from borders and with low noise, a pixel's SAD to its own
        // class signature must beat its SAD to most other signatures.
        let s = SceneBuilder::new(32, 32, 64)
            .seed(11)
            .noise_sigma(0.001)
            .materials(materials::full_library())
            .build();
        let mut hits = 0usize;
        let mut total = 0usize;
        for line in 0..32 {
            for sample in 0..32 {
                let px = s.cube.pixel(line, sample);
                let own = s.truth.get(line, sample) as usize;
                let best = crate::metrics::nearest_by_sad(px, &s.class_signatures).unwrap();
                total += 1;
                if best == own {
                    hits += 1;
                }
            }
        }
        // Mixing zones blur some pixels; the large majority must match.
        assert!(
            hits as f64 / total as f64 > 0.7,
            "only {hits}/{total} pixels match their class"
        );
    }

    #[test]
    fn target_pixel_is_anomalous_and_bright() {
        let s = tiny_scene(9);
        let t = &s.targets[0];
        let px = s.cube.pixel(t.coord.0, t.coord.1);
        // The hot spot must be the brightest pixel in the scene...
        let ((bl, bs), _) = s.cube.brightest_pixel().unwrap();
        assert_eq!((bl, bs), t.coord);
        // ...and spectrally unlike every class signature.
        for sig in &s.class_signatures {
            assert!(sad(px, sig) > 0.15, "target not anomalous enough");
        }
    }

    #[test]
    fn mixing_disabled_gives_pure_borders() {
        let s = SceneBuilder::new(16, 16, 16)
            .seed(5)
            .noise_sigma(0.0)
            .mix_width(0.0)
            .materials(materials::full_library())
            .build();
        // With no mixing and no noise every pixel equals its signature.
        for line in 0..16 {
            for sample in 0..16 {
                let own = s.truth.get(line, sample) as usize;
                let px = s.cube.pixel(line, sample);
                for (a, b) in px.iter().zip(&s.class_signatures[own]) {
                    assert!((a - b).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn regions_are_spatially_coherent() {
        // A pixel's 4-neighbours share its label far more often than not.
        let s = SceneBuilder::new(64, 64, 8)
            .seed(13)
            .materials(materials::full_library())
            .build();
        let mut same = 0usize;
        let mut total = 0usize;
        for line in 0..63 {
            for sample in 0..63 {
                total += 2;
                if s.truth.get(line, sample) == s.truth.get(line + 1, sample) {
                    same += 1;
                }
                if s.truth.get(line, sample) == s.truth.get(line, sample + 1) {
                    same += 1;
                }
            }
        }
        assert!(same as f64 / total as f64 > 0.8, "{same}/{total}");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_target_panics() {
        SceneBuilder::new(8, 8, 4)
            .materials(materials::full_library())
            .targets(vec![TargetPlacement {
                name: 'Z',
                temp_f: 900.0,
                coord: (8, 0),
                amplitude: 1.0,
                emissivity: Vec::new(),
            }])
            .build();
    }

    #[test]
    #[should_panic(expected = "no materials")]
    fn empty_material_list_panics() {
        SceneBuilder::new(4, 4, 4).build();
    }
}
