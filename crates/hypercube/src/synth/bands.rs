//! The AVIRIS spectral sampling grid.
//!
//! AVIRIS records 224 contiguous bands covering 0.4–2.5 µm at roughly
//! 10 nm sampling. We model the grid as uniform over that range, which is
//! accurate to within a band's width and all this library needs.

/// Number of AVIRIS spectral bands.
pub const AVIRIS_BANDS: usize = 224;

/// Shortest AVIRIS wavelength in micrometres.
pub const LAMBDA_MIN_UM: f64 = 0.4;

/// Longest AVIRIS wavelength in micrometres.
pub const LAMBDA_MAX_UM: f64 = 2.5;

/// Centre wavelength (µm) of band `b` on an `n`-band uniform grid.
#[inline]
pub fn wavelength_um(b: usize, n: usize) -> f64 {
    assert!(n > 0, "wavelength_um: need at least one band");
    if n == 1 {
        return 0.5 * (LAMBDA_MIN_UM + LAMBDA_MAX_UM);
    }
    LAMBDA_MIN_UM + (LAMBDA_MAX_UM - LAMBDA_MIN_UM) * (b as f64) / ((n - 1) as f64)
}

/// The full wavelength grid for `n` bands.
pub fn grid(n: usize) -> Vec<f64> {
    (0..n).map(|b| wavelength_um(b, n)).collect()
}

/// The atmospheric water-vapour absorption windows (µm) customarily
/// removed from AVIRIS reflectance products (around 1.4 and 1.9 µm).
pub const WATER_ABSORPTION_WINDOWS_UM: [(f64, f64); 2] = [(1.34, 1.42), (1.80, 1.95)];

/// Band indices on an `n`-band grid that fall **outside** the water
/// absorption windows — the usual "good bands" list for analysis.
pub fn good_bands(n: usize) -> Vec<usize> {
    grid(n)
        .into_iter()
        .enumerate()
        .filter(|&(_, um)| {
            !WATER_ABSORPTION_WINDOWS_UM
                .iter()
                .any(|&(lo, hi)| um >= lo && um <= hi)
        })
        .map(|(b, _)| b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_endpoints() {
        let g = grid(AVIRIS_BANDS);
        assert_eq!(g.len(), 224);
        assert!((g[0] - 0.4).abs() < 1e-12);
        assert!((g[223] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn grid_monotone() {
        let g = grid(64);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn single_band_grid_is_midpoint() {
        assert!((wavelength_um(0, 1) - 1.45).abs() < 1e-12);
    }

    #[test]
    fn sampling_interval_near_10nm() {
        let g = grid(AVIRIS_BANDS);
        let step = g[1] - g[0];
        assert!((step - 0.0094).abs() < 1e-3, "step = {step} µm");
    }

    #[test]
    fn good_bands_exclude_water_windows() {
        let good = good_bands(AVIRIS_BANDS);
        assert!(good.len() < AVIRIS_BANDS);
        assert!(good.len() > AVIRIS_BANDS - 40, "too many bands dropped");
        let g = grid(AVIRIS_BANDS);
        for &b in &good {
            for &(lo, hi) in &WATER_ABSORPTION_WINDOWS_UM {
                assert!(
                    g[b] < lo || g[b] > hi,
                    "band {b} ({} µm) inside a water window",
                    g[b]
                );
            }
        }
        // Indices are sorted and unique.
        for w in good.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn band_selection_on_cube() {
        use crate::synth::{wtc_scene, WtcConfig};
        let s = wtc_scene(WtcConfig {
            lines: 8,
            samples: 6,
            bands: 64,
            ..Default::default()
        });
        let good = good_bands(64);
        let sub = s.cube.select_bands(&good);
        assert_eq!(sub.bands(), good.len());
        assert_eq!(sub.lines(), 8);
        // Content preserved band-for-band.
        for (new_b, &old_b) in good.iter().enumerate() {
            assert_eq!(sub.pixel(3, 2)[new_b], s.cube.pixel(3, 2)[old_b]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_bands_rejects_bad_index() {
        use crate::HyperCube;
        HyperCube::zeros(2, 2, 4).select_bands(&[0, 9]);
    }
}
