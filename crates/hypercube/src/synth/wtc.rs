//! The ready-made World-Trade-Center-like scene preset.
//!
//! Mirrors the structure of the AVIRIS acquisition the paper evaluates on:
//! 224 bands over 0.4–2.5 µm, seven dust/debris classes plus urban
//! background materials, and seven thermal hot spots labelled 'A'–'G'
//! spanning 700 °F to 1300 °F (the USGS thermal map's range, with 'F' the
//! coolest and 'G' the hottest, as in the paper's Table 3).
//!
//! The full-size paper scene is 2133 × 512 pixels (~1 GB); the default
//! here is 256 × 256 so tests and examples stay fast. Virtual-time
//! experiment results scale linearly with pixel count, so every ratio the
//! benchmark tables report is preserved at any size (see DESIGN.md).

use super::materials;
use super::scene::{SceneBuilder, SyntheticScene, TargetPlacement};

/// Configuration of the WTC-like preset scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WtcConfig {
    /// Number of image lines.
    pub lines: usize,
    /// Number of samples per line.
    pub samples: usize,
    /// Number of spectral bands.
    pub bands: usize,
    /// RNG seed.
    pub seed: u64,
    /// Per-band Gaussian noise sigma.
    pub noise_sigma: f64,
}

impl Default for WtcConfig {
    fn default() -> Self {
        WtcConfig {
            lines: 256,
            samples: 256,
            bands: super::bands::AVIRIS_BANDS,
            seed: 20010916, // the acquisition date
            noise_sigma: 0.004,
        }
    }
}

impl WtcConfig {
    /// The paper's full-size scene (2133 × 512 × 224, ~1 GB). Heavy: only
    /// use when absolute-scale timings are wanted.
    pub fn full_size() -> Self {
        WtcConfig {
            lines: 2133,
            samples: 512,
            ..Default::default()
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        WtcConfig {
            lines: 48,
            samples: 40,
            bands: 64,
            ..Default::default()
        }
    }
}

/// The seven hot spots: `(name, temperature °F)` in the paper's Table 3
/// order. 'F' is the 700 °F spot, 'G' the 1300 °F one.
pub const HOT_SPOTS: [(char, f64); 7] = [
    ('A', 1000.0),
    ('B', 1100.0),
    ('C', 900.0),
    ('D', 850.0),
    ('E', 750.0),
    ('F', 700.0),
    ('G', 1300.0),
];

/// Builds the WTC-like scene for a configuration.
///
/// Hot spots are clustered in the upper-middle of the image (the "WTC
/// complex"), at deterministic positions scaled to the image size; the
/// thermal amplitude grows with temperature, so the coolest spot 'F' is
/// the hardest to detect — reproducing the paper's observation that
/// UFCLS misses it while ATDCA does not.
pub fn wtc_scene(cfg: WtcConfig) -> SyntheticScene {
    // Fractional positions of the 7 hot spots (line, sample), spread so no
    // two share a pixel even on tiny grids.
    const POS: [(f64, f64); 7] = [
        (0.30, 0.42),
        (0.32, 0.55),
        (0.38, 0.47),
        (0.28, 0.63),
        (0.42, 0.58),
        (0.45, 0.35),
        (0.35, 0.30),
    ];
    // Per-spot emissivity structure: each fire burns a different material
    // mix (jet fuel, plastics, steel fireproofing…), giving each hot spot
    // distinctive emission features in the SWIR. Without these the
    // normalised Planck curves are nearly collinear and no projection-
    // based detector could separate the spots.
    const EMISSIVITY: [&[(f64, f64, f64)]; 7] = [
        &[(1.60, 0.08, 0.50), (2.10, 0.06, -0.30)], // A
        &[(1.85, 0.07, 0.55), (1.25, 0.06, 0.30)],  // B
        &[(2.25, 0.08, 0.45), (1.50, 0.05, -0.25)], // C
        &[(1.35, 0.07, 0.50), (2.40, 0.06, 0.30)],  // D
        &[(2.00, 0.06, 0.55), (1.70, 0.05, -0.30)], // E
        &[(1.45, 0.05, 1.20), (2.30, 0.07, 0.80), (1.05, 0.05, 0.60)], // F
        &[(1.95, 0.09, -0.35), (1.15, 0.06, 0.45)], // G
    ];
    let targets: Vec<TargetPlacement> = HOT_SPOTS
        .iter()
        .zip(POS.iter())
        .zip(EMISSIVITY.iter())
        .map(|((&(name, temp_f), &(fl, fs)), &emiss)| {
            let line = ((fl * cfg.lines as f64) as usize).min(cfg.lines - 1);
            let sample = ((fs * cfg.samples as f64) as usize).min(cfg.samples - 1);
            // 700 °F -> 0.25, 1300 °F -> 2.0 (linear in temperature):
            // the coolest fires are radiometrically subtle.
            let amplitude = 0.30 + (temp_f - 700.0) / 600.0 * 1.70;
            TargetPlacement {
                name,
                temp_f,
                coord: (line, sample),
                amplitude,
                emissivity: emiss.to_vec(),
            }
        })
        .collect();

    // Lower Manhattan after the collapse was blanketed in dust/debris:
    // the seven debris classes dominate the scene (six seeds each),
    // with background materials confined to single small pockets — the
    // regime in which the USGS map's seven classes are the scene's
    // dominant spectral clusters, as in the paper's evaluation area.
    let mut weights = vec![6usize; materials::NUM_DEBRIS_CLASSES];
    weights.extend(vec![
        1usize;
        materials::full_library().len()
            - materials::NUM_DEBRIS_CLASSES
    ]);
    SceneBuilder::new(cfg.lines, cfg.samples, cfg.bands)
        .seed(cfg.seed)
        .noise_sigma(cfg.noise_sigma)
        .shading_sigma(0.18)
        .mix_width(1.5)
        .materials(materials::full_library())
        .seed_weights(weights)
        .targets(targets)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::brightness;

    #[test]
    fn default_scene_has_seven_targets() {
        let s = wtc_scene(WtcConfig::tiny());
        assert_eq!(s.targets.len(), 7);
        let names: Vec<char> = s.targets.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!['A', 'B', 'C', 'D', 'E', 'F', 'G']);
    }

    #[test]
    fn targets_have_distinct_coords() {
        let s = wtc_scene(WtcConfig::tiny());
        for i in 0..7 {
            for j in (i + 1)..7 {
                assert_ne!(s.targets[i].coord, s.targets[j].coord);
            }
        }
    }

    #[test]
    fn hotter_targets_are_brighter() {
        let s = wtc_scene(WtcConfig::tiny());
        let b = |name: char| {
            let t = s.targets.iter().find(|t| t.name == name).unwrap();
            brightness(s.cube.pixel(t.coord.0, t.coord.1))
        };
        assert!(b('G') > b('A'));
        assert!(b('A') > b('F'));
    }

    #[test]
    fn class_count_matches_library() {
        let s = wtc_scene(WtcConfig::tiny());
        assert_eq!(s.class_signatures.len(), 11);
        assert_eq!(s.class_names.len(), 11);
        // Debris classes must actually appear in the truth map.
        let labels = s.truth.distinct_labels();
        assert!(labels.len() >= 8, "only {} classes present", labels.len());
    }

    #[test]
    fn full_size_config_matches_paper() {
        let c = WtcConfig::full_size();
        assert_eq!((c.lines, c.samples, c.bands), (2133, 512, 224));
    }

    #[test]
    fn scene_is_reproducible() {
        let a = wtc_scene(WtcConfig::tiny());
        let b = wtc_scene(WtcConfig::tiny());
        assert_eq!(a.cube, b.cube);
        assert_eq!(a.targets, b.targets);
    }
}
