//! Planck blackbody radiance for thermal hot-spot synthesis.
//!
//! The WTC fires produced thermal anomalies between 700 °F and 1300 °F
//! (USGS thermal map, Fig. 1 right of the paper). At those temperatures a
//! blackbody's spectral radiance rises steeply across the AVIRIS
//! short-wave-infrared range (2.0–2.5 µm), which is exactly how the real
//! hot spots announce themselves in AVIRIS radiance data. We synthesise a
//! hot-spot signature by adding a temperature-dependent, SWIR-weighted
//! Planck term to the underlying debris reflectance.

/// First radiation constant `2hc²` in W·µm⁴/m²  (wavelengths in µm).
const C1: f64 = 1.191042e8;

/// Second radiation constant `hc/k` in µm·K.
const C2: f64 = 1.4387752e4;

/// Converts degrees Fahrenheit to kelvin.
#[inline]
pub fn fahrenheit_to_kelvin(f: f64) -> f64 {
    (f - 32.0) / 1.8 + 273.15
}

/// Planck spectral radiance `B(λ, T)` in W·m⁻²·sr⁻¹·µm⁻¹ for wavelength
/// `lambda_um` (µm) and temperature `t_kelvin` (K).
#[inline]
pub fn planck_radiance(lambda_um: f64, t_kelvin: f64) -> f64 {
    assert!(lambda_um > 0.0 && t_kelvin > 0.0);
    let x = C2 / (lambda_um * t_kelvin);
    // Guard against overflow for very short wavelengths / low temperatures:
    // exp(x) saturates and radiance underflows to zero, which is correct.
    if x > 700.0 {
        return 0.0;
    }
    C1 / (lambda_um.powi(5) * (x.exp() - 1.0))
}

/// A normalised thermal emission signature over a wavelength grid: the
/// Planck curve at `temp_f` (°F), scaled so its maximum over the grid is
/// `1.0`. Adding `amplitude × signature` to a reflectance spectrum yields
/// a hot-spot pixel whose SWIR excess grows with temperature.
pub fn thermal_signature(grid_um: &[f64], temp_f: f64) -> Vec<f64> {
    let t = fahrenheit_to_kelvin(temp_f);
    let raw: Vec<f64> = grid_um.iter().map(|&l| planck_radiance(l, t)).collect();
    let max = raw.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return vec![0.0; grid_um.len()];
    }
    raw.into_iter().map(|v| v / max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::bands;

    #[test]
    fn fahrenheit_conversions() {
        assert!((fahrenheit_to_kelvin(32.0) - 273.15).abs() < 1e-9);
        assert!((fahrenheit_to_kelvin(212.0) - 373.15).abs() < 1e-9);
        // The paper's range: 700 F ≈ 644 K, 1300 F ≈ 978 K.
        assert!((fahrenheit_to_kelvin(700.0) - 644.26).abs() < 0.01);
        assert!((fahrenheit_to_kelvin(1300.0) - 977.59).abs() < 0.01);
    }

    #[test]
    fn planck_positive_and_peaked() {
        // At 900 K the Planck peak is near 3.2 µm (Wien), so radiance must
        // increase monotonically across the AVIRIS range (0.4–2.5 µm).
        let g = bands::grid(64);
        let vals: Vec<f64> = g.iter().map(|&l| planck_radiance(l, 900.0)).collect();
        assert!(vals.iter().all(|&v| v >= 0.0));
        assert!(vals[63] > vals[32], "radiance should grow into the SWIR");
    }

    #[test]
    fn hotter_means_brighter_everywhere() {
        let g = bands::grid(32);
        for &l in &g {
            assert!(planck_radiance(l, 1000.0) > planck_radiance(l, 700.0));
        }
    }

    #[test]
    fn thermal_signature_normalised() {
        let g = bands::grid(bands::AVIRIS_BANDS);
        let sig = thermal_signature(&g, 1000.0);
        let max = sig.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(sig.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The signature must be SWIR-weighted: last band is the max.
        assert!((sig[223] - 1.0).abs() < 1e-12);
        // And negligible in the visible.
        assert!(sig[0] < 1e-6);
    }

    #[test]
    fn temperature_separates_signatures() {
        // The mid-SWIR ratio distinguishes 700 F from 1300 F — the property
        // that lets target detection tell hot spots apart.
        let g = bands::grid(bands::AVIRIS_BANDS);
        let cold = thermal_signature(&g, 700.0);
        let hot = thermal_signature(&g, 1300.0);
        let mid = 180; // ~1.9 µm
        assert!(hot[mid] > cold[mid] * 1.05);
    }
}
