//! Synthetic AVIRIS-like scene generation.
//!
//! The paper's experiments run on a 224-band AVIRIS scene of the World
//! Trade Center collected on 2001-09-16, with USGS ground truth for seven
//! thermal hot spots ('A'–'G', 700–1300 °F) and seven dust/debris classes.
//! That data cannot be redistributed here, so this module builds the
//! closest synthetic equivalent that exercises the same code paths:
//!
//! * [`bands`] — the AVIRIS wavelength grid (0.4–2.5 µm, 224 bands).
//! * [`materials`] — parametric reflectance signatures for the WTC debris
//!   classes and urban background materials.
//! * [`blackbody`] — Planck radiance for the thermal hot-spot targets.
//! * [`scene`] — the scene builder: spatially coherent class regions
//!   (seeded Voronoi growth), linear mixing at region borders, additive
//!   Gaussian sensor noise, and point targets.
//! * [`wtc`] — the ready-made WTC-like preset with exact ground truth.
//!
//! Everything is seeded and fully deterministic.

pub mod bands;
pub mod blackbody;
pub mod materials;
pub mod scene;
pub mod wtc;

pub use scene::{SceneBuilder, SyntheticScene, TargetSpec};
pub use wtc::{wtc_scene, WtcConfig};
