//! Parametric reflectance signatures for the synthetic WTC scene.
//!
//! Each material is a smooth base reflectance plus a set of spectral
//! shape primitives (linear slope, Gaussian absorption/reflection
//! features, logistic steps). The seven dust/debris classes mirror the
//! USGS WTC classes the paper scores against (Table 4); the background
//! materials populate the rest of lower Manhattan (vegetation in parks,
//! water, asphalt, smoke plume). Feature placement follows the real
//! mineralogy coarsely — gypsum's 1.45/1.94/2.21 µm water/sulfate bands,
//! carbonate near 2.3 µm, chlorophyll's red edge — so the synthetic
//! classes are separable for the same physical reasons the real ones are,
//! while nearby dust classes remain deliberately similar (keeping the
//! classification task non-trivial).

use super::bands;

/// A spectral shape primitive added to a material's base reflectance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Linear ramp: adds `amount × (λ − λ_min)/(λ_max − λ_min)`.
    Slope {
        /// Total change across the spectral range (may be negative).
        amount: f64,
    },
    /// Gaussian feature: `amplitude · exp(−(λ−center)²/(2·width²))`.
    /// Negative amplitude models an absorption band.
    Gauss {
        /// Centre wavelength in µm.
        center: f64,
        /// Standard deviation in µm.
        width: f64,
        /// Peak amplitude (reflectance units).
        amplitude: f64,
    },
    /// Logistic step: `amplitude / (1 + exp(−(λ−center)/width))` — e.g.
    /// vegetation's red edge.
    Step {
        /// Centre wavelength in µm.
        center: f64,
        /// Transition width in µm.
        width: f64,
        /// Step height (reflectance units).
        amplitude: f64,
    },
}

impl Shape {
    /// Evaluates the primitive at wavelength `lambda_um`.
    pub fn eval(&self, lambda_um: f64) -> f64 {
        match *self {
            Shape::Slope { amount } => {
                let t = (lambda_um - bands::LAMBDA_MIN_UM)
                    / (bands::LAMBDA_MAX_UM - bands::LAMBDA_MIN_UM);
                amount * t
            }
            Shape::Gauss {
                center,
                width,
                amplitude,
            } => {
                let d = (lambda_um - center) / width;
                amplitude * (-0.5 * d * d).exp()
            }
            Shape::Step {
                center,
                width,
                amplitude,
            } => amplitude / (1.0 + (-(lambda_um - center) / width).exp()),
        }
    }
}

/// A named material with a parametric reflectance model.
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    /// Human-readable name (matches the paper's Table 4 rows for the
    /// debris classes).
    pub name: &'static str,
    /// Flat base reflectance.
    pub base: f64,
    /// Additive shape primitives.
    pub shapes: Vec<Shape>,
}

impl Material {
    /// Evaluates the reflectance on a wavelength grid, clamped to the
    /// physical range `[0.01, 0.99]`.
    pub fn reflectance(&self, grid_um: &[f64]) -> Vec<f64> {
        grid_um
            .iter()
            .map(|&l| {
                let mut v = self.base;
                for s in &self.shapes {
                    v += s.eval(l);
                }
                v.clamp(0.01, 0.99)
            })
            .collect()
    }
}

/// The seven WTC dust/debris classes of the paper's Table 4, in table
/// order. Class label = index in this slice.
pub fn debris_classes() -> Vec<Material> {
    use Shape::*;
    vec![
        Material {
            name: "Concrete (WTC01-37B)",
            base: 0.34,
            shapes: vec![
                Slope { amount: 0.10 },
                Gauss {
                    center: 2.30,
                    width: 0.05,
                    amplitude: -0.14,
                }, // carbonate
                Gauss {
                    center: 1.42,
                    width: 0.05,
                    amplitude: -0.05,
                },
                Gauss {
                    center: 2.00,
                    width: 0.04,
                    amplitude: -0.08,
                },
            ],
        },
        Material {
            name: "Concrete (WTC01-37Am)",
            base: 0.31,
            shapes: vec![
                Slope { amount: 0.12 },
                Gauss {
                    center: 2.30,
                    width: 0.05,
                    amplitude: -0.08,
                },
                Gauss {
                    center: 0.90,
                    width: 0.08,
                    amplitude: -0.11,
                }, // iron oxide
                Gauss {
                    center: 0.55,
                    width: 0.05,
                    amplitude: 0.06,
                },
            ],
        },
        Material {
            name: "Cement (WTC01-37A)",
            base: 0.27,
            shapes: vec![
                Slope { amount: 0.08 },
                Gauss {
                    center: 2.20,
                    width: 0.06,
                    amplitude: -0.11,
                },
                Gauss {
                    center: 1.40,
                    width: 0.05,
                    amplitude: -0.05,
                },
                Gauss {
                    center: 1.20,
                    width: 0.05,
                    amplitude: -0.07,
                },
            ],
        },
        Material {
            name: "Dust (WTC01-15)",
            base: 0.40,
            shapes: vec![
                Slope { amount: 0.06 },
                Gauss {
                    center: 1.45,
                    width: 0.04,
                    amplitude: -0.12,
                }, // gypsum-rich
                Gauss {
                    center: 1.75,
                    width: 0.05,
                    amplitude: -0.08,
                },
                Gauss {
                    center: 2.21,
                    width: 0.04,
                    amplitude: -0.06,
                },
            ],
        },
        Material {
            name: "Dust (WTC01-28)",
            base: 0.37,
            shapes: vec![
                Slope { amount: 0.05 },
                Gauss {
                    center: 1.90,
                    width: 0.06,
                    amplitude: -0.13,
                },
                Gauss {
                    center: 1.45,
                    width: 0.04,
                    amplitude: -0.03,
                },
                Gauss {
                    center: 0.70,
                    width: 0.06,
                    amplitude: -0.07,
                },
            ],
        },
        Material {
            name: "Dust (WTC01-36)",
            base: 0.43,
            shapes: vec![
                Slope { amount: 0.04 },
                Gauss {
                    center: 1.40,
                    width: 0.05,
                    amplitude: -0.06,
                },
                Gauss {
                    center: 2.35,
                    width: 0.05,
                    amplitude: -0.12,
                },
                Gauss {
                    center: 1.05,
                    width: 0.05,
                    amplitude: -0.08,
                },
            ],
        },
        Material {
            name: "Gypsum wall board",
            base: 0.55,
            shapes: vec![
                Slope { amount: -0.05 },
                Gauss {
                    center: 1.45,
                    width: 0.03,
                    amplitude: -0.18,
                },
                Gauss {
                    center: 1.94,
                    width: 0.04,
                    amplitude: -0.22,
                },
                Gauss {
                    center: 2.21,
                    width: 0.03,
                    amplitude: -0.12,
                },
            ],
        },
    ]
}

/// Background (non-debris) materials for the rest of the scene, in label
/// order following the debris classes.
pub fn background_classes() -> Vec<Material> {
    use Shape::*;
    vec![
        Material {
            name: "Vegetation",
            base: 0.05,
            shapes: vec![
                Gauss {
                    center: 0.55,
                    width: 0.03,
                    amplitude: 0.05,
                }, // green bump
                Step {
                    center: 0.72,
                    width: 0.015,
                    amplitude: 0.42,
                }, // red edge
                Gauss {
                    center: 1.40,
                    width: 0.05,
                    amplitude: -0.20,
                }, // leaf water
                Gauss {
                    center: 1.90,
                    width: 0.06,
                    amplitude: -0.25,
                },
                Slope { amount: -0.12 },
            ],
        },
        Material {
            name: "Water",
            base: 0.09,
            shapes: vec![Slope { amount: -0.085 }],
        },
        Material {
            name: "Asphalt",
            base: 0.07,
            shapes: vec![Slope { amount: 0.05 }],
        },
        Material {
            name: "Smoke plume",
            base: 0.45,
            shapes: vec![
                Slope { amount: -0.30 }, // strong blue-weighted scattering
                Gauss {
                    center: 0.45,
                    width: 0.10,
                    amplitude: 0.15,
                },
            ],
        },
    ]
}

/// The full material library: debris classes first (labels `0..7`), then
/// background classes (labels `7..11`).
pub fn full_library() -> Vec<Material> {
    let mut v = debris_classes();
    v.extend(background_classes());
    v
}

/// Number of debris classes scored in Table 4.
pub const NUM_DEBRIS_CLASSES: usize = 7;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::sad;
    use crate::synth::bands;

    fn to_f32(v: &[f64]) -> Vec<f32> {
        v.iter().map(|&x| x as f32).collect()
    }

    #[test]
    fn library_size_and_names() {
        let lib = full_library();
        assert_eq!(lib.len(), 11);
        assert_eq!(lib[0].name, "Concrete (WTC01-37B)");
        assert_eq!(lib[6].name, "Gypsum wall board");
        assert_eq!(lib[7].name, "Vegetation");
    }

    #[test]
    fn reflectances_physical() {
        let g = bands::grid(bands::AVIRIS_BANDS);
        for m in full_library() {
            let r = m.reflectance(&g);
            assert_eq!(r.len(), 224);
            assert!(
                r.iter().all(|&v| (0.01..=0.99).contains(&v)),
                "{} out of range",
                m.name
            );
        }
    }

    #[test]
    fn all_pairs_spectrally_distinct() {
        // Every pair of library materials must be separable by SAD —
        // otherwise the synthetic ground truth would be ill-posed.
        let g = bands::grid(bands::AVIRIS_BANDS);
        let lib = full_library();
        let specs: Vec<Vec<f32>> = lib.iter().map(|m| to_f32(&m.reflectance(&g))).collect();
        for i in 0..specs.len() {
            for j in (i + 1)..specs.len() {
                let d = sad(&specs[i], &specs[j]);
                assert!(
                    d > 0.01,
                    "{} vs {} too similar: SAD = {d}",
                    lib[i].name,
                    lib[j].name
                );
            }
        }
    }

    #[test]
    fn debris_classes_are_challengingly_similar() {
        // The two concretes should be much closer to each other than to
        // vegetation — the scene must be non-trivial but not degenerate.
        let g = bands::grid(bands::AVIRIS_BANDS);
        let lib = full_library();
        let c1 = to_f32(&lib[0].reflectance(&g));
        let c2 = to_f32(&lib[1].reflectance(&g));
        let veg = to_f32(&lib[7].reflectance(&g));
        assert!(sad(&c1, &c2) < sad(&c1, &veg));
    }

    #[test]
    fn gypsum_has_deep_1940nm_band() {
        let g = bands::grid(bands::AVIRIS_BANDS);
        let gy = debris_classes()[6].reflectance(&g);
        // Index of ~1.94 µm on the 224-band grid.
        let idx = ((1.94_f64 - 0.4) / (2.5 - 0.4) * 223.0).round() as usize;
        let shoulder = ((1.70_f64 - 0.4) / (2.5 - 0.4) * 223.0).round() as usize;
        assert!(gy[idx] < gy[shoulder] - 0.1, "gypsum band not deep enough");
    }

    #[test]
    fn vegetation_red_edge() {
        let g = bands::grid(bands::AVIRIS_BANDS);
        let veg = background_classes()[0].reflectance(&g);
        let red = ((0.67_f64 - 0.4) / (2.5 - 0.4) * 223.0).round() as usize;
        let nir = ((0.85_f64 - 0.4) / (2.5 - 0.4) * 223.0).round() as usize;
        assert!(veg[nir] > veg[red] * 3.0, "red edge missing");
    }

    #[test]
    fn shape_primitives_evaluate() {
        let s = Shape::Slope { amount: 1.0 };
        assert!((s.eval(0.4) - 0.0).abs() < 1e-12);
        assert!((s.eval(2.5) - 1.0).abs() < 1e-12);
        let gauss = Shape::Gauss {
            center: 1.0,
            width: 0.1,
            amplitude: -0.5,
        };
        assert!((gauss.eval(1.0) + 0.5).abs() < 1e-12);
        assert!(gauss.eval(2.0).abs() < 1e-12);
        let step = Shape::Step {
            center: 1.0,
            width: 0.01,
            amplitude: 1.0,
        };
        assert!(step.eval(0.5) < 0.01);
        assert!(step.eval(1.5) > 0.99);
    }
}
