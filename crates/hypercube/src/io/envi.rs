//! Minimal ENVI-style raw + header I/O.
//!
//! ENVI's flat-binary format (a headerless raw file next to a small text
//! `.hdr`) is the lingua franca of hyperspectral tooling and what AVIRIS
//! products ship as. We support `f32` samples (ENVI data type 4) in all
//! three standard interleaves — BIP (band-interleaved-by-pixel, the
//! in-memory layout), BIL (by-line) and BSQ (band-sequential) — in
//! little-endian byte order (ENVI `byte order = 0`).

use crate::HyperCube;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// ENVI interleave orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interleave {
    /// Band-interleaved-by-pixel: `[line][sample][band]` — the cube's
    /// native layout.
    #[default]
    Bip,
    /// Band-interleaved-by-line: `[line][band][sample]`.
    Bil,
    /// Band-sequential: `[band][line][sample]`.
    Bsq,
}

impl Interleave {
    fn tag(self) -> &'static str {
        match self {
            Interleave::Bip => "bip",
            Interleave::Bil => "bil",
            Interleave::Bsq => "bsq",
        }
    }

    fn parse(s: &str) -> Option<Interleave> {
        match s.to_ascii_lowercase().as_str() {
            "bip" => Some(Interleave::Bip),
            "bil" => Some(Interleave::Bil),
            "bsq" => Some(Interleave::Bsq),
            _ => None,
        }
    }

    /// Flat index of `(line, sample, band)` under this interleave.
    #[inline]
    fn index(
        self,
        lines: usize,
        samples: usize,
        bands: usize,
        l: usize,
        s: usize,
        b: usize,
    ) -> usize {
        let _ = lines;
        match self {
            Interleave::Bip => (l * samples + s) * bands + b,
            Interleave::Bil => (l * bands + b) * samples + s,
            Interleave::Bsq => (b * lines + l) * samples + s,
        }
    }
}

/// Errors arising from ENVI I/O.
#[derive(Debug)]
pub enum EnviError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The header is missing a required field or has an unsupported value.
    BadHeader(String),
    /// The raw file's size does not match the header's dimensions.
    SizeMismatch {
        /// Bytes expected from the header dimensions.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
}

impl std::fmt::Display for EnviError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnviError::Io(e) => write!(f, "I/O error: {e}"),
            EnviError::BadHeader(msg) => write!(f, "bad ENVI header: {msg}"),
            EnviError::SizeMismatch { expected, found } => {
                write!(
                    f,
                    "raw size mismatch: expected {expected} bytes, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for EnviError {}

impl From<io::Error> for EnviError {
    fn from(e: io::Error) -> Self {
        EnviError::Io(e)
    }
}

/// Path of the header file companion to a raw path (`<raw>.hdr`).
pub fn header_path(raw: &Path) -> PathBuf {
    let mut p = raw.as_os_str().to_owned();
    p.push(".hdr");
    PathBuf::from(p)
}

/// Writes a cube as `<path>` (raw little-endian `f32`, BIP) plus
/// `<path>.hdr` (ENVI text header).
pub fn write_cube(cube: &HyperCube, path: &Path) -> Result<(), EnviError> {
    write_cube_interleaved(cube, path, Interleave::Bip)
}

/// Writes a cube in the requested interleave order.
pub fn write_cube_interleaved(
    cube: &HyperCube,
    path: &Path,
    interleave: Interleave,
) -> Result<(), EnviError> {
    let (lines, samples, bands) = (cube.lines(), cube.samples(), cube.bands());
    let mut raw = BufWriter::new(File::create(path)?);
    match interleave {
        // Native order: stream straight out.
        Interleave::Bip => {
            for &v in cube.as_slice() {
                raw.write_all(&v.to_le_bytes())?;
            }
        }
        // Permuted orders: walk the output order, indexing the cube.
        Interleave::Bil => {
            for l in 0..lines {
                for b in 0..bands {
                    for s in 0..samples {
                        raw.write_all(&cube.pixel(l, s)[b].to_le_bytes())?;
                    }
                }
            }
        }
        Interleave::Bsq => {
            for b in 0..bands {
                for l in 0..lines {
                    for s in 0..samples {
                        raw.write_all(&cube.pixel(l, s)[b].to_le_bytes())?;
                    }
                }
            }
        }
    }
    raw.flush()?;

    // Wavelength list (µm) on the synthetic AVIRIS grid, as real AVIRIS
    // headers carry.
    let wavelengths = crate::synth::bands::grid(bands)
        .iter()
        .map(|w| format!("{w:.6}"))
        .collect::<Vec<_>>()
        .join(", ");
    let hdr = format!(
        "ENVI\n\
         description = {{heterospec synthetic scene}}\n\
         samples = {}\n\
         lines = {}\n\
         bands = {}\n\
         header offset = 0\n\
         file type = ENVI Standard\n\
         data type = 4\n\
         interleave = {}\n\
         byte order = 0\n\
         wavelength units = Micrometers\n\
         wavelength = {{ {} }}\n",
        samples,
        lines,
        bands,
        interleave.tag(),
        wavelengths
    );
    let mut h = BufWriter::new(File::create(header_path(path))?);
    h.write_all(hdr.as_bytes())?;
    h.flush()?;
    Ok(())
}

/// Reads the wavelength list (µm) from a header written by
/// [`write_cube`], or any conforming ENVI header with a single-line
/// `wavelength = { ... }` field. Returns `None` when the field is
/// absent or malformed.
pub fn read_wavelengths(path: &Path) -> Option<Vec<f64>> {
    let hdr = std::fs::read_to_string(header_path(path)).ok()?;
    for line in hdr.lines() {
        if let Some((k, v)) = line.split_once('=') {
            if k.trim().eq_ignore_ascii_case("wavelength") {
                let inner = v.trim().trim_start_matches('{').trim_end_matches('}');
                let vals: Result<Vec<f64>, _> =
                    inner.split(',').map(|s| s.trim().parse::<f64>()).collect();
                return vals.ok();
            }
        }
    }
    None
}

/// Reads a cube written by [`write_cube`] (or any conforming ENVI BIP
/// float32 little-endian product).
pub fn read_cube(path: &Path) -> Result<HyperCube, EnviError> {
    let hdr_text = std::fs::read_to_string(header_path(path))?;
    let get = |key: &str| -> Result<String, EnviError> {
        for line in hdr_text.lines() {
            if let Some((k, v)) = line.split_once('=') {
                if k.trim().eq_ignore_ascii_case(key) {
                    return Ok(v.trim().to_string());
                }
            }
        }
        Err(EnviError::BadHeader(format!("missing field '{key}'")))
    };
    let parse_usize = |key: &str| -> Result<usize, EnviError> {
        get(key)?
            .parse()
            .map_err(|_| EnviError::BadHeader(format!("field '{key}' is not an integer")))
    };
    let samples = parse_usize("samples")?;
    let lines = parse_usize("lines")?;
    let bands = parse_usize("bands")?;
    let data_type = parse_usize("data type")?;
    if data_type != 4 {
        return Err(EnviError::BadHeader(format!(
            "unsupported data type {data_type} (only 4 = float32)"
        )));
    }
    let interleave_text = get("interleave")?;
    let interleave = Interleave::parse(&interleave_text).ok_or_else(|| {
        EnviError::BadHeader(format!(
            "unsupported interleave '{interleave_text}' (bip/bil/bsq)"
        ))
    })?;
    if let Ok(order) = get("byte order") {
        if order != "0" {
            return Err(EnviError::BadHeader(format!(
                "unsupported byte order {order} (only 0 = little-endian)"
            )));
        }
    }

    let expected = (lines * samples * bands * 4) as u64;
    let meta = std::fs::metadata(path)?;
    if meta.len() != expected {
        return Err(EnviError::SizeMismatch {
            expected,
            found: meta.len(),
        });
    }

    let mut reader = BufReader::new(File::open(path)?);
    let mut buf = vec![0u8; expected as usize];
    reader.read_exact(&mut buf)?;
    let flat: Vec<f32> = buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let data = match interleave {
        Interleave::Bip => flat,
        other => {
            // Permute into the cube's native BIP layout.
            let mut bip = vec![0.0f32; flat.len()];
            for l in 0..lines {
                for s in 0..samples {
                    for b in 0..bands {
                        bip[(l * samples + s) * bands + b] =
                            flat[other.index(lines, samples, bands, l, s, b)];
                    }
                }
            }
            bip
        }
    };
    Ok(HyperCube::from_vec(lines, samples, bands, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{wtc_scene, WtcConfig};

    #[test]
    fn roundtrip_preserves_cube() {
        let scene = wtc_scene(WtcConfig {
            lines: 12,
            samples: 10,
            bands: 16,
            ..Default::default()
        });
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("scene.raw");
        write_cube(&scene.cube, &path).unwrap();
        let back = read_cube(&path).unwrap();
        assert_eq!(back, scene.cube);
    }

    #[test]
    fn header_fields_written() {
        let cube = HyperCube::zeros(3, 5, 7);
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("z.raw");
        write_cube(&cube, &path).unwrap();
        let hdr = std::fs::read_to_string(header_path(&path)).unwrap();
        assert!(hdr.starts_with("ENVI"));
        assert!(hdr.contains("samples = 5"));
        assert!(hdr.contains("lines = 3"));
        assert!(hdr.contains("bands = 7"));
        assert!(hdr.contains("interleave = bip"));
    }

    #[test]
    fn size_mismatch_detected() {
        let cube = HyperCube::zeros(2, 2, 2);
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.raw");
        write_cube(&cube, &path).unwrap();
        // Truncate the raw file.
        std::fs::write(&path, [0u8; 8]).unwrap();
        assert!(matches!(
            read_cube(&path),
            Err(EnviError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn missing_header_field_detected() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.raw");
        std::fs::write(&path, [0u8; 4]).unwrap();
        std::fs::write(header_path(&path), "ENVI\nsamples = 1\n").unwrap();
        match read_cube(&path) {
            Err(EnviError::BadHeader(msg)) => assert!(msg.contains("lines")),
            other => panic!("expected BadHeader, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_interleave_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("y.raw");
        std::fs::write(&path, [0u8; 4]).unwrap();
        std::fs::write(
            header_path(&path),
            "ENVI\nsamples = 1\nlines = 1\nbands = 1\ndata type = 4\ninterleave = tiled\n",
        )
        .unwrap();
        assert!(matches!(read_cube(&path), Err(EnviError::BadHeader(_))));
    }

    #[test]
    fn all_interleaves_roundtrip() {
        let scene = wtc_scene(WtcConfig {
            lines: 7,
            samples: 5,
            bands: 11,
            ..Default::default()
        });
        let dir = tempfile::tempdir().unwrap();
        for (name, il) in [
            ("bip", Interleave::Bip),
            ("bil", Interleave::Bil),
            ("bsq", Interleave::Bsq),
        ] {
            let path = dir.path().join(format!("{name}.raw"));
            write_cube_interleaved(&scene.cube, &path, il).unwrap();
            let back = read_cube(&path).unwrap();
            assert_eq!(back, scene.cube, "{name} roundtrip failed");
            let hdr = std::fs::read_to_string(header_path(&path)).unwrap();
            assert!(hdr.contains(&format!("interleave = {name}")));
        }
    }

    #[test]
    fn wavelengths_roundtrip() {
        let cube = HyperCube::zeros(2, 2, 16);
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.raw");
        write_cube(&cube, &path).unwrap();
        let w = read_wavelengths(&path).unwrap();
        assert_eq!(w.len(), 16);
        assert!((w[0] - 0.4).abs() < 1e-6);
        assert!((w[15] - 2.5).abs() < 1e-6);
        // Missing header -> None.
        assert!(read_wavelengths(std::path::Path::new("/nonexistent")).is_none());
    }

    #[test]
    fn interleaves_produce_different_raw_bytes() {
        // Same content, different file layout (sanity: we actually
        // permute rather than relabel).
        let scene = wtc_scene(WtcConfig {
            lines: 4,
            samples: 3,
            bands: 5,
            ..Default::default()
        });
        let dir = tempfile::tempdir().unwrap();
        let p1 = dir.path().join("a.raw");
        let p2 = dir.path().join("b.raw");
        write_cube_interleaved(&scene.cube, &p1, Interleave::Bip).unwrap();
        write_cube_interleaved(&scene.cube, &p2, Interleave::Bsq).unwrap();
        assert_ne!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
    }
}
