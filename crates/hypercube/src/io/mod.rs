//! Cube persistence.

pub mod envi;
