//! Spectral similarity metrics.
//!
//! The paper's algorithms are built on two per-pixel reductions: the
//! **brightness** `xᵀx` (ATDCA step 2) and the **spectral angle distance**
//! (SAD, eq. 1), used by PCT and MORPH for spectral matching:
//!
//! ```text
//! SAD(x, y) = arccos( x·y / (‖x‖·‖y‖) )
//! ```
//!
//! SID (spectral information divergence) is provided as a secondary metric
//! for cross-checks; it treats normalised spectra as probability
//! distributions and sums the two relative entropies.
//!
//! All metrics take `f32` spectra (the cube's native type) and accumulate
//! in `f64`.

/// Pixel brightness `xᵀx` (squared Euclidean norm).
#[inline]
pub fn brightness(x: &[f32]) -> f64 {
    x.iter().map(|&v| (v as f64) * (v as f64)).sum()
}

/// Dot product of two spectra in `f64`.
///
/// # Panics
/// Debug-asserts equal lengths.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(&a, &b)| (a as f64) * (b as f64))
        .sum()
}

/// Spectral angle distance in radians, in `[0, π]`.
///
/// Degenerate cases follow the hyperspectral convention: two zero spectra
/// are identical (`0`); one zero spectrum is maximally dissimilar (`π/2`).
///
/// ```
/// use hsi_cube::metrics::sad;
/// let a = [1.0f32, 0.0];
/// let b = [0.0f32, 1.0];
/// assert!((sad(&a, &b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// assert!(sad(&a, &a) < 1e-9);
/// ```
#[inline]
pub fn sad(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let (mut xy, mut xx, mut yy) = (0.0f64, 0.0f64, 0.0f64);
    for (&a, &b) in x.iter().zip(y) {
        let (a, b) = (a as f64, b as f64);
        xy += a * b;
        xx += a * a;
        yy += b * b;
    }
    if xx == 0.0 && yy == 0.0 {
        return 0.0;
    }
    if xx == 0.0 || yy == 0.0 {
        return std::f64::consts::FRAC_PI_2;
    }
    let c = (xy / (xx.sqrt() * yy.sqrt())).clamp(-1.0, 1.0);
    c.acos()
}

/// Euclidean distance between two spectra.
#[inline]
pub fn euclidean(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Spectral information divergence (symmetric Kullback–Leibler sum over
/// the band-normalised spectra). Negative band values are clamped to zero
/// before normalisation; two spectra with zero mass are identical.
pub fn sid(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    const EPS: f64 = 1e-12;
    let sx: f64 = x.iter().map(|&v| (v as f64).max(0.0)).sum();
    let sy: f64 = y.iter().map(|&v| (v as f64).max(0.0)).sum();
    if sx <= 0.0 && sy <= 0.0 {
        return 0.0;
    }
    if sx <= 0.0 || sy <= 0.0 {
        return f64::INFINITY;
    }
    let mut div = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let p = ((a as f64).max(0.0) / sx) + EPS;
        let q = ((b as f64).max(0.0) / sy) + EPS;
        div += p * (p / q).ln() + q * (q / p).ln();
    }
    div.max(0.0)
}

/// Index of the entry of `candidates` most similar (smallest SAD) to `x`.
/// Ties resolve to the lowest index. Returns `None` when `candidates` is
/// empty.
pub fn nearest_by_sad(x: &[f32], candidates: &[Vec<f32>]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in candidates.iter().enumerate() {
        let d = sad(x, c);
        match best {
            Some((_, bd)) if d >= bd => {}
            _ => best = Some((i, d)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn brightness_is_squared_norm() {
        assert_eq!(brightness(&[3.0, 4.0]), 25.0);
        assert_eq!(brightness(&[]), 0.0);
    }

    #[test]
    fn sad_identical_spectra_zero() {
        let x = [0.2f32, 0.4, 0.8];
        assert!(sad(&x, &x) < 1e-7);
        // Scale invariance: SAD ignores magnitude.
        let y: Vec<f32> = x.iter().map(|v| v * 7.5).collect();
        assert!(sad(&x, &y) < 1e-6);
    }

    #[test]
    fn sad_orthogonal_is_half_pi() {
        let x = [1.0f32, 0.0];
        let y = [0.0f32, 1.0];
        assert!((sad(&x, &y) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn sad_opposite_is_pi() {
        let x = [1.0f32, 2.0];
        let y = [-1.0f32, -2.0];
        assert!((sad(&x, &y) - PI).abs() < 1e-6);
    }

    #[test]
    fn sad_zero_vector_conventions() {
        let z = [0.0f32, 0.0];
        let x = [1.0f32, 1.0];
        assert_eq!(sad(&z, &z), 0.0);
        assert_eq!(sad(&z, &x), FRAC_PI_2);
        assert_eq!(sad(&x, &z), FRAC_PI_2);
    }

    #[test]
    fn sad_symmetry() {
        let x = [0.3f32, 0.9, 0.1];
        let y = [0.7f32, 0.2, 0.5];
        assert!((sad(&x, &y) - sad(&y, &x)).abs() < 1e-15);
    }

    #[test]
    fn euclidean_basic() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sid_properties() {
        let x = [0.2f32, 0.5, 0.3];
        let y = [0.3f32, 0.3, 0.4];
        assert!(sid(&x, &x) < 1e-9);
        assert!(sid(&x, &y) > 0.0);
        assert!((sid(&x, &y) - sid(&y, &x)).abs() < 1e-12);
        // Scale invariance.
        let y2: Vec<f32> = y.iter().map(|v| v * 3.0).collect();
        assert!((sid(&x, &y) - sid(&x, &y2)).abs() < 1e-6);
    }

    #[test]
    fn nearest_by_sad_picks_most_similar() {
        let cands = vec![vec![1.0f32, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(nearest_by_sad(&[0.9, 0.05], &cands), Some(0));
        assert_eq!(nearest_by_sad(&[0.05, 0.9], &cands), Some(1));
        assert_eq!(nearest_by_sad(&[0.5, 0.5], &cands), Some(2));
        assert_eq!(nearest_by_sad(&[1.0, 0.0], &[]), None);
    }

    #[test]
    fn sad_triangle_inequality_holds_on_samples() {
        // SAD is the geodesic distance on the sphere, so the triangle
        // inequality must hold for non-negative spectra.
        let a = [0.9f32, 0.1, 0.3];
        let b = [0.4f32, 0.6, 0.2];
        let c = [0.1f32, 0.8, 0.5];
        assert!(sad(&a, &c) <= sad(&a, &b) + sad(&b, &c) + 1e-12);
    }
}
