//! Per-band cube statistics and quality estimates.
//!
//! Standard first-look diagnostics for a hyperspectral product: per-band
//! minimum/maximum/mean/standard deviation, a global dynamic-range
//! summary, and a simple spatial-homogeneity SNR estimate (signal power
//! over the variance of horizontal first differences — a common quick
//! estimator that needs no dark-current data).

use crate::HyperCube;

/// Per-band summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BandStats {
    /// Minimum value in the band.
    pub min: f32,
    /// Maximum value in the band.
    pub max: f32,
    /// Mean value.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Computes [`BandStats`] for every band in one pass.
pub fn band_stats(cube: &HyperCube) -> Vec<BandStats> {
    let bands = cube.bands();
    let n = cube.num_pixels().max(1) as f64;
    let mut min = vec![f32::INFINITY; bands];
    let mut max = vec![f32::NEG_INFINITY; bands];
    let mut sum = vec![0.0f64; bands];
    let mut sumsq = vec![0.0f64; bands];
    for i in 0..cube.num_pixels() {
        for (b, &v) in cube.pixel_flat(i).iter().enumerate() {
            if v < min[b] {
                min[b] = v;
            }
            if v > max[b] {
                max[b] = v;
            }
            sum[b] += v as f64;
            sumsq[b] += (v as f64) * (v as f64);
        }
    }
    (0..bands)
        .map(|b| {
            let mean = sum[b] / n;
            let var = (sumsq[b] / n - mean * mean).max(0.0);
            BandStats {
                min: if min[b].is_finite() { min[b] } else { 0.0 },
                max: if max[b].is_finite() { max[b] } else { 0.0 },
                mean,
                stddev: var.sqrt(),
            }
        })
        .collect()
}

/// Quick per-band SNR estimate (dB): band signal power over a robust
/// noise estimate from horizontal first differences. Region boundaries
/// produce large differences, so the noise scale uses the **median**
/// absolute difference (`σ ≈ 1.4826·MAD/√2`), which ignores the
/// boundary minority. Returns `None` for single-sample images.
pub fn snr_db(cube: &HyperCube) -> Option<Vec<f64>> {
    if cube.samples() < 2 || cube.num_pixels() == 0 {
        return None;
    }
    let bands = cube.bands();
    let pairs = cube.lines() * (cube.samples() - 1);
    let mut signal = vec![0.0f64; bands];
    let mut diffs: Vec<Vec<f32>> = vec![Vec::with_capacity(pairs); bands];
    for line in 0..cube.lines() {
        for sample in 0..cube.samples() - 1 {
            let a = cube.pixel(line, sample);
            let b = cube.pixel(line, sample + 1);
            for band in 0..bands {
                diffs[band].push((a[band] - b[band]).abs());
                signal[band] += (a[band] as f64) * (a[band] as f64);
            }
        }
    }
    Some(
        (0..bands)
            .map(|b| {
                let s = signal[b] / pairs.max(1) as f64;
                let d = &mut diffs[b];
                d.sort_by(|x, y| x.partial_cmp(y).unwrap());
                let mad = d[d.len() / 2] as f64;
                // Gaussian-consistent scale; the /sqrt(2) undoes the
                // variance doubling of a difference of two samples.
                let sigma = 1.4826 * mad / std::f64::consts::SQRT_2;
                let n = (sigma * sigma).max(1e-300);
                10.0 * (s / n).log10()
            })
            .collect(),
    )
}

/// Global summary of a cube: value range and mean brightness.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeSummary {
    /// Global minimum.
    pub min: f32,
    /// Global maximum.
    pub max: f32,
    /// Mean of per-band means.
    pub mean: f64,
    /// Median per-band SNR estimate in dB (None when not computable).
    pub median_snr_db: Option<f64>,
}

/// Computes a [`CubeSummary`].
pub fn summarize(cube: &HyperCube) -> CubeSummary {
    let stats = band_stats(cube);
    let min = stats.iter().map(|s| s.min).fold(f32::INFINITY, f32::min);
    let max = stats
        .iter()
        .map(|s| s.max)
        .fold(f32::NEG_INFINITY, f32::max);
    let mean = stats.iter().map(|s| s.mean).sum::<f64>() / stats.len().max(1) as f64;
    let median_snr_db = snr_db(cube).map(|mut v| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    });
    CubeSummary {
        min: if min.is_finite() { min } else { 0.0 },
        max: if max.is_finite() { max } else { 0.0 },
        mean,
        median_snr_db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{wtc_scene, WtcConfig};

    #[test]
    fn constant_cube_stats() {
        let c = HyperCube::from_vec(3, 3, 2, vec![0.25; 18]);
        let s = band_stats(&c);
        assert_eq!(s.len(), 2);
        for bs in s {
            assert_eq!(bs.min, 0.25);
            assert_eq!(bs.max, 0.25);
            assert!((bs.mean - 0.25).abs() < 1e-12);
            assert!(bs.stddev < 1e-9);
        }
    }

    #[test]
    fn stats_reflect_band_structure() {
        // Band 1 has double the values of band 0.
        let mut c = HyperCube::zeros(4, 4, 2);
        for i in 0..16 {
            let (l, s) = (i / 4, i % 4);
            c.pixel_mut(l, s)[0] = i as f32;
            c.pixel_mut(l, s)[1] = 2.0 * i as f32;
        }
        let st = band_stats(&c);
        assert_eq!(st[0].max, 15.0);
        assert_eq!(st[1].max, 30.0);
        assert!((st[1].mean - 2.0 * st[0].mean).abs() < 1e-9);
    }

    #[test]
    fn snr_decreases_with_noise() {
        // Shading-free scenes, so first differences measure additive
        // noise only (the WTC preset's per-pixel shading would dominate).
        use crate::synth::materials;
        use crate::synth::scene::SceneBuilder;
        let build = |sigma: f64| {
            SceneBuilder::new(32, 32, 16)
                .seed(5)
                .noise_sigma(sigma)
                .materials(materials::full_library())
                .build()
        };
        let quiet = build(0.002);
        let loud = build(0.02);
        let snr_q = summarize(&quiet.cube).median_snr_db.unwrap();
        let snr_l = summarize(&loud.cube).median_snr_db.unwrap();
        assert!(
            snr_q > snr_l + 6.0,
            "10x noise should cost well over 6 dB: {snr_q:.1} vs {snr_l:.1}"
        );
    }

    #[test]
    fn snr_none_for_degenerate_geometry() {
        let c = HyperCube::zeros(5, 1, 3);
        assert!(snr_db(&c).is_none());
    }

    #[test]
    fn summary_ranges() {
        let s = wtc_scene(WtcConfig::tiny());
        let sum = summarize(&s.cube);
        assert!(sum.min >= 0.0);
        assert!(sum.max > sum.min);
        assert!(sum.mean > 0.0 && (sum.mean as f32) < sum.max);
    }
}
