//! LU decomposition with partial pivoting.
//!
//! Used by ATDCA to form the `(UᵀU)⁻¹` factor of the orthogonal-subspace
//! projector, and generally for solving small dense systems (the matrices
//! involved are at most `t × t` with `t ≈ 18` targets, or `N × N` with
//! `N = 224` bands, so a straightforward O(n³) factorisation is ideal).

use crate::error::shape_mismatch;
use crate::{LinAlgError, Matrix, Result};

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULARITY_EPS: f64 = 1e-13;

/// An LU decomposition `P·A = L·U` with partial (row) pivoting.
///
/// `L` has an implicit unit diagonal and is stored, together with `U`, in a
/// single packed matrix, as is conventional.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed L (strictly lower, unit diagonal implicit) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), for determinants.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorises a square matrix. Returns [`LinAlgError::Singular`] when a
    /// pivot falls below `SINGULARITY_EPS` relative to the matrix scale.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(shape_mismatch(
                "square matrix",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        a.require_non_empty()?;
        let n = a.rows();
        let scale = a.max_abs().max(f64::MIN_POSITIVE);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Select the pivot row: largest |value| in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < SINGULARITY_EPS * scale {
                return Err(LinAlgError::Singular);
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
                // Swap whole rows of the packed factor.
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let sub = factor * lu[(k, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the textbook algorithm
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(shape_mismatch(
                format!("rhs of length {n}"),
                format!("length {}", b.len()),
            ));
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(shape_mismatch(
                format!("rhs with {} rows", self.dim()),
                format!("{}x{}", b.rows(), b.cols()),
            ));
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for (r, v) in x.into_iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹` by solving against the identity.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Convenience wrapper: solve `A·x = b` in one call.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuDecomposition::new(a)?.solve(b)
}

/// Convenience wrapper: invert `A` in one call.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    LuDecomposition::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        ax.iter()
            .zip(b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = solve(&a, &[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero leading diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinAlgError::Singular)
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinAlgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn determinant_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() - (-2.0)).abs() < 1e-12);
        // Identity has determinant one regardless of pivoting.
        let i = Matrix::identity(4);
        assert!((LuDecomposition::new(&i).unwrap().det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_multi_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]);
        let x = LuDecomposition::new(&a).unwrap().solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-12));
    }

    #[test]
    fn larger_random_like_system() {
        // Deterministic pseudo-random entries via a simple LCG; diagonally
        // boosted so the system is comfortably well-conditioned.
        let n = 30;
        let mut state: u64 = 42;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += (n as f64) * 0.5;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }
}
