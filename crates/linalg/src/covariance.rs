//! Streaming, mergeable mean/covariance accumulation.
//!
//! Hetero-PCT (Algorithm 4, steps 4–6) computes the image mean vector and
//! covariance matrix **in parallel**: each worker accumulates partial sums
//! over its partition and the master merges them. [`CovarianceAccumulator`]
//! is that partial sum — an associative, commutative monoid under
//! [`CovarianceAccumulator::merge`], so any partitioning of the pixel set
//! yields bitwise-identical* statistics (*up to floating-point summation
//! order, which is fixed by the deterministic partition order used by the
//! algorithms).
//!
//! Internally the accumulator keeps raw sums `Σx` and `Σxxᵀ`; covariance is
//! finalised as `Σxxᵀ/n − m mᵀ`. For reflectance-scaled data (`O(1)`
//! magnitudes) this is numerically adequate and makes merging trivial.

use crate::error::shape_mismatch;
use crate::{LinAlgError, Matrix, Result};

/// Partial sums for mean/covariance over a stream of `dim`-vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct CovarianceAccumulator {
    dim: usize,
    count: u64,
    sum: Vec<f64>,
    /// Upper triangle (including diagonal) of `Σ x xᵀ`, packed row-major.
    cross: Vec<f64>,
}

impl CovarianceAccumulator {
    /// An empty accumulator for vectors of length `dim`.
    pub fn new(dim: usize) -> Self {
        CovarianceAccumulator {
            dim,
            count: 0,
            sum: vec![0.0; dim],
            cross: vec![0.0; dim * (dim + 1) / 2],
        }
    }

    /// Vector dimensionality this accumulator expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of samples accumulated so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Accumulates one sample.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    pub fn push(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.dim, "push: wrong sample length");
        self.count += 1;
        let mut k = 0;
        for i in 0..self.dim {
            self.sum[i] += x[i];
            let xi = x[i];
            for &xj in &x[i..] {
                self.cross[k] += xi * xj;
                k += 1;
            }
        }
    }

    /// Accumulates one `f32` sample (the native pixel type of `hsi-cube`),
    /// widening to `f64` for the sums.
    pub fn push_f32(&mut self, x: &[f32]) {
        assert_eq!(x.len(), self.dim, "push_f32: wrong sample length");
        self.count += 1;
        let mut k = 0;
        for i in 0..self.dim {
            let xi = x[i] as f64;
            self.sum[i] += xi;
            for &xj in &x[i..] {
                self.cross[k] += xi * (xj as f64);
                k += 1;
            }
        }
    }

    /// Accumulates a batch of `f32` samples stored back-to-back
    /// (`data.len()` must be a multiple of `dim`), **bit-identically**
    /// to calling [`Self::push_f32`] once per sample.
    ///
    /// This is the cache-blocked SYRK-style path: samples are processed
    /// in panels of [`Self::PANEL`] pixels, widened to `f64` once per
    /// panel (instead of once per multiply as in the scalar loop), and
    /// the triangular update runs band-row by band-row so the active
    /// `cross` row (≤ `dim` f64s) stays L1-resident across the panel
    /// while the scalar path re-streams the whole `O(dim²/2)` triangle
    /// from outer cache for every pixel. Within each `cross[k]` and
    /// `sum[i]` element the additions still happen in sample order, so
    /// the floating-point result is exactly that of the per-sample loop.
    pub fn push_pixels_f32(&mut self, data: &[f32]) {
        let d = self.dim;
        assert!(
            d > 0 && data.len().is_multiple_of(d),
            "push_pixels_f32: data length {} not a multiple of dim {d}",
            data.len()
        );
        let mut scratch = vec![0.0f64; Self::PANEL * d];
        for panel in data.chunks(Self::PANEL * d) {
            let pixels = panel.len() / d;
            for (dst, &src) in scratch.iter_mut().zip(panel) {
                *dst = src as f64;
            }
            self.count += pixels as u64;
            let mut base = 0;
            for i in 0..d {
                let width = d - i;
                let crow = &mut self.cross[base..base + width];
                let mut si = self.sum[i];
                for p in 0..pixels {
                    let row = &scratch[p * d..p * d + d];
                    let xi = row[i];
                    si += xi;
                    for (c, &xj) in crow.iter_mut().zip(&row[i..]) {
                        *c += xi * xj;
                    }
                }
                self.sum[i] = si;
                base += width;
            }
        }
    }

    /// Panel width (pixels) of the blocked [`Self::push_pixels_f32`]
    /// update: `PANEL × dim` f64 scratch ≈ 28 KB at 224 bands, sized to
    /// sit inside L1/L2 alongside the active `cross` row.
    pub const PANEL: usize = 16;

    /// Merges another accumulator into this one (the master's combine step).
    pub fn merge(&mut self, other: &CovarianceAccumulator) -> Result<()> {
        if other.dim != self.dim {
            return Err(shape_mismatch(
                format!("accumulator of dim {}", self.dim),
                format!("dim {}", other.dim),
            ));
        }
        self.count += other.count;
        for (a, b) in self.sum.iter_mut().zip(&other.sum) {
            *a += b;
        }
        for (a, b) in self.cross.iter_mut().zip(&other.cross) {
            *a += b;
        }
        Ok(())
    }

    /// Finalised mean vector. Errors when no samples were accumulated.
    pub fn mean(&self) -> Result<Vec<f64>> {
        if self.count == 0 {
            return Err(LinAlgError::Empty);
        }
        let inv = 1.0 / self.count as f64;
        Ok(self.sum.iter().map(|s| s * inv).collect())
    }

    /// Finalised covariance matrix `E[xxᵀ] − m mᵀ` (population covariance,
    /// divisor `n`, matching the paper's "average of covariance
    /// components"). Errors when no samples were accumulated.
    pub fn covariance(&self) -> Result<Matrix> {
        if self.count == 0 {
            return Err(LinAlgError::Empty);
        }
        let inv = 1.0 / self.count as f64;
        let mean = self.mean()?;
        let mut cov = Matrix::zeros(self.dim, self.dim);
        let mut k = 0;
        for i in 0..self.dim {
            for j in i..self.dim {
                let v = self.cross[k] * inv - mean[i] * mean[j];
                cov[(i, j)] = v;
                cov[(j, i)] = v;
                k += 1;
            }
        }
        Ok(cov)
    }

    /// Serialises the accumulator into a flat `f64` buffer
    /// (`[count, sum…, cross…]`) for shipment through the message-passing
    /// engine; [`Self::from_flat`] is the inverse.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(1 + self.sum.len() + self.cross.len());
        out.push(self.count as f64);
        out.extend_from_slice(&self.sum);
        out.extend_from_slice(&self.cross);
        out
    }

    /// Reconstructs an accumulator serialised by [`Self::to_flat`].
    pub fn from_flat(dim: usize, flat: &[f64]) -> Result<Self> {
        let expect = 1 + dim + dim * (dim + 1) / 2;
        if flat.len() != expect {
            return Err(shape_mismatch(
                format!("flat buffer of length {expect}"),
                format!("length {}", flat.len()),
            ));
        }
        Ok(CovarianceAccumulator {
            dim,
            count: flat[0] as u64,
            sum: flat[1..1 + dim].to_vec(),
            cross: flat[1 + dim..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 2.0],
            vec![3.0, 0.0],
            vec![-1.0, 4.0],
            vec![2.0, 2.0],
        ]
    }

    fn reference_mean_cov(data: &[Vec<f64>]) -> (Vec<f64>, Matrix) {
        let n = data.len() as f64;
        let d = data[0].len();
        let mut mean = vec![0.0; d];
        for x in data {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v / n;
            }
        }
        let mut cov = Matrix::zeros(d, d);
        for x in data {
            for i in 0..d {
                for j in 0..d {
                    cov[(i, j)] += (x[i] - mean[i]) * (x[j] - mean[j]) / n;
                }
            }
        }
        (mean, cov)
    }

    #[test]
    fn mean_and_covariance_match_reference() {
        let data = samples();
        let mut acc = CovarianceAccumulator::new(2);
        for x in &data {
            acc.push(x);
        }
        let (m_ref, c_ref) = reference_mean_cov(&data);
        let m = acc.mean().unwrap();
        for (a, b) in m.iter().zip(&m_ref) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(acc.covariance().unwrap().approx_eq(&c_ref, 1e-12));
    }

    #[test]
    fn merge_equals_single_pass() {
        let data = samples();
        let mut whole = CovarianceAccumulator::new(2);
        for x in &data {
            whole.push(x);
        }
        let mut a = CovarianceAccumulator::new(2);
        let mut b = CovarianceAccumulator::new(2);
        for x in &data[..2] {
            a.push(x);
        }
        for x in &data[2..] {
            b.push(x);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), whole.count());
        assert!(a
            .covariance()
            .unwrap()
            .approx_eq(&whole.covariance().unwrap(), 1e-12));
    }

    #[test]
    fn merge_dimension_mismatch() {
        let mut a = CovarianceAccumulator::new(2);
        let b = CovarianceAccumulator::new(3);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn empty_accumulator_errors() {
        let acc = CovarianceAccumulator::new(4);
        assert!(matches!(acc.mean(), Err(LinAlgError::Empty)));
        assert!(matches!(acc.covariance(), Err(LinAlgError::Empty)));
    }

    #[test]
    fn flat_roundtrip() {
        let mut acc = CovarianceAccumulator::new(3);
        acc.push(&[1.0, 2.0, 3.0]);
        acc.push(&[0.5, -1.0, 2.0]);
        let flat = acc.to_flat();
        let back = CovarianceAccumulator::from_flat(3, &flat).unwrap();
        assert_eq!(back, acc);
        assert!(CovarianceAccumulator::from_flat(2, &flat).is_err());
    }

    #[test]
    fn f32_push_matches_f64() {
        let mut a = CovarianceAccumulator::new(2);
        let mut b = CovarianceAccumulator::new(2);
        a.push(&[0.5, 0.25]);
        b.push_f32(&[0.5_f32, 0.25_f32]);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean().unwrap(), b.mean().unwrap());
    }

    #[test]
    fn blocked_push_is_bit_identical_to_scalar() {
        // The blocked panel update must match per-sample accumulation
        // bit for bit, including across panel boundaries (> PANEL
        // samples) and for ragged final panels.
        let dim = 7;
        let samples = CovarianceAccumulator::PANEL * 2 + 3;
        let mut state: u64 = 7;
        let data: Vec<f32> = (0..samples * dim)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32) / (1 << 24) as f32
            })
            .collect();
        let mut scalar = CovarianceAccumulator::new(dim);
        for px in data.chunks(dim) {
            scalar.push_f32(px);
        }
        let mut blocked = CovarianceAccumulator::new(dim);
        blocked.push_pixels_f32(&data);
        assert_eq!(scalar, blocked, "blocked update drifted from scalar");
    }

    #[test]
    fn blocked_push_accepts_empty_and_single() {
        let mut acc = CovarianceAccumulator::new(3);
        acc.push_pixels_f32(&[]);
        assert_eq!(acc.count(), 0);
        acc.push_pixels_f32(&[1.0, 2.0, 3.0]);
        let mut one = CovarianceAccumulator::new(3);
        one.push_f32(&[1.0, 2.0, 3.0]);
        assert_eq!(acc, one);
    }

    #[test]
    #[should_panic(expected = "not a multiple of dim")]
    fn blocked_push_rejects_ragged_data() {
        let mut acc = CovarianceAccumulator::new(3);
        acc.push_pixels_f32(&[1.0, 2.0]);
    }

    #[test]
    fn covariance_of_constant_stream_is_zero() {
        let mut acc = CovarianceAccumulator::new(3);
        for _ in 0..10 {
            acc.push(&[2.0, 2.0, 2.0]);
        }
        let cov = acc.covariance().unwrap();
        assert!(cov.max_abs() < 1e-12);
    }

    #[test]
    fn covariance_is_positive_semidefinite() {
        // Eigenvalues of a covariance matrix must be >= 0 (numerically).
        let mut acc = CovarianceAccumulator::new(3);
        let mut state: u64 = 99;
        for _ in 0..50 {
            let mut x = [0.0; 3];
            for v in &mut x {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *v = ((state >> 33) as f64) / (u32::MAX as f64);
            }
            acc.push(&x);
        }
        let cov = acc.covariance().unwrap();
        let e = crate::eigen::SymmetricEigen::new(&cov).unwrap();
        for l in e.eigenvalues {
            assert!(l > -1e-10, "negative eigenvalue {l}");
        }
    }
}
