//! Row-major dense matrix over `f64`.
//!
//! [`Matrix`] is deliberately minimal: a contiguous `Vec<f64>` plus shape,
//! with the handful of products and reductions the hyperspectral algorithms
//! need. Rows are contiguous, which matches the band-interleaved-by-pixel
//! layout used by `hsi-cube` (a pixel's spectrum is one row).

use crate::error::shape_mismatch;
use crate::{LinAlgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// Indexing is `(row, col)`; storage is `data[row * cols + col]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows supplied");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-row matrix from a vector (a row vector).
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix::from_vec(1, v.len(), v.to_vec())
    }

    /// Creates a single-column matrix from a vector (a column vector).
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    /// Panics if `row.len() != self.cols()` (unless the matrix is empty, in
    /// which case the row defines the column count).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row: wrong row length");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the classic i-k-j loop order so the inner loop streams over
    /// contiguous rows of both `self` and `rhs` (cache-friendly, per the
    /// Rust Performance Book guidance on memory access patterns).
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(shape_mismatch(
                format!("rhs with {} rows", self.cols),
                format!("{}x{}", rhs.rows, rhs.cols),
            ));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(shape_mismatch(
                format!("vector of length {}", self.cols),
                format!("length {}", v.len()),
            ));
        }
        Ok((0..self.rows).map(|r| dot(self.row(r), v)).collect())
    }

    /// Matrix–vector product `self * v` written into `out`
    /// (`out.len()` must equal `self.rows`) — the allocation-free form
    /// of [`Matrix::matvec`] for per-pixel hot loops.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<()> {
        if v.len() != self.cols {
            return Err(shape_mismatch(
                format!("vector of length {}", self.cols),
                format!("length {}", v.len()),
            ));
        }
        if out.len() != self.rows {
            return Err(shape_mismatch(
                format!("output of length {}", self.rows),
                format!("length {}", out.len()),
            ));
        }
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(self.row(r), v);
        }
        Ok(())
    }

    /// Transposed matrix–vector product `selfᵀ * v`.
    pub fn tr_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(shape_mismatch(
                format!("vector of length {}", self.rows),
                format!("length {}", v.len()),
            ));
        }
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += vr * a;
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (always square `cols × cols`, symmetric).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(shape_mismatch(
                format!("{}x{}", self.rows, self.cols),
                format!("{}x{}", rhs.rows, rhs.cols),
            ));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix::from_vec(self.rows, self.cols, data))
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(shape_mismatch(
                format!("{}x{}", self.rows, self.cols),
                format!("{}x{}", rhs.rows, rhs.cols),
            ));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix::from_vec(self.rows, self.cols, data))
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// `true` when every element of `self - rhs` is within `tol` in absolute
    /// value. Shapes must match.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Checks symmetry within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the square submatrix of the first `k` rows and columns.
    pub fn leading_principal_submatrix(&self, k: usize) -> Result<Matrix> {
        if k > self.rows || k > self.cols {
            return Err(shape_mismatch(
                format!("k <= min({}, {})", self.rows, self.cols),
                format!("k = {k}"),
            ));
        }
        let mut m = Matrix::zeros(k, k);
        for i in 0..k {
            m.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        Ok(m)
    }

    /// Returns the `rows × k` matrix formed by the first `k` columns.
    pub fn first_cols(&self, k: usize) -> Result<Matrix> {
        if k > self.cols {
            return Err(shape_mismatch(
                format!("k <= {}", self.cols),
                format!("k = {k}"),
            ));
        }
        let mut m = Matrix::zeros(self.rows, k);
        for r in 0..self.rows {
            m.row_mut(r).copy_from_slice(&self.row(r)[..k]);
        }
        Ok(m)
    }

    /// Sum of diagonal elements. Errors on non-square matrices.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(shape_mismatch(
                "square matrix",
                format!("{}x{}", self.rows, self.cols),
            ));
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Validates that the matrix is non-empty, returning [`LinAlgError::Empty`]
    /// otherwise.
    pub fn require_non_empty(&self) -> Result<()> {
        if self.rows == 0 || self.cols == 0 {
            Err(LinAlgError::Empty)
        } else {
            Ok(())
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Debug-asserts equal lengths; in release the shorter length governs.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` (BLAS `axpy`).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace().unwrap(), 3.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinAlgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_and_tr_matvec_agree_with_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 1.0]]);
        let v = [2.0, 1.0, -1.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![1.0 * 2.0 - 2.0 - 0.5, 3.0 - 1.0]);
        let w = [1.0, 2.0];
        let got_t = a.tr_matvec(&w).unwrap();
        let expect = a.transpose().matvec(&w).unwrap();
        for (g, e) in got_t.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn submatrix_extraction() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let s = m.leading_principal_submatrix(2).unwrap();
        assert!(s.approx_eq(&Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 5.0]]), 0.0));
        let c = m.first_cols(1).unwrap();
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c[(2, 0)], 7.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn empty_matrix_rejected() {
        let m = Matrix::zeros(0, 3);
        assert!(matches!(m.require_non_empty(), Err(LinAlgError::Empty)));
    }
}
