//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The principal component transform (Algorithm 4, step 7 of the paper)
//! needs the eigenvectors of an `N × N` covariance matrix (`N = 224`
//! spectral bands), sorted by descending eigenvalue. Jacobi rotation is the
//! classic choice at this scale: simple, unconditionally stable for
//! symmetric input, and accurate to machine precision for the well-scaled
//! covariance matrices that arise here.

use crate::error::shape_mismatch;
use crate::{LinAlgError, Matrix, Result};

/// Maximum number of full sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 64;

/// Result of a symmetric eigendecomposition: `A = V · diag(λ) · Vᵀ`.
///
/// Eigenpairs are sorted by **descending** eigenvalue, matching the PCT's
/// convention that the first principal component carries the most variance.
///
/// ```
/// use hsi_linalg::{Matrix, eigen::SymmetricEigen};
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = SymmetricEigen::new(&a).unwrap();
/// assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
/// assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as **rows** (row `i` pairs with `eigenvalues[i]`), so
    /// `eigenvectors.matvec(x)` projects `x` onto the principal axes.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Decomposes a symmetric matrix with the cyclic Jacobi method.
    ///
    /// `a` must be square; symmetry is enforced by averaging `a` with its
    /// transpose first (cheap insurance against accumulation asymmetries in
    /// covariance sums). Returns [`LinAlgError::NoConvergence`] if the
    /// off-diagonal mass has not vanished after `MAX_SWEEPS` (64) sweeps —
    /// which for symmetric input effectively cannot happen.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(shape_mismatch(
                "square matrix",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        a.require_non_empty()?;
        let n = a.rows();

        // Work on the symmetrised copy.
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
            }
        }
        let mut v = Matrix::identity(n);
        let scale = m.max_abs().max(f64::MIN_POSITIVE);
        let tol = 1e-14 * scale * (n as f64);

        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let off = off_diagonal_norm(&m);
            if off <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64).max(1.0) {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Classic Jacobi rotation parameters (Golub & Van Loan §8.5).
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Update rows/columns p and q of M = Jᵀ M J.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate the rotation into V (rows are eigenvectors).
                    for k in 0..n {
                        let vpk = v[(p, k)];
                        let vqk = v[(q, k)];
                        v[(p, k)] = c * vpk - s * vqk;
                        v[(q, k)] = s * vpk + c * vqk;
                    }
                }
            }
        }
        if !converged && off_diagonal_norm(&m) > tol {
            return Err(LinAlgError::NoConvergence {
                iterations: MAX_SWEEPS,
            });
        }

        // Extract and sort eigenpairs by descending eigenvalue. Sorting is
        // stable with an index tiebreak so results are fully deterministic.
        let mut order: Vec<usize> = (0..n).collect();
        let lambda: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&i, &j| {
            lambda[j]
                .partial_cmp(&lambda[i])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(i.cmp(&j))
        });
        let mut eigenvalues = Vec::with_capacity(n);
        let mut eigenvectors = Matrix::zeros(n, n);
        for (row, &idx) in order.iter().enumerate() {
            eigenvalues.push(lambda[idx]);
            // Canonical sign: first nonzero component positive, so that the
            // decomposition is unique and reproducible across platforms.
            let vec_row = v.row(idx).to_vec();
            let sign = vec_row
                .iter()
                .find(|x| x.abs() > 1e-12)
                .map(|x| x.signum())
                .unwrap_or(1.0);
            for (c, val) in vec_row.into_iter().enumerate() {
                eigenvectors[(row, c)] = sign * val;
            }
        }
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Number of eigenpairs.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// The `k × n` transformation matrix formed by the top-`k` eigenvectors
    /// (the PCT's `T`). Errors when `k > n`.
    pub fn principal_transform(&self, k: usize) -> Result<Matrix> {
        if k > self.dim() {
            return Err(shape_mismatch(
                format!("k <= {}", self.dim()),
                format!("k = {k}"),
            ));
        }
        let n = self.dim();
        let mut t = Matrix::zeros(k, n);
        for i in 0..k {
            t.row_mut(i).copy_from_slice(self.eigenvectors.row(i));
        }
        Ok(t)
    }

    /// Fraction of total variance captured by the top-`k` eigenvalues.
    /// Negative eigenvalues (numerical noise in covariance sums) are
    /// clamped to zero for the purpose of this ratio.
    pub fn explained_variance(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().map(|l| l.max(0.0)).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let top: f64 = self.eigenvalues.iter().take(k).map(|l| l.max(0.0)).sum();
        top / total
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += 2.0 * m[(i, j)] * m[(i, j)];
        }
    }
    sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenpairs() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.eigenvectors.row(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v0[0] - v0[1]).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_identity() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        // A ≈ Vᵀ diag(λ) V with V rows = eigenvectors.
        let v = &e.eigenvectors;
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = e.eigenvalues[i];
        }
        let recon = v.transpose().matmul(&d).unwrap().matmul(v).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 4.0, 2.0], &[1.0, 2.0, 3.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        let vvt = e.eigenvectors.matmul(&e.eigenvectors.transpose()).unwrap();
        assert!(vvt.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn descending_order_and_variance_ratio() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 3.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues.len(), 3);
        assert!(e.eigenvalues[0] >= e.eigenvalues[1]);
        assert!(e.eigenvalues[1] >= e.eigenvalues[2]);
        assert!((e.explained_variance(1) - 5.0 / 9.0).abs() < 1e-12);
        assert!((e.explained_variance(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn principal_transform_shape() {
        let a = Matrix::identity(4);
        let e = SymmetricEigen::new(&a).unwrap();
        let t = e.principal_transform(2).unwrap();
        assert_eq!(t.shape(), (2, 4));
        assert!(e.principal_transform(5).is_err());
    }

    #[test]
    fn moderate_size_random_symmetric() {
        // 40x40 symmetric matrix from a deterministic LCG.
        let n = 40;
        let mut state: u64 = 7;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = SymmetricEigen::new(&a).unwrap();
        // Check A v = λ v for the extreme pairs.
        for idx in [0, n - 1] {
            let v = e.eigenvectors.row(idx).to_vec();
            let av = a.matvec(&v).unwrap();
            for (p, q) in av.iter().zip(v.iter()) {
                assert!((p - e.eigenvalues[idx] * q).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            SymmetricEigen::new(&Matrix::zeros(0, 0)),
            Err(LinAlgError::Empty)
        ));
    }
}
