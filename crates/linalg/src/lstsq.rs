//! Least-squares abundance estimation (linear spectral unmixing).
//!
//! Given an endmember matrix `U` (`t × N`, one spectral signature per row)
//! and a pixel `x` (length `N`), linear unmixing estimates abundances `a`
//! (length `t`) with `x ≈ Uᵀ a`. Four estimators are provided, exactly the
//! ladder used in the hyperspectral literature (Heinz & Chang 2001) and by
//! the paper's UFCLS algorithm:
//!
//! * [`ls`] — unconstrained least squares,
//! * [`scls`] — sum-to-one constrained (`Σ aᵢ = 1`),
//! * [`nnls`] — non-negativity constrained (Lawson–Hanson active set),
//! * [`fcls`] — fully constrained (both), via the Heinz–Chang augmented
//!   system solved with NNLS.
//!
//! All solvers work on the *Gram side*: `UUᵀ` (`t × t`) and `U x`
//! (`t`-vector) are formed once, so per-pixel cost after the `O(tN)`
//! products is independent of `N` — crucial when unmixing a million pixels.

use crate::cholesky::CholeskyDecomposition;
use crate::error::shape_mismatch;
use crate::lu::LuDecomposition;
use crate::matrix::dot;
use crate::{LinAlgError, Matrix, Result};

/// Weight of the sum-to-one row in the Heinz–Chang FCLS augmentation.
/// Larger values enforce the constraint more strictly at some cost in
/// conditioning; `1e3` relative to unit-scaled reflectances is the
/// customary compromise.
pub const FCLS_DELTA: f64 = 1.0e3;

/// Iteration budget for the NNLS active-set loop (far above what `t ≤ 32`
/// endmembers can need; prevents pathological cycling).
const NNLS_MAX_ITER: usize = 512;

/// Result of an unmixing call: abundances plus the squared residual
/// `‖x − Uᵀa‖²`, which is the per-pixel "error image" score UFCLS ranks by.
#[derive(Debug, Clone, PartialEq)]
pub struct Unmixing {
    /// Estimated abundance of each endmember (row of `U`).
    pub abundances: Vec<f64>,
    /// Squared reconstruction error `‖x − Uᵀa‖²`.
    pub residual_sq: f64,
}

fn check_dims(u: &Matrix, x: &[f64]) -> Result<()> {
    u.require_non_empty()?;
    if x.len() != u.cols() {
        return Err(shape_mismatch(
            format!("pixel of length {}", u.cols()),
            format!("length {}", x.len()),
        ));
    }
    Ok(())
}

fn residual_sq(u: &Matrix, x: &[f64], a: &[f64]) -> f64 {
    // r = x − Uᵀ a, accumulated without building Uᵀ.
    let mut r = x.to_vec();
    for (i, &ai) in a.iter().enumerate() {
        if ai != 0.0 {
            crate::matrix::axpy(-ai, u.row(i), &mut r);
        }
    }
    dot(&r, &r)
}

/// Unconstrained least squares: `a = (UUᵀ)⁻¹ U x`.
pub fn ls(u: &Matrix, x: &[f64]) -> Result<Unmixing> {
    check_dims(u, x)?;
    let gram = u.matmul(&u.transpose())?;
    let rhs = u.matvec(x)?;
    let a = match CholeskyDecomposition::new(&gram) {
        Ok(ch) => ch.solve(&rhs)?,
        // Rank-deficient Gram: fall back to LU (caller may have duplicated
        // endmembers); if that is singular too, propagate the error.
        Err(_) => LuDecomposition::new(&gram)?.solve(&rhs)?,
    };
    let r = residual_sq(u, x, &a);
    Ok(Unmixing {
        abundances: a,
        residual_sq: r,
    })
}

/// Sum-to-one constrained least squares (SCLS) via the closed-form Lagrange
/// correction:
/// `a = a_ls − (UUᵀ)⁻¹ 1 · (1ᵀ a_ls − 1) / (1ᵀ (UUᵀ)⁻¹ 1)`.
pub fn scls(u: &Matrix, x: &[f64]) -> Result<Unmixing> {
    check_dims(u, x)?;
    let t = u.rows();
    let gram = u.matmul(&u.transpose())?;
    let rhs = u.matvec(x)?;
    let ch = CholeskyDecomposition::new(&gram).map_err(|_| LinAlgError::Singular)?;
    let a_ls = ch.solve(&rhs)?;
    let ones = vec![1.0; t];
    let g_inv_ones = ch.solve(&ones)?;
    let denom = dot(&ones, &g_inv_ones);
    if denom.abs() < 1e-300 {
        return Err(LinAlgError::Singular);
    }
    let excess = (a_ls.iter().sum::<f64>() - 1.0) / denom;
    let a: Vec<f64> = a_ls
        .iter()
        .zip(&g_inv_ones)
        .map(|(ai, gi)| ai - excess * gi)
        .collect();
    let r = residual_sq(u, x, &a);
    Ok(Unmixing {
        abundances: a,
        residual_sq: r,
    })
}

/// Non-negative least squares by the Lawson–Hanson active-set method,
/// operating on the precomputed Gram matrix `G = UUᵀ` and correlation
/// vector `c = Ux`.
///
/// Returns the abundance vector only; callers needing the residual use
/// [`nnls`] which also reports it.
fn nnls_gram(g: &Matrix, c: &[f64]) -> Result<Vec<f64>> {
    let t = c.len();
    let mut passive = vec![false; t];
    let mut a = vec![0.0; t];

    for _iter in 0..NNLS_MAX_ITER {
        // Gradient of ½‖x − Uᵀa‖² is w = c − G a (restricted to active set).
        let ga = g.matvec(&a)?;
        let w: Vec<f64> = c.iter().zip(&ga).map(|(ci, gi)| ci - gi).collect();

        // Pick the most violated active constraint.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..t {
            if !passive[j] && w[j] > 1e-12 {
                match best {
                    Some((_, val)) if w[j] <= val => {}
                    _ => best = Some((j, w[j])),
                }
            }
        }
        let Some((j_star, _)) = best else {
            // KKT satisfied: done.
            return Ok(a);
        };
        passive[j_star] = true;

        // Inner loop: solve the unconstrained problem on the passive set;
        // if any passive coefficient goes non-positive, step back to the
        // boundary and shrink the passive set.
        loop {
            let idx: Vec<usize> = (0..t).filter(|&j| passive[j]).collect();
            let k = idx.len();
            let mut sub = Matrix::zeros(k, k);
            let mut sub_c = vec![0.0; k];
            for (r, &jr) in idx.iter().enumerate() {
                sub_c[r] = c[jr];
                for (s, &js) in idx.iter().enumerate() {
                    sub[(r, s)] = g[(jr, js)];
                }
            }
            let z = match CholeskyDecomposition::new(&sub) {
                Ok(ch) => ch.solve(&sub_c)?,
                Err(_) => LuDecomposition::new(&sub)?.solve(&sub_c)?,
            };
            if z.iter().all(|&v| v > 0.0) {
                for (r, &jr) in idx.iter().enumerate() {
                    a[jr] = z[r];
                }
                for j in 0..t {
                    if !passive[j] {
                        a[j] = 0.0;
                    }
                }
                break;
            }
            // Line search toward z, stopping at the first zero crossing.
            let mut alpha = f64::INFINITY;
            for (r, &jr) in idx.iter().enumerate() {
                if z[r] <= 0.0 {
                    let denom = a[jr] - z[r];
                    if denom > 0.0 {
                        alpha = alpha.min(a[jr] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (r, &jr) in idx.iter().enumerate() {
                a[jr] += alpha * (z[r] - a[jr]);
            }
            for &jr in &idx {
                if a[jr] <= 1e-14 {
                    a[jr] = 0.0;
                    passive[jr] = false;
                }
            }
        }
    }
    Err(LinAlgError::NoConvergence {
        iterations: NNLS_MAX_ITER,
    })
}

/// Non-negativity constrained least squares (`aᵢ ≥ 0`).
pub fn nnls(u: &Matrix, x: &[f64]) -> Result<Unmixing> {
    check_dims(u, x)?;
    let gram = u.matmul(&u.transpose())?;
    let c = u.matvec(x)?;
    let a = nnls_gram(&gram, &c)?;
    let r = residual_sq(u, x, &a);
    Ok(Unmixing {
        abundances: a,
        residual_sq: r,
    })
}

/// Fully constrained least squares (`aᵢ ≥ 0`, `Σ aᵢ = 1`) via the
/// Heinz–Chang augmentation: append a row of `δ`s to the design matrix and
/// a `δ` to the pixel, then solve with NNLS. The residual reported is with
/// respect to the **original** (unaugmented) system, as UFCLS requires.
///
/// ```
/// use hsi_linalg::{Matrix, lstsq::fcls};
/// let u = Matrix::from_rows(&[&[1.0, 0.0, 0.2], &[0.0, 1.0, 0.2]]);
/// // A 30/70 mixture of the two endmembers.
/// let x = [0.3, 0.7, 0.2];
/// let r = fcls(&u, &x).unwrap();
/// assert!((r.abundances[0] - 0.3).abs() < 1e-3);
/// assert!((r.abundances.iter().sum::<f64>() - 1.0).abs() < 1e-3);
/// ```
pub fn fcls(u: &Matrix, x: &[f64]) -> Result<Unmixing> {
    fcls_with_delta(u, x, FCLS_DELTA)
}

/// A prepared FCLS problem for unmixing **many** pixels against the same
/// endmember set: the augmented Gram matrix is computed once, so the
/// per-pixel cost drops to the correlation vector plus the NNLS solve.
/// This is how UFCLS processes a million-pixel image.
#[derive(Debug, Clone)]
pub struct FclsProblem {
    u: Matrix,
    gram_aug: Matrix,
    delta: f64,
}

impl FclsProblem {
    /// Prepares the problem for endmember matrix `u` (rows = signatures)
    /// with the default constraint weight.
    pub fn new(u: Matrix) -> Result<Self> {
        Self::with_delta(u, FCLS_DELTA)
    }

    /// Prepares the problem with an explicit constraint weight `δ`.
    pub fn with_delta(u: Matrix, delta: f64) -> Result<Self> {
        u.require_non_empty()?;
        let t = u.rows();
        let mut gram_aug = u.matmul(&u.transpose())?;
        for i in 0..t {
            for j in 0..t {
                gram_aug[(i, j)] += delta * delta;
            }
        }
        Ok(FclsProblem { u, gram_aug, delta })
    }

    /// Number of endmembers.
    pub fn num_endmembers(&self) -> usize {
        self.u.rows()
    }

    /// Number of spectral bands.
    pub fn bands(&self) -> usize {
        self.u.cols()
    }

    /// Unmixes one pixel, returning abundances and the unaugmented
    /// squared residual.
    pub fn solve(&self, x: &[f64]) -> Result<Unmixing> {
        check_dims(&self.u, x)?;
        let ux = self.u.matvec(x)?;
        let c: Vec<f64> = ux.iter().map(|v| v + self.delta * self.delta).collect();
        let a = nnls_gram(&self.gram_aug, &c)?;
        let r = residual_sq(&self.u, x, &a);
        Ok(Unmixing {
            abundances: a,
            residual_sq: r,
        })
    }

    /// Unmixes an `f32` pixel (the native cube type), widening to `f64`.
    pub fn solve_f32(&self, x: &[f32]) -> Result<Unmixing> {
        let wide: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        self.solve(&wide)
    }
}

/// [`fcls`] with an explicit constraint weight `δ` (exposed for ablation).
pub fn fcls_with_delta(u: &Matrix, x: &[f64], delta: f64) -> Result<Unmixing> {
    check_dims(u, x)?;
    let t = u.rows();
    let n = u.cols();
    // Augmented design: each endmember row gains a trailing δ; the pixel
    // gains a trailing δ. Gram/correlation computed directly to avoid
    // materialising the augmented matrix.
    let mut gram = u.matmul(&u.transpose())?;
    for i in 0..t {
        for j in 0..t {
            gram[(i, j)] += delta * delta;
        }
    }
    let ux = u.matvec(x)?;
    let c: Vec<f64> = ux.iter().map(|v| v + delta * delta).collect();
    debug_assert_eq!(x.len(), n);
    let a = nnls_gram(&gram, &c)?;
    let r = residual_sq(u, x, &a);
    Ok(Unmixing {
        abundances: a,
        residual_sq: r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated endmembers over 5 bands.
    fn endmembers() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.8, 0.6, 0.4, 0.2], &[0.1, 0.3, 0.5, 0.7, 0.9]])
    }

    fn mix(u: &Matrix, a: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; u.cols()];
        for (i, &ai) in a.iter().enumerate() {
            crate::matrix::axpy(ai, u.row(i), &mut x);
        }
        x
    }

    #[test]
    fn ls_recovers_exact_mixture() {
        let u = endmembers();
        let x = mix(&u, &[0.3, 0.7]);
        let r = ls(&u, &x).unwrap();
        assert!((r.abundances[0] - 0.3).abs() < 1e-10);
        assert!((r.abundances[1] - 0.7).abs() < 1e-10);
        assert!(r.residual_sq < 1e-18);
    }

    #[test]
    fn scls_enforces_sum_to_one() {
        let u = endmembers();
        // A pixel that is NOT a unit-sum mixture.
        let x = mix(&u, &[0.5, 0.9]);
        let r = scls(&u, &x).unwrap();
        let sum: f64 = r.abundances.iter().sum();
        assert!((sum - 1.0).abs() < 1e-10, "sum = {sum}");
    }

    #[test]
    fn nnls_clamps_negative_components() {
        let u = endmembers();
        // Pixel close to endmember 0 minus some of endmember 1: the
        // unconstrained solution has a negative abundance.
        let x: Vec<f64> = u
            .row(0)
            .iter()
            .zip(u.row(1))
            .map(|(a, b)| a - 0.2 * b)
            .collect();
        let unc = ls(&u, &x).unwrap();
        assert!(unc.abundances[1] < 0.0);
        let r = nnls(&u, &x).unwrap();
        assert!(r.abundances.iter().all(|&v| v >= 0.0));
        // NNLS residual can't beat the unconstrained one.
        assert!(r.residual_sq >= unc.residual_sq - 1e-12);
    }

    #[test]
    fn nnls_matches_ls_when_interior() {
        let u = endmembers();
        let x = mix(&u, &[0.4, 0.5]);
        let r_ls = ls(&u, &x).unwrap();
        let r_nn = nnls(&u, &x).unwrap();
        for (p, q) in r_ls.abundances.iter().zip(&r_nn.abundances) {
            assert!((p - q).abs() < 1e-8);
        }
    }

    #[test]
    fn fcls_satisfies_both_constraints() {
        let u = endmembers();
        let x = mix(&u, &[0.25, 0.75]);
        let r = fcls(&u, &x).unwrap();
        let sum: f64 = r.abundances.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum = {sum}");
        assert!(r.abundances.iter().all(|&v| v >= 0.0));
        assert!((r.abundances[0] - 0.25).abs() < 1e-3);
        assert!((r.abundances[1] - 0.75).abs() < 1e-3);
    }

    #[test]
    fn fcls_residual_grows_with_unmodelled_signal() {
        let u = endmembers();
        let pure = mix(&u, &[0.5, 0.5]);
        let r_pure = fcls(&u, &pure).unwrap();
        // Add a signature orthogonal-ish to both endmembers.
        let anomalous: Vec<f64> = pure
            .iter()
            .enumerate()
            .map(|(i, v)| v + if i == 2 { 1.5 } else { 0.0 })
            .collect();
        let r_anom = fcls(&u, &anomalous).unwrap();
        assert!(
            r_anom.residual_sq > r_pure.residual_sq + 0.1,
            "anomalous pixel must score higher: {} vs {}",
            r_anom.residual_sq,
            r_pure.residual_sq
        );
    }

    #[test]
    fn single_endmember_fcls() {
        let u = Matrix::from_rows(&[&[0.5, 0.5, 0.5]]);
        let x = [0.5, 0.5, 0.5];
        let r = fcls(&u, &x).unwrap();
        assert!((r.abundances[0] - 1.0).abs() < 1e-6);
        assert!(r.residual_sq < 1e-10);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let u = endmembers();
        assert!(ls(&u, &[1.0, 2.0]).is_err());
        assert!(fcls(&u, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn fcls_problem_matches_one_shot_fcls() {
        let u = endmembers();
        let prob = FclsProblem::new(u.clone()).unwrap();
        for a in [[0.2, 0.8], [0.9, 0.1], [0.5, 0.5]] {
            let x = mix(&u, &a);
            let one = fcls(&u, &x).unwrap();
            let batch = prob.solve(&x).unwrap();
            for (p, q) in one.abundances.iter().zip(&batch.abundances) {
                assert!((p - q).abs() < 1e-10);
            }
            assert!((one.residual_sq - batch.residual_sq).abs() < 1e-12);
        }
    }

    #[test]
    fn fcls_problem_f32_entry_point() {
        let u = endmembers();
        let prob = FclsProblem::new(u.clone()).unwrap();
        let x64 = mix(&u, &[0.3, 0.7]);
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        let r = prob.solve_f32(&x32).unwrap();
        assert!((r.abundances[0] - 0.3).abs() < 1e-3);
    }

    #[test]
    fn three_endmember_fcls_on_vertex() {
        let u = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.2],
            &[0.0, 1.0, 0.0, 0.2],
            &[0.0, 0.0, 1.0, 0.2],
        ]);
        // Pixel exactly equal to endmember 2.
        let x = [0.0, 0.0, 1.0, 0.2];
        let r = fcls(&u, &x).unwrap();
        assert!(r.abundances[2] > 0.99);
        assert!(r.abundances[0] < 0.01 && r.abundances[1] < 0.01);
    }
}
