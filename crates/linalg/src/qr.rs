//! QR decomposition by Householder reflections.
//!
//! The numerically gold-standard orthogonalisation — used here as the
//! reference implementation that the fast incremental
//! [`crate::ortho::OrthoBasis`] (modified Gram–Schmidt) is validated
//! against, and as a general least-squares building block.

use crate::error::shape_mismatch;
use crate::{LinAlgError, Matrix, Result};

/// A thin QR decomposition `A = Q·R` of an `m × n` matrix with `m ≥ n`:
/// `Q` is `m × n` with orthonormal columns, `R` is `n × n` upper
/// triangular.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    q: Matrix,
    r: Matrix,
}

impl QrDecomposition {
    /// Factorises `a` (requires `rows ≥ cols`).
    pub fn new(a: &Matrix) -> Result<Self> {
        a.require_non_empty()?;
        let (m, n) = a.shape();
        if m < n {
            return Err(shape_mismatch(
                "matrix with rows >= cols",
                format!("{m}x{n}"),
            ));
        }
        // Householder QR on a working copy; accumulate Q by applying the
        // reflectors to the identity.
        let mut r = a.clone();
        // Store reflectors v_k (length m, zeros above k).
        let mut reflectors: Vec<Vec<f64>> = Vec::with_capacity(n);
        for k in 0..n {
            // Build the Householder vector for column k.
            let mut v = vec![0.0; m];
            let mut norm_sq = 0.0;
            for i in k..m {
                let x = r[(i, k)];
                v[i] = x;
                norm_sq += x * x;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                reflectors.push(vec![0.0; m]);
                continue;
            }
            let alpha = if v[k] >= 0.0 { -norm } else { norm };
            v[k] -= alpha;
            let v_norm_sq: f64 = v[k..].iter().map(|x| x * x).sum();
            if v_norm_sq <= f64::MIN_POSITIVE {
                reflectors.push(vec![0.0; m]);
                continue;
            }
            // Apply H = I − 2vvᵀ/(vᵀv) to the remaining columns.
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * r[(i, j)];
                }
                let scale = 2.0 * dot / v_norm_sq;
                for i in k..m {
                    r[(i, j)] -= scale * v[i];
                }
            }
            reflectors.push(v);
        }
        // Zero the strictly-lower part of R (numerical dust) and keep the
        // leading n × n block.
        let mut r_thin = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r_thin[(i, j)] = r[(i, j)];
            }
        }
        // Q = H_0 H_1 … H_{n-1} applied to the first n identity columns.
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            // e_j through reflectors in reverse order.
            let mut col = vec![0.0; m];
            col[j] = 1.0;
            for v in reflectors.iter().rev() {
                let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
                if v_norm_sq <= f64::MIN_POSITIVE {
                    continue;
                }
                let dot: f64 = v.iter().zip(&col).map(|(a, b)| a * b).sum();
                let scale = 2.0 * dot / v_norm_sq;
                for (c, &vi) in col.iter_mut().zip(v) {
                    *c -= scale * vi;
                }
            }
            for (i, &c) in col.iter().enumerate() {
                q[(i, j)] = c;
            }
        }
        Ok(QrDecomposition { q, r: r_thin })
    }

    /// The orthonormal factor `Q` (`m × n`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves the least-squares problem `min ‖A·x − b‖` via
    /// `R·x = Qᵀ·b`. Returns [`LinAlgError::Singular`] when `R` has a
    /// (numerically) zero diagonal entry.
    pub fn solve_lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.q.shape();
        if b.len() != m {
            return Err(shape_mismatch(
                format!("rhs of length {m}"),
                format!("length {}", b.len()),
            ));
        }
        let qtb = self.q.tr_matvec(b)?;
        let mut x = qtb;
        let scale = self.r.max_abs().max(f64::MIN_POSITIVE);
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.r[(i, j)] * xj;
            }
            let d = self.r[(i, i)];
            if d.abs() < 1e-13 * scale {
                return Err(LinAlgError::Singular);
            }
            x[i] = sum / d;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_and_orthonormality() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        let back = qr.q().matmul(qr.r()).unwrap();
        assert!(back.approx_eq(&a, 1e-10), "QR != A");
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        assert!(
            qtq.approx_eq(&Matrix::identity(2), 1e-10),
            "Q not orthonormal"
        );
        // R upper triangular.
        assert!(qr.r()[(1, 0)].abs() < 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]);
        let b = [6.0, 5.0, 7.0, 10.0];
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_lstsq(&b).unwrap();
        // Normal equations: (AᵀA) x = Aᵀ b.
        let gram = a.transpose().matmul(&a).unwrap();
        let rhs = a.tr_matvec(&b).unwrap();
        let x_ne = crate::lu::solve(&gram, &rhs).unwrap();
        for (p, q) in x.iter().zip(&x_ne) {
            assert!((p - q).abs() < 1e-10, "{p} vs {q}");
        }
    }

    #[test]
    fn square_exact_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_lstsq(&[5.0, 10.0]).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 5.0).abs() < 1e-10 && (ax[1] - 10.0).abs() < 1e-10);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(QrDecomposition::new(&a).is_err());
    }

    #[test]
    fn rank_deficient_solve_errors() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(matches!(
            qr.solve_lstsq(&[1.0, 2.0, 3.0]),
            Err(LinAlgError::Singular)
        ));
    }

    #[test]
    fn agrees_with_mgs_basis() {
        // OrthoBasis (modified Gram-Schmidt) and Householder QR span the
        // same subspace: their complement projections agree.
        use crate::ortho::OrthoBasis;
        let rows = [
            vec![1.0, 0.5, 0.0, 2.0, 0.3],
            vec![0.0, 1.0, 1.0, 0.0, -0.2],
            vec![0.7, 0.7, 0.1, 0.9, 1.0],
        ];
        let mut basis = OrthoBasis::new(5);
        for r in &rows {
            basis.push(r);
        }
        // Column matrix for QR (vectors as columns).
        let mut a = Matrix::zeros(5, 3);
        for (j, r) in rows.iter().enumerate() {
            for (i, &v) in r.iter().enumerate() {
                a[(i, j)] = v;
            }
        }
        let qr = QrDecomposition::new(&a).unwrap();
        let x = [0.3, -1.0, 2.0, 0.1, 0.9];
        // Complement via QR: x − Q(Qᵀx).
        let qtx = qr.q().tr_matvec(&x).unwrap();
        let qqtx = qr.q().matvec(&qtx).unwrap();
        let via_qr: Vec<f64> = x.iter().zip(&qqtx).map(|(a, b)| a - b).collect();
        let via_mgs = basis.project_complement(&x);
        for (p, q) in via_qr.iter().zip(&via_mgs) {
            assert!((p - q).abs() < 1e-10, "{p} vs {q}");
        }
    }

    #[test]
    fn tall_random_like_matrix() {
        let mut state: u64 = 11;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let (m, n) = (20, 6);
        let mut a = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                a[(i, j)] = next();
            }
        }
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.q().matmul(qr.r()).unwrap().approx_eq(&a, 1e-10));
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(n), 1e-10));
    }
}
