//! Error type shared by all decompositions and solvers in this crate.

use std::fmt;

/// Errors produced by `hsi-linalg` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinAlgError {
    /// Two operands had incompatible shapes. Carries `(expected, found)`
    /// descriptions of the offending dimensions.
    ShapeMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape actually supplied.
        found: String,
    },
    /// The matrix is singular (or numerically so) to working precision.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The operation requires a non-empty input.
    Empty,
}

impl fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinAlgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LinAlgError::Singular => write!(f, "matrix is singular to working precision"),
            LinAlgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinAlgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            LinAlgError::Empty => write!(f, "operation requires a non-empty input"),
        }
    }
}

impl std::error::Error for LinAlgError {}

/// Builds a [`LinAlgError::ShapeMismatch`] from two formatted shapes.
pub(crate) fn shape_mismatch(expected: impl Into<String>, found: impl Into<String>) -> LinAlgError {
    LinAlgError::ShapeMismatch {
        expected: expected.into(),
        found: found.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = shape_mismatch("2x2", "3x3");
        assert_eq!(e.to_string(), "shape mismatch: expected 2x2, found 3x3");
        assert!(LinAlgError::Singular.to_string().contains("singular"));
        assert!(LinAlgError::NotPositiveDefinite
            .to_string()
            .contains("positive definite"));
        assert!(LinAlgError::NoConvergence { iterations: 7 }
            .to_string()
            .contains('7'));
        assert!(LinAlgError::Empty.to_string().contains("non-empty"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(LinAlgError::Singular);
        assert!(!e.to_string().is_empty());
    }
}
