//! # hsi-linalg — dense linear algebra substrate for `heterospec`
//!
//! A small, self-contained dense linear-algebra library implementing exactly
//! the operations the parallel hyperspectral algorithms of Plaza (CLUSTER
//! 2006) require:
//!
//! * [`Matrix`] — a row-major dense matrix over `f64` with the usual
//!   products, transposes and norms ([`matrix`]).
//! * LU decomposition with partial pivoting for solving, inversion and
//!   determinants ([`lu`]) — used for the `(UᵀU)⁻¹` factor of the
//!   orthogonal-subspace projector in ATDCA.
//! * Cholesky decomposition for symmetric positive-definite systems
//!   ([`cholesky`]) — used by the least-squares solvers.
//! * Cyclic Jacobi eigendecomposition of symmetric matrices ([`eigen`]) —
//!   used for the principal component transform (PCT).
//! * Modified Gram–Schmidt orthonormalisation and orthogonal-subspace
//!   projection ([`ortho`]) — the `P_U^⊥ = I − U(UᵀU)⁻¹Uᵀ` operator of
//!   ATDCA, applied either explicitly or through an orthonormal basis.
//! * Householder QR ([`qr`]) — the gold-standard orthogonalisation the
//!   fast incremental basis is validated against, plus least squares.
//! * Least-squares unmixing solvers ([`lstsq`]): unconstrained (LS),
//!   sum-to-one constrained (SCLS), non-negativity constrained (NNLS,
//!   Lawson–Hanson) and fully constrained (FCLS) — the machinery behind
//!   UFCLS.
//! * Streaming mean/covariance accumulation with mergeable partial sums
//!   ([`covariance`]) — the parallel covariance step of Hetero-PCT.
//!
//! The crate is dependency-free and deterministic: no randomised pivoting,
//! no platform-specific intrinsics, identical results on every host.
//!
//! ## Quick example
//!
//! ```
//! use hsi_linalg::{Matrix, lu::LuDecomposition};
//!
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
//! let lu = LuDecomposition::new(&a).unwrap();
//! let x = lu.solve(&[10.0, 9.0]).unwrap();
//! assert!((x[0] - 1.5).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cholesky;
pub mod covariance;
pub mod eigen;
pub mod error;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod ortho;
pub mod qr;

pub use error::LinAlgError;
pub use matrix::Matrix;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinAlgError>;
