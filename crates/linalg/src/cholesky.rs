//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! The least-squares solvers in [`crate::lstsq`] form normal equations
//! `(UᵀU)·a = Uᵀx` whose left-hand side is SPD whenever the endmember
//! matrix `U` has full column rank; Cholesky is the cheapest stable way to
//! solve them.

use crate::error::shape_mismatch;
use crate::{LinAlgError, Matrix, Result};

/// A lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    l: Matrix,
}

impl CholeskyDecomposition {
    /// Factorises a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility (use
    /// [`Matrix::is_symmetric`] to verify when in doubt). Returns
    /// [`LinAlgError::NotPositiveDefinite`] when a diagonal pivot is
    /// non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(shape_mismatch(
                "square matrix",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        a.require_non_empty()?;
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinAlgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via `L·y = b` then `Lᵀ·x = y`.
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the textbook algorithm
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(shape_mismatch(
                format!("rhs of length {n}"),
                format!("length {}", b.len()),
            ));
        }
        let mut y = b.to_vec();
        for i in 0..n {
            let mut sum = y[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of `A` (= product of squared diagonal entries of `L`).
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.dim() {
            let v = self.l[(i, i)];
            d *= v * v;
        }
        d
    }
}

/// Convenience wrapper: solve an SPD system in one call.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    CholeskyDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = CholeskyDecomposition::new(&a).unwrap();
        let l = ch.l();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
        assert!((ch.det() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let b = [1.0, -2.0, 3.0];
        let x_ch = solve_spd(&a, &b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        for (p, q) in x_ch.iter().zip(&x_lu) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(LinAlgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(CholeskyDecomposition::new(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            CholeskyDecomposition::new(&Matrix::zeros(0, 0)),
            Err(LinAlgError::Empty)
        ));
    }

    #[test]
    fn gram_matrix_of_full_rank_basis_is_spd() {
        let u = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 2.0]]);
        let g = u.gram();
        let ch = CholeskyDecomposition::new(&g).unwrap();
        assert!(ch.det() > 0.0);
    }
}
