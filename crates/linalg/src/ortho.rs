//! Orthonormalisation and orthogonal-subspace projection.
//!
//! ATDCA (Algorithm 2 of the paper) repeatedly applies the
//! orthogonal-subspace projector `P_U^⊥ = I − U(UᵀU)⁻¹Uᵀ` to every pixel
//! vector. Building the explicit `N × N` projector costs `O(N²)` per pixel
//! to apply; instead we maintain an orthonormal basis `Q` of `span(U)` with
//! modified Gram–Schmidt and apply `P_U^⊥ x = x − Q(Qᵀx)` in `O(tN)` where
//! `t = |U| ≪ N`. Both forms are provided; tests assert they agree.

use crate::lu::LuDecomposition;
use crate::matrix::{axpy, dot, norm2};
use crate::{Matrix, Result};

/// Relative tolerance under which a vector is considered linearly dependent
/// on the existing basis and is dropped.
const DEPENDENCE_TOL: f64 = 1e-10;

/// Incrementally-built orthonormal basis of a growing span of vectors.
///
/// This mirrors ATDCA's use pattern: targets are discovered one at a time
/// and appended with [`OrthoBasis::push`].
#[derive(Debug, Clone, Default)]
pub struct OrthoBasis {
    /// Orthonormal vectors, one per row.
    q: Vec<Vec<f64>>,
    dim: usize,
}

impl OrthoBasis {
    /// An empty basis over vectors of length `dim`.
    pub fn new(dim: usize) -> Self {
        OrthoBasis { q: Vec::new(), dim }
    }

    /// Builds a basis from the rows of `u` (dependent rows are skipped).
    pub fn from_rows(u: &Matrix) -> Self {
        let mut basis = OrthoBasis::new(u.cols());
        for r in 0..u.rows() {
            basis.push(u.row(r));
        }
        basis
    }

    /// Number of orthonormal vectors currently held.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// `true` when the basis holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of the `i`-th orthonormal vector.
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.q[i]
    }

    /// Orthonormalises `v` against the basis (modified Gram–Schmidt with
    /// one reorthogonalisation pass) and appends it. Returns `true` when
    /// the vector enlarged the span, `false` when it was (numerically)
    /// dependent and was dropped.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    pub fn push(&mut self, v: &[f64]) -> bool {
        assert_eq!(v.len(), self.dim, "push: wrong vector length");
        let scale = norm2(v);
        if scale == 0.0 {
            return false;
        }
        let mut w = v.to_vec();
        // Two MGS passes ("twice is enough" — Kahan/Parlett) for stability.
        for _ in 0..2 {
            for q in &self.q {
                let c = dot(&w, q);
                axpy(-c, q, &mut w);
            }
        }
        let n = norm2(&w);
        if n <= DEPENDENCE_TOL * scale {
            return false;
        }
        let inv = 1.0 / n;
        for x in &mut w {
            *x *= inv;
        }
        self.q.push(w);
        true
    }

    /// Applies the **orthogonal-complement** projector:
    /// `out = (I − QQᵀ) x = P_U^⊥ x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    pub fn project_complement(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "project_complement: wrong length");
        let mut out = x.to_vec();
        self.project_complement_into(&mut out);
        out
    }

    /// In-place variant of [`Self::project_complement`]; `buf` holds `x` on
    /// entry and `P_U^⊥ x` on exit. Avoids allocation in hot loops.
    #[inline]
    pub fn project_complement_into(&self, buf: &mut [f64]) {
        for q in &self.q {
            let c = dot(buf, q);
            axpy(-c, q, buf);
        }
    }

    /// Squared norm of the complement projection — the ATDCA per-pixel score
    /// `(P_U^⊥ x)ᵀ (P_U^⊥ x)` — computed without materialising the
    /// projected vector: `‖x‖² − Σ (qᵢᵀx)²` by the Pythagorean theorem.
    #[inline]
    pub fn complement_score(&self, x: &[f64]) -> f64 {
        let mut s = dot(x, x);
        for q in &self.q {
            let c = dot(x, q);
            s -= c * c;
        }
        // Guard the tiny negative residuals of floating-point cancellation.
        s.max(0.0)
    }
}

/// Builds the explicit orthogonal-subspace projector
/// `P_U^⊥ = I − Uᵀ(UUᵀ)⁻¹U` for an endmember matrix whose **rows** are the
/// signatures (the paper's `U` is `t × N`, one target per row).
///
/// This is the literal textbook operator — `O(N²)` storage and apply — kept
/// for verification; production code paths use [`OrthoBasis`].
pub fn explicit_projector(u: &Matrix) -> Result<Matrix> {
    u.require_non_empty()?;
    let n = u.cols();
    // UUᵀ is t × t (small); invert with LU.
    let uut = u.matmul(&u.transpose())?;
    let inv = LuDecomposition::new(&uut)?.inverse()?;
    // P = I − Uᵀ (UUᵀ)⁻¹ U
    let ut = u.transpose();
    let m = ut.matmul(&inv)?.matmul(u)?;
    let mut p = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            p[(i, j)] -= m[(i, j)];
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn basis_orthonormality() {
        let mut basis = OrthoBasis::new(3);
        assert!(basis.push(&[1.0, 1.0, 0.0]));
        assert!(basis.push(&[1.0, 0.0, 1.0]));
        assert_eq!(basis.len(), 2);
        for i in 0..2 {
            assert!((norm2(basis.vector(i)) - 1.0).abs() < 1e-12);
        }
        assert!(dot(basis.vector(0), basis.vector(1)).abs() < 1e-12);
    }

    #[test]
    fn dependent_vector_dropped() {
        let mut basis = OrthoBasis::new(3);
        assert!(basis.push(&[1.0, 2.0, 3.0]));
        assert!(!basis.push(&[2.0, 4.0, 6.0]));
        assert!(!basis.push(&[0.0, 0.0, 0.0]));
        assert_eq!(basis.len(), 1);
    }

    #[test]
    fn complement_of_basis_member_is_zero() {
        let mut basis = OrthoBasis::new(3);
        basis.push(&[0.0, 3.0, 4.0]);
        let p = basis.project_complement(&[0.0, 3.0, 4.0]);
        assert!(norm2(&p) < 1e-10);
        assert!(basis.complement_score(&[0.0, 3.0, 4.0]) < 1e-10);
    }

    #[test]
    fn complement_orthogonal_to_span() {
        let mut basis = OrthoBasis::new(4);
        basis.push(&[1.0, 0.5, 0.0, 2.0]);
        basis.push(&[0.0, 1.0, 1.0, 0.0]);
        let x = [3.0, -1.0, 2.0, 0.5];
        let p = basis.project_complement(&x);
        for i in 0..basis.len() {
            assert!(dot(&p, basis.vector(i)).abs() < 1e-10);
        }
        // Score equals squared norm of the projected vector.
        assert!((basis.complement_score(&x) - dot(&p, &p)).abs() < 1e-10);
    }

    #[test]
    fn matches_explicit_projector() {
        let u = Matrix::from_rows(&[&[1.0, 2.0, 0.0, 1.0], &[0.0, 1.0, 1.0, 3.0]]);
        let p = explicit_projector(&u).unwrap();
        let basis = OrthoBasis::from_rows(&u);
        let x = [0.3, -1.2, 2.0, 0.7];
        let via_matrix = p.matvec(&x).unwrap();
        let via_basis = basis.project_complement(&x);
        assert_close(&via_matrix, &via_basis, 1e-10);
    }

    #[test]
    fn explicit_projector_is_idempotent_and_symmetric() {
        let u = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]);
        let p = explicit_projector(&u).unwrap();
        let pp = p.matmul(&p).unwrap();
        assert!(pp.approx_eq(&p, 1e-10));
        assert!(p.is_symmetric(1e-10));
        // P annihilates rows of U.
        let px = p.matvec(u.row(0)).unwrap();
        assert!(norm2(&px) < 1e-10);
    }

    #[test]
    fn empty_basis_is_identity_projection() {
        let basis = OrthoBasis::new(3);
        let x = [1.0, 2.0, 3.0];
        assert_close(&basis.project_complement(&x), &x, 0.0);
        assert!((basis.complement_score(&x) - dot(&x, &x)).abs() < 1e-12);
    }

    #[test]
    fn from_rows_skips_dependent() {
        let u = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[0.0, 1.0]]);
        let basis = OrthoBasis::from_rows(&u);
        assert_eq!(basis.len(), 2);
    }
}
