//! Greedy delta-debugging shrinker and reproducer emitters.
//!
//! Given a scenario the oracle rejects, [`shrink`] repeatedly tries
//! the smallest structural edits — drop one fault event, halve the
//! rank count, halve the scene, simplify the collective, detach the
//! accelerators — keeping any edit under which the *same invariant*
//! still fails, until no edit preserves the failure. Every edit
//! strictly decreases a bounded quantity, so the loop terminates; the
//! oracle is deterministic, so the result is reproducible.
//!
//! The minimized scenario is then rendered two ways: a self-contained
//! Rust `#[test]` (paste into a suite as a permanent regression) and a
//! JSON record for the soak report.

use crate::oracle::{Oracle, Violation};
use crate::scenario::Scenario;
use testutil::gen::FaultEvent;

/// A minimized failing scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Shrunk {
    /// The smallest scenario found that still violates the invariant.
    pub scenario: Scenario,
    /// The violation it produces (same invariant as the original).
    pub violation: Violation,
    /// Number of accepted shrink steps.
    pub steps: usize,
}

/// Minimizes `scenario` under `oracle`, preserving the invariant of
/// `violation`. Returns the fixpoint: no single candidate edit keeps
/// the failure alive.
pub fn shrink(oracle: &Oracle, scenario: &Scenario, violation: &Violation) -> Shrunk {
    let mut current = scenario.clone();
    let mut witnessed = violation.clone();
    let mut steps = 0;
    loop {
        let mut progressed = false;
        for candidate in candidates(&current) {
            let verdict = oracle.check(&candidate);
            if let Some(v) = verdict.violation {
                if v.invariant == witnessed.invariant {
                    current = candidate;
                    witnessed = v;
                    steps += 1;
                    progressed = true;
                    break; // greedy: restart from the smaller scenario
                }
            }
        }
        if !progressed {
            return Shrunk {
                scenario: current,
                violation: witnessed,
                steps,
            };
        }
    }
}

/// All single-step reductions of `s`, most aggressive first. Every
/// candidate is structurally valid and strictly smaller than `s` in
/// at least one bounded dimension (and larger in none).
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // Fault events: drop all at once, then one at a time.
    if s.faults.len() > 1 {
        let mut c = s.clone();
        c.faults.clear();
        out.push(c);
    }
    for i in 0..s.faults.len() {
        let mut c = s.clone();
        c.faults.remove(i);
        out.push(c);
    }
    // Rank count: halve, then decrement.
    for target in [s.ranks / 2, s.ranks - 1] {
        if target >= 2 && target < s.ranks {
            out.push(reduce_ranks(s, target));
        }
    }
    // Segments: collapse to one (drops link-level events).
    if s.segments > 1 {
        let mut c = s.clone();
        c.segments = 1;
        c.faults.retain(|e| {
            !matches!(
                e,
                FaultEvent::LinkOutage { .. } | FaultEvent::LinkDegraded { .. }
            )
        });
        out.push(c);
    }
    // Scene: halve each dimension toward its floor.
    if 6.max(s.lines / 2) < s.lines {
        let mut c = s.clone();
        c.lines = 6.max(s.lines / 2);
        out.push(c);
    }
    if 4.max(s.samples / 2) < s.samples {
        let mut c = s.clone();
        c.samples = 4.max(s.samples / 2);
        out.push(c);
    }
    if 8.max(s.bands / 2) < s.bands {
        let mut c = s.clone();
        c.bands = 8.max(s.bands / 2);
        out.push(c);
    }
    // Workload knobs.
    if s.num_targets > 2 {
        let mut c = s.clone();
        c.num_targets -= 1;
        out.push(c);
    }
    if s.chunk_lines > 1 {
        let mut c = s.clone();
        c.chunk_lines = 1.max(s.chunk_lines / 2);
        out.push(c);
    }
    // Configuration simplifications.
    if s.collective != simnet::CollAlgorithm::Linear {
        let mut c = s.clone();
        c.collective = simnet::CollAlgorithm::Linear;
        out.push(c);
    }
    if s.offload != hetero_hsi::OffloadPolicy::Never {
        let mut c = s.clone();
        c.offload = hetero_hsi::OffloadPolicy::Never;
        out.push(c);
    }
    if !s.gpu_ranks.is_empty() || !s.fpga_ranks.is_empty() {
        let mut c = s.clone();
        c.gpu_ranks.clear();
        c.fpga_ranks.clear();
        out.push(c);
    }
    out
}

/// Shrinks `s` to `ranks` processors, remapping fault targets into the
/// surviving coordinate ranges so the schedule stays structurally
/// valid: worker ranks fold into `1..ranks` (rank 0 stays untouchable),
/// duplicate crashes collapse, crash count is clamped so at least two
/// ranks survive, and segment indices fold into the clamped segment
/// count.
fn reduce_ranks(s: &Scenario, ranks: usize) -> Scenario {
    let mut c = s.clone();
    c.ranks = ranks;
    c.segments = s.segments.min(ranks).min(3);
    c.gpu_ranks.retain(|&r| r < ranks);
    c.fpga_ranks.retain(|&r| r < ranks);
    let fold_rank = |rank: usize| (rank - 1) % (ranks - 1) + 1;
    let fold_seg = |seg: usize| seg % c.segments;
    let mut crashed = vec![false; ranks];
    let mut crashes_left = ranks.saturating_sub(2);
    let mut faults = Vec::new();
    for event in &s.faults {
        match *event {
            FaultEvent::Crash { rank, at } => {
                let rank = fold_rank(rank);
                if !crashed[rank] && crashes_left > 0 {
                    crashed[rank] = true;
                    crashes_left -= 1;
                    faults.push(FaultEvent::Crash { rank, at });
                }
            }
            FaultEvent::Slowdown {
                rank,
                from,
                until,
                factor,
            } => faults.push(FaultEvent::Slowdown {
                rank: fold_rank(rank),
                from,
                until,
                factor,
            }),
            FaultEvent::LinkOutage {
                seg_a,
                seg_b,
                from,
                until,
            } => {
                let (seg_a, seg_b) = (fold_seg(seg_a), fold_seg(seg_b));
                if seg_a != seg_b {
                    faults.push(FaultEvent::LinkOutage {
                        seg_a,
                        seg_b,
                        from,
                        until,
                    });
                }
            }
            FaultEvent::LinkDegraded {
                seg_a,
                seg_b,
                from,
                until,
                factor,
            } => {
                let (seg_a, seg_b) = (fold_seg(seg_a), fold_seg(seg_b));
                if seg_a != seg_b {
                    faults.push(FaultEvent::LinkDegraded {
                        seg_a,
                        seg_b,
                        from,
                        until,
                        factor,
                    });
                }
            }
        }
    }
    c.faults = faults;
    c
}

/// Renders a minimized scenario as a self-contained Rust regression
/// test, ready to paste into a suite that depends on `chaos` (see
/// `docs/TESTING.md` for the workflow). Float literals use `{:?}`,
/// which round-trips `f64` bit-exactly.
pub fn reproducer(s: &Scenario, v: &Violation) -> String {
    let faults = s
        .faults
        .iter()
        .map(|e| format!("            FaultEvent::{e:?},\n"))
        .collect::<String>();
    format!(
        "/// Auto-generated by the chaos harness: minimal scenario violating\n\
         /// the `{name}` invariant.\n\
         ///\n\
         /// Evidence at generation time: {detail}\n\
         #[test]\n\
         fn chaos_repro_seed_{seed}() {{\n\
         {i}use chaos::{{Algo, Driver, Oracle, Scenario}};\n\
         {i}use hetero_hsi::OffloadPolicy;\n\
         {i}use simnet::CollAlgorithm;\n\
         {i}use testutil::gen::FaultEvent;\n\
         \n\
         {i}let scenario = Scenario {{\n\
         {i}    seed: {seed},\n\
         {i}    ranks: {ranks},\n\
         {i}    segments: {segments},\n\
         {i}    gpu_ranks: vec!{gpu:?},\n\
         {i}    fpga_ranks: vec!{fpga:?},\n\
         {i}    algo: Algo::{algo:?},\n\
         {i}    driver: Driver::{driver:?},\n\
         {i}    collective: CollAlgorithm::{coll:?},\n\
         {i}    offload: OffloadPolicy::{off:?},\n\
         {i}    lines: {lines},\n\
         {i}    samples: {samples},\n\
         {i}    bands: {bands},\n\
         {i}    num_targets: {num_targets},\n\
         {i}    chunk_lines: {chunk_lines},\n\
         {i}    faults: vec![\n{faults}{i}    ],\n\
         {i}}};\n\
         {i}let verdict = Oracle::new().check(&scenario);\n\
         {i}assert!(verdict.violation.is_none(), \"{{:?}}\", verdict.violation);\n\
         }}\n",
        name = v.invariant.name(),
        detail = v.detail.replace('\n', " "),
        i = "    ",
        seed = s.seed,
        ranks = s.ranks,
        segments = s.segments,
        gpu = s.gpu_ranks,
        fpga = s.fpga_ranks,
        algo = s.algo,
        driver = s.driver,
        coll = s.collective,
        off = s.offload,
        lines = s.lines,
        samples = s.samples,
        bands = s.bands,
        num_targets = s.num_targets,
        chunk_lines = s.chunk_lines,
        faults = faults,
    )
}

/// Renders a minimized failure as a JSON object (one entry of the soak
/// report's `failures` array).
pub fn json_record(s: &Scenario, v: &Violation) -> String {
    let faults = s
        .faults
        .iter()
        .map(|e| format!("\"{}\"", escape(&format!("{e:?}"))))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"invariant\": \"{}\", \"detail\": \"{}\", \"seed\": {}, \
         \"ranks\": {}, \"segments\": {}, \"algo\": \"{:?}\", \
         \"driver\": \"{:?}\", \"collective\": \"{:?}\", \
         \"offload\": \"{:?}\", \"scene\": [{}, {}, {}], \
         \"num_targets\": {}, \"chunk_lines\": {}, \
         \"gpu_ranks\": {:?}, \"fpga_ranks\": {:?}, \"faults\": [{}]}}",
        v.invariant.name(),
        escape(&v.detail),
        s.seed,
        s.ranks,
        s.segments,
        s.algo,
        s.driver,
        s.collective,
        s.offload,
        s.lines,
        s.samples,
        s.bands,
        s.num_targets,
        s.chunk_lines,
        s.gpu_ranks,
        s.fpga_ranks,
        faults
    )
}

fn escape(raw: &str) -> String {
    raw.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{Injection, Invariant, Oracle};
    use crate::scenario::{Algo, Driver};

    /// The harness self-test: inject a break that fires on any crash,
    /// hand the shrinker a deliberately bloated scenario, and assert
    /// it converges to the minimal reproducer — at most three ranks
    /// and a single fault event (ranks cannot reach two: a two-rank
    /// scenario admits no crash, so the injected break vanishes).
    #[test]
    fn shrinker_converges_to_minimal_crash_scenario() {
        let oracle = Oracle::with_injection(Injection::FailOnCrash);
        let mut bloated = Scenario::generate(3);
        bloated.ranks = 8;
        bloated.segments = 3;
        bloated.algo = Algo::Atdca;
        bloated.driver = Driver::SelfSched;
        bloated.gpu_ranks = vec![2, 5];
        bloated.fpga_ranks = vec![7];
        bloated.faults = vec![
            FaultEvent::Slowdown {
                rank: 3,
                from: 0.0,
                until: 0.2,
                factor: 2.5,
            },
            FaultEvent::Crash { rank: 5, at: 0.05 },
            FaultEvent::LinkOutage {
                seg_a: 0,
                seg_b: 2,
                from: 0.01,
                until: 0.04,
            },
        ];
        let violation = oracle
            .check(&bloated)
            .violation
            .expect("injected oracle must reject a crash scenario");
        let shrunk = shrink(&oracle, &bloated, &violation);
        assert!(shrunk.steps > 0, "shrinker made no progress");
        assert!(
            shrunk.scenario.ranks <= 3,
            "ranks not minimized: {}",
            shrunk.scenario.ranks
        );
        assert!(
            shrunk.scenario.faults.len() <= 1,
            "faults not minimized: {:?}",
            shrunk.scenario.faults
        );
        assert!(
            shrunk.scenario.faults.iter().all(FaultEvent::is_crash),
            "the surviving fault must be the crash the break keys on"
        );
        assert_eq!(shrunk.violation.invariant, Invariant::OutputIdentity);
        assert!(
            shrunk.scenario.gpu_ranks.is_empty() && shrunk.scenario.fpga_ranks.is_empty(),
            "devices not detached"
        );
        // The fixpoint really is a fixpoint: every candidate edit
        // loses the violation.
        for candidate in candidates(&shrunk.scenario) {
            let verdict = oracle.check(&candidate);
            assert!(
                verdict
                    .violation
                    .map(|v| v.invariant != shrunk.violation.invariant)
                    .unwrap_or(true),
                "fixpoint has a smaller failing neighbour"
            );
        }
    }

    #[test]
    fn reduce_ranks_keeps_schedules_structurally_valid() {
        let mut s = Scenario::generate(11);
        s.ranks = 8;
        s.segments = 3;
        s.faults = vec![
            FaultEvent::Crash { rank: 7, at: 0.1 },
            FaultEvent::Crash { rank: 6, at: 0.2 },
            FaultEvent::Slowdown {
                rank: 5,
                from: 0.0,
                until: 0.1,
                factor: 3.0,
            },
            FaultEvent::LinkDegraded {
                seg_a: 1,
                seg_b: 2,
                from: 0.0,
                until: 0.1,
                factor: 2.0,
            },
        ];
        let reduced = reduce_ranks(&s, 3);
        assert_eq!(reduced.ranks, 3);
        assert!(reduced.segments <= 3);
        let mut crashes = 0;
        for event in &reduced.faults {
            match *event {
                FaultEvent::Crash { rank, .. } => {
                    assert!((1..3).contains(&rank));
                    crashes += 1;
                }
                FaultEvent::Slowdown { rank, .. } => assert!((1..3).contains(&rank)),
                FaultEvent::LinkOutage { seg_a, seg_b, .. }
                | FaultEvent::LinkDegraded { seg_a, seg_b, .. } => {
                    assert!(seg_a < reduced.segments && seg_b < reduced.segments);
                    assert_ne!(seg_a, seg_b);
                }
            }
        }
        assert!(crashes <= 1, "two survivors minimum at three ranks");
        // The reduced scenario builds a platform and plan cleanly.
        assert_eq!(reduced.platform().num_procs(), 3);
        let _ = reduced.fault_plan();
    }

    #[test]
    fn reproducer_is_a_self_contained_test_function() {
        let s = Scenario::generate(42);
        let v = Violation {
            invariant: Invariant::PredictExact,
            detail: "predicted 0.5 vs measured 0.25".into(),
        };
        let code = reproducer(&s, &v);
        assert!(code.contains("#[test]"));
        assert!(code.contains("fn chaos_repro_seed_42()"));
        assert!(code.contains("Oracle::new().check(&scenario)"));
        assert!(code.contains("predict-exact"));
        let json = json_record(&s, &v);
        assert!(json.contains("\"invariant\": \"predict-exact\""));
        assert!(json.contains("\"seed\": 42"));
    }
}
