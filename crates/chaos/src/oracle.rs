//! The oracle: seven standing invariants of the stack, checked against
//! one scenario with a handful of deterministic engine runs.
//!
//! The invariants form a hierarchy (see `docs/TESTING.md`): bit-exact
//! output identity first, structural degradation contracts under
//! faults, analytic replay (`predict_* == measured`), and finally the
//! profiler's identity/pure-observer gates. Each performed comparison
//! bumps a per-invariant counter so a soak can prove every invariant
//! was actually exercised (a green run with zero checks is a bug in
//! the harness, not a pass).

use crate::scenario::{Algo, Driver, Scenario};
use hetero_hsi::ft::{self, FtError, FtRun};
use hetero_hsi::sched::{AtdcaChunks, MorphChunks, PctChunks, UfclsChunks};
use hetero_hsi::{seq, ChunkedAlgo, OutputDigest};
use simnet::accel::cost::predict_offload;
use simnet::engine::{Engine, WireVec};
use simnet::{coll, CollOp, CollectiveConfig, DeviceSim, DeviceSpec};
use testutil::gen::FaultEvent;

/// The seven standing invariants, in oracle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Outputs are bit-identical across reruns, and — for
    /// grid-invariant algorithms — to the sequential reference.
    OutputIdentity,
    /// Under faults the survivors' output equals the fault-free output
    /// (every lost contribution was recovered), and recoveries name
    /// only ranks that actually crashed.
    SurvivorCompleteness,
    /// Analytic replay: `coll::predict` matches the measured virtual
    /// time of an isolated collective, and `accel::cost::predict_offload`
    /// matches `DeviceSim::launch` bit-exactly.
    PredictExact,
    /// Profiler accounting: every rank's phase fold equals its
    /// wall-clock bitwise, and the critical path is bounded.
    ProfileFold,
    /// Profiling is a pure observer: stripping the profile from a
    /// profiled report yields the unprofiled report, bit for bit.
    PureObserver,
    /// `CopyStats` is identical across reruns and under profiling.
    CopyDeterminism,
    /// `OffloadStats` (and the whole report) is identical across
    /// reruns.
    OffloadDeterminism,
}

impl Invariant {
    /// All seven, in oracle order.
    pub const ALL: [Invariant; 7] = [
        Invariant::OutputIdentity,
        Invariant::SurvivorCompleteness,
        Invariant::PredictExact,
        Invariant::ProfileFold,
        Invariant::PureObserver,
        Invariant::CopyDeterminism,
        Invariant::OffloadDeterminism,
    ];

    /// Stable kebab-case name (JSON keys, report fields).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::OutputIdentity => "output-identity",
            Invariant::SurvivorCompleteness => "survivor-completeness",
            Invariant::PredictExact => "predict-exact",
            Invariant::ProfileFold => "profile-fold",
            Invariant::PureObserver => "pure-observer",
            Invariant::CopyDeterminism => "copy-determinism",
            Invariant::OffloadDeterminism => "offload-determinism",
        }
    }

    fn index(self) -> usize {
        Invariant::ALL.iter().position(|&i| i == self).unwrap_or(0)
    }
}

/// How many comparisons each invariant performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounts {
    counts: [u64; 7],
}

impl CheckCounts {
    fn bump(&mut self, invariant: Invariant) {
        self.counts[invariant.index()] += 1;
    }

    /// Comparisons performed for `invariant`.
    pub fn of(&self, invariant: Invariant) -> u64 {
        self.counts[invariant.index()]
    }

    /// Accumulates another scenario's counts into this one.
    pub fn merge(&mut self, other: &CheckCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// Total comparisons across all invariants.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Human-readable evidence (the two sides that differed).
    pub detail: String,
}

/// The oracle's verdict on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Comparisons performed, per invariant.
    pub counts: CheckCounts,
    /// The first violation hit, if any (the oracle stops at the first).
    pub violation: Option<Violation>,
    /// `true` when the ft driver rejected the scenario structurally
    /// (no checks ran). Generation never produces such scenarios; the
    /// flag exists so shrinker candidates that drift out of the valid
    /// envelope read as "violation gone", never as a pass.
    pub skipped: bool,
}

/// Deliberate invariant breaks for harness self-tests: the oracle must
/// be able to fail, and the shrinker must converge on the break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Report an [`Invariant::OutputIdentity`] violation on every
    /// scenario that schedules a crash (and run no real checks). The
    /// minimal reproducer is therefore "smallest scenario with one
    /// crash" — three ranks, one fault — which the shrinker self-test
    /// asserts.
    FailOnCrash,
}

/// The seven-invariant checker.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    injection: Option<Injection>,
}

/// Early-return helper: bump the counter, then either pass or return
/// the verdict carrying the violation.
macro_rules! ensure {
    ($counts:ident, $inv:expr, $cond:expr, $($msg:tt)*) => {
        $counts.bump($inv);
        let holds: bool = $cond;
        if !holds {
            return Verdict {
                counts: $counts,
                violation: Some(Violation {
                    invariant: $inv,
                    detail: format!($($msg)*),
                }),
                skipped: false,
            };
        }
    };
}

impl Oracle {
    /// An oracle running the real checks.
    pub fn new() -> Oracle {
        Oracle { injection: None }
    }

    /// An oracle with a deliberate break wired in (self-tests only).
    pub fn with_injection(injection: Injection) -> Oracle {
        Oracle {
            injection: Some(injection),
        }
    }

    /// Checks every invariant against `scenario`, stopping at the
    /// first violation.
    pub fn check(&self, scenario: &Scenario) -> Verdict {
        if let Some(Injection::FailOnCrash) = self.injection {
            let mut counts = CheckCounts::default();
            counts.bump(Invariant::OutputIdentity);
            let violation = scenario.has_crash().then(|| Violation {
                invariant: Invariant::OutputIdentity,
                detail: "injected break: scenario schedules a crash (self-test)".into(),
            });
            return Verdict {
                counts,
                violation,
                skipped: false,
            };
        }
        let scene = scenario.scene();
        let params = scenario.params();
        match scenario.algo {
            Algo::Atdca => {
                let reference = seq::atdca(&scene.cube, &params).result.digest64();
                self.run_checks(
                    scenario,
                    &AtdcaChunks::new(&scene.cube, &params),
                    Some(reference),
                )
            }
            Algo::Ufcls => {
                let reference = seq::ufcls(&scene.cube, &params).result.digest64();
                self.run_checks(
                    scenario,
                    &UfclsChunks::new(&scene.cube, &params),
                    Some(reference),
                )
            }
            // PCT/MORPH outputs depend on the chunk grid, so the
            // sequential whole-image result is not the reference;
            // rerun identity and fault-free identity still apply.
            Algo::Pct => self.run_checks(scenario, &PctChunks::new(&scene.cube, &params), None),
            Algo::Morph => self.run_checks(scenario, &MorphChunks::new(&scene.cube, &params), None),
        }
    }

    fn run_checks<A>(&self, s: &Scenario, algo: &A, seq_digest: Option<u64>) -> Verdict
    where
        A: ChunkedAlgo + Sync,
        A::Output: OutputDigest + Send,
    {
        let mut counts = CheckCounts::default();
        let platform = s.platform();
        let plan = s.fault_plan();
        let opts = s.ft_options();
        let drive = |engine: &Engine| -> Result<FtRun<A::Output>, FtError> {
            match s.driver {
                Driver::Replan => ft::try_run_replan(engine, algo, &opts),
                Driver::SelfSched => ft::try_run_self_sched(engine, algo, &opts),
            }
        };
        let skip = |counts: CheckCounts| Verdict {
            counts,
            violation: None,
            skipped: true,
        };

        // Two profiled runs off the same engine (rerun determinism)
        // and one unprofiled run (pure-observer reference).
        let profiled = Engine::new(platform.clone())
            .with_faults(plan.clone())
            .with_profiling(true);
        let Ok(a) = drive(&profiled) else {
            return skip(counts);
        };
        let Ok(b) = drive(&profiled) else {
            return skip(counts);
        };
        let plain = Engine::new(platform.clone()).with_faults(plan);
        let Ok(c) = drive(&plain) else {
            return skip(counts);
        };

        // 1. Output identity: reruns, then the sequential reference.
        let digest_a = a.output.digest64();
        ensure!(
            counts,
            Invariant::OutputIdentity,
            digest_a == b.output.digest64(),
            "rerun digest diverged: {digest_a:#018x} vs {:#018x}",
            b.output.digest64()
        );
        if let Some(reference) = seq_digest {
            ensure!(
                counts,
                Invariant::OutputIdentity,
                digest_a == reference,
                "parallel output {digest_a:#018x} != sequential reference {reference:#018x}"
            );
        }

        // 2. Survivor completeness: with any faults scheduled, the
        // output must equal the fault-free output, and recoveries may
        // only name ranks that actually crashed.
        if !s.faults.is_empty() {
            let faultfree = Engine::new(platform.clone());
            let Ok(reference) = drive(&faultfree) else {
                return skip(counts);
            };
            ensure!(
                counts,
                Invariant::SurvivorCompleteness,
                digest_a == reference.output.digest64(),
                "faulted output {digest_a:#018x} != fault-free output {:#018x}",
                reference.output.digest64()
            );
            let crashed: Vec<usize> = s
                .faults
                .iter()
                .filter_map(|e| match *e {
                    FaultEvent::Crash { rank, .. } => Some(rank),
                    _ => None,
                })
                .collect();
            ensure!(
                counts,
                Invariant::SurvivorCompleteness,
                a.recoveries.iter().all(|r| crashed.contains(&r.rank)),
                "recovery names a rank that never crashed: {:?} (crashed: {crashed:?})",
                a.recoveries
            );
        }

        // 3. Analytic replay: an isolated allreduce on this platform
        // must measure exactly what `coll::predict` replays (the
        // scenario's collective is concrete by construction), and the
        // device cost model must match the device simulator bitwise.
        let cfg = CollectiveConfig {
            allreduce: s.collective,
            ..CollectiveConfig::linear()
        };
        let bits = (64 * 32) as u64;
        let probe = Engine::new(platform.clone()).run(|ctx| {
            let own = vec![ctx.rank() as u32; 64];
            coll::allreduce(
                ctx,
                &cfg,
                0,
                WireVec(own),
                |x, y| {
                    WireVec(
                        x.0.iter()
                            .zip(&y.0)
                            .map(|(p, q)| p.wrapping_add(*q))
                            .collect(),
                    )
                },
                bits,
            )
            .0
            .len()
        });
        let predicted = coll::predict(
            &platform,
            platform.msg_latency_s(),
            CollOp::Allreduce,
            s.collective,
            0,
            bits,
            cfg.pipeline_chunks,
        );
        ensure!(
            counts,
            Invariant::PredictExact,
            (predicted - probe.total_time).abs() < 1e-9,
            "coll::predict({:?}) = {predicted} vs measured {} on {} ranks",
            s.collective,
            probe.total_time,
            s.ranks
        );
        let specs: Vec<DeviceSpec> = s
            .gpu_ranks
            .iter()
            .map(|_| DeviceSpec::commodity_gpu())
            .chain(s.fpga_ranks.iter().map(|_| DeviceSpec::edge_fpga()))
            .collect();
        for spec in specs {
            let analytic = predict_offload(&spec, 12.5, 4096, 1024);
            let simulated = DeviceSim::new(spec).launch(12.5, 4096, 1024);
            ensure!(
                counts,
                Invariant::PredictExact,
                analytic.to_bits() == simulated.to_bits(),
                "predict_offload {analytic:e} != DeviceSim::launch {simulated:e} on {}",
                spec.kind.label()
            );
        }

        // 4. Profile accounting identity and critical-path bounds.
        counts.bump(Invariant::ProfileFold);
        match &a.report.profile {
            None => {
                return Verdict {
                    counts,
                    violation: Some(Violation {
                        invariant: Invariant::ProfileFold,
                        detail: "profiled run carries no profile".into(),
                    }),
                    skipped: false,
                }
            }
            Some(profile) => {
                if let Some(rank) = profile.ranks.iter().find(|r| !r.identity_holds()) {
                    return Verdict {
                        counts,
                        violation: Some(Violation {
                            invariant: Invariant::ProfileFold,
                            detail: format!(
                                "rank {}: accounted {:e} != wall {:e} (bitwise)",
                                rank.rank,
                                rank.phases.accounted(),
                                rank.wall
                            ),
                        }),
                        skipped: false,
                    };
                }
                ensure!(
                    counts,
                    Invariant::ProfileFold,
                    profile.path_bounded(),
                    "critical path out of bounds: length {:e}, slack {:e}, makespan {:e}",
                    profile.critical_path.length,
                    profile.critical_path.slack,
                    profile.makespan
                );
            }
        }

        // 5. Pure observer: profile stripped, the profiled report must
        // equal the unprofiled one — timing, ledgers, epochs, offloads
        // and output alike.
        let mut stripped = a.report.clone();
        stripped.profile = None;
        ensure!(
            counts,
            Invariant::PureObserver,
            stripped == c.report,
            "profiling perturbed the run: profiled(total {:e}) vs plain(total {:e})",
            a.report.total_time,
            c.report.total_time
        );
        ensure!(
            counts,
            Invariant::PureObserver,
            digest_a == c.output.digest64(),
            "profiling changed the output digest: {digest_a:#018x} vs {:#018x}",
            c.output.digest64()
        );

        // 6. Copy accounting is deterministic (and profiling-blind).
        ensure!(
            counts,
            Invariant::CopyDeterminism,
            a.report.copies == b.report.copies && a.report.copies == c.report.copies,
            "CopyStats diverged: {:?} / {:?} / {:?}",
            a.report.copies,
            b.report.copies,
            c.report.copies
        );

        // 7. Offload accounting — and the whole rerun report — is
        // deterministic.
        ensure!(
            counts,
            Invariant::OffloadDeterminism,
            a.report.offloads == b.report.offloads,
            "OffloadStats diverged across reruns: {:?} vs {:?}",
            a.report.offloads,
            b.report.offloads
        );
        ensure!(
            counts,
            Invariant::OffloadDeterminism,
            a.report == b.report && a.recoveries == b.recoveries,
            "rerun report diverged (total {:e} vs {:e}, {} vs {} recoveries)",
            a.report.total_time,
            b.report.total_time,
            a.recoveries.len(),
            b.recoveries.len()
        );

        Verdict {
            counts,
            violation: None,
            skipped: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_counts_track_and_merge() {
        let mut a = CheckCounts::default();
        a.bump(Invariant::OutputIdentity);
        a.bump(Invariant::OutputIdentity);
        a.bump(Invariant::PredictExact);
        assert_eq!(a.of(Invariant::OutputIdentity), 2);
        assert_eq!(a.of(Invariant::PredictExact), 1);
        assert_eq!(a.total(), 3);
        let mut b = CheckCounts::default();
        b.bump(Invariant::ProfileFold);
        b.merge(&a);
        assert_eq!(b.total(), 4);
        assert_eq!(b.of(Invariant::ProfileFold), 1);
    }

    #[test]
    fn injection_fires_exactly_on_crash_scenarios() {
        let oracle = Oracle::with_injection(Injection::FailOnCrash);
        let mut with_crash = Scenario::generate(0);
        with_crash.faults = vec![FaultEvent::Crash { rank: 1, at: 0.01 }];
        with_crash.ranks = 4;
        let verdict = oracle.check(&with_crash);
        assert_eq!(
            verdict.violation.as_ref().map(|v| v.invariant),
            Some(Invariant::OutputIdentity)
        );
        let mut clean = with_crash.clone();
        clean.faults.clear();
        assert!(oracle.check(&clean).violation.is_none());
    }

    /// A deterministic mini-campaign: every scenario passes all seven
    /// invariants, and each invariant is exercised at least once.
    #[test]
    fn mini_campaign_is_green_and_exercises_every_invariant() {
        let oracle = Oracle::new();
        let mut totals = CheckCounts::default();
        for seed in 0..24u64 {
            let scenario = Scenario::generate(seed);
            let verdict = oracle.check(&scenario);
            assert!(!verdict.skipped, "seed {seed}: structurally rejected");
            assert!(
                verdict.violation.is_none(),
                "seed {seed}: {:?}\nscenario: {scenario:?}",
                verdict.violation
            );
            totals.merge(&verdict.counts);
        }
        for invariant in Invariant::ALL {
            assert!(
                totals.of(invariant) > 0,
                "invariant {} never exercised in the mini-campaign",
                invariant.name()
            );
        }
    }
}
