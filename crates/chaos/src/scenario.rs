//! Scenario generation: one seed → one complete randomized experiment.
//!
//! A [`Scenario`] bundles everything a whole-stack run needs — platform
//! shape, attached accelerators, workload, chunking, fault schedule,
//! collective backend, offload policy and fault-tolerant driver — as
//! *plain data*. Every field is an editable scalar or list so the
//! shrinker ([`crate::shrink`]) can mutate one dimension at a time and
//! the reproducer emitter can print the scenario back as a Rust
//! literal. Generation is a pure function of the seed: the same `u64`
//! yields the same scenario on any host.

use hetero_hsi::config::AlgoParams;
use hetero_hsi::ft::FtOptions;
use hetero_hsi::OffloadPolicy;
use hsi_cube::synth::{wtc_scene, SyntheticScene, WtcConfig};
use simnet::{presets, CollAlgorithm, CollectiveConfig, DeviceSpec, FaultPlan, Platform};
use testutil::gen::{plan_of, random_events, FaultEvent, SplitMix64};

/// The four chunked algorithms of the paper, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Hetero-ATDCA target detection (grid-invariant output).
    Atdca,
    /// Hetero-UFCLS target generation (grid-invariant output).
    Ufcls,
    /// Hetero-PCT classification (output depends on the chunk grid).
    Pct,
    /// Hetero-MORPH classification (output depends on the chunk grid).
    Morph,
}

/// The two fault-tolerant master/worker drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Static WEA partition with re-planning on worker loss.
    Replan,
    /// Fixed-grid chunk self-scheduling with chunk re-queueing.
    SelfSched,
}

/// One complete randomized experiment, as editable plain data.
///
/// Invariants maintained by [`Scenario::generate`] and preserved by
/// the shrinker:
///
/// * `ranks ≥ 2`, `1 ≤ segments ≤ min(ranks, 3)`;
/// * fault events only reference live coordinates (worker ranks
///   `1..ranks`, segments `0..segments`), rank 0 never crashes, and at
///   least two ranks survive every crash schedule;
/// * [`Algo::Pct`] / [`Algo::Morph`] always run under
///   [`Driver::SelfSched`] — their outputs are chunk-grid-deterministic
///   but not partition-invariant, so only the fixed grid supports the
///   output-identity oracle;
/// * `collective` is a concrete schedule (`Linear`, `BinomialTree` or
///   `SegmentHierarchical`) so the analytic replay oracle applies.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Generation seed (also salts the platform draw).
    pub seed: u64,
    /// Number of simulated processors.
    pub ranks: usize,
    /// Number of network segments.
    pub segments: usize,
    /// Ranks carrying a commodity-GPU accelerator.
    pub gpu_ranks: Vec<usize>,
    /// Ranks carrying an edge-FPGA accelerator.
    pub fpga_ranks: Vec<usize>,
    /// Algorithm under test.
    pub algo: Algo,
    /// Fault-tolerant driver.
    pub driver: Driver,
    /// Collective backend for the driver's state distribution and the
    /// analytic-replay probe.
    pub collective: CollAlgorithm,
    /// Per-chunk offload policy.
    pub offload: OffloadPolicy,
    /// Scene lines.
    pub lines: usize,
    /// Scene samples per line.
    pub samples: usize,
    /// Scene spectral bands.
    pub bands: usize,
    /// ATDCA/UFCLS target count.
    pub num_targets: usize,
    /// Self-scheduling chunk height (lines).
    pub chunk_lines: usize,
    /// Fault schedule, as editable events.
    pub faults: Vec<FaultEvent>,
}

impl Scenario {
    /// Draws the scenario of `seed`. Pure: same seed, same scenario.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = SplitMix64::new(seed ^ 0x5eed_5eed_5eed_5eed);
        let ranks = rng.range(2, 9);
        let segments = rng.range(1, 1 + ranks.min(3));
        let algo = [Algo::Atdca, Algo::Ufcls, Algo::Pct, Algo::Morph][rng.range(0, 4)];
        // PCT/MORPH outputs are fixed-grid-deterministic but not
        // partition-invariant: re-planning changes the partition after
        // a crash, so only SelfSched keeps the identity oracle sound.
        let driver = match algo {
            Algo::Pct | Algo::Morph => Driver::SelfSched,
            _ if rng.chance(0.5) => Driver::Replan,
            _ => Driver::SelfSched,
        };
        let collective = [
            CollAlgorithm::Linear,
            CollAlgorithm::BinomialTree,
            CollAlgorithm::SegmentHierarchical,
        ][rng.range(0, 3)];
        let offload = testutil::POLICIES[rng.range(0, 3)];
        let mut gpu_ranks = Vec::new();
        let mut fpga_ranks = Vec::new();
        for rank in 0..ranks {
            if rng.chance(0.25) {
                if rng.chance(0.5) {
                    gpu_ranks.push(rank);
                } else {
                    fpga_ranks.push(rank);
                }
            }
        }
        let lines = rng.range(8, 21);
        let samples = rng.range(6, 13);
        let bands = rng.range(8, 21);
        let num_targets = rng.range(2, 5);
        let chunk_lines = rng.range(1, 7);
        let faults = random_events(&mut rng, ranks, segments, 3);
        Scenario {
            seed,
            ranks,
            segments,
            gpu_ranks,
            fpga_ranks,
            algo,
            driver,
            collective,
            offload,
            lines,
            samples,
            bands,
            num_targets,
            chunk_lines,
            faults,
        }
    }

    /// The scenario's platform: a random heterogeneous network derived
    /// from the stored scalars (so editing `ranks`/`segments` yields a
    /// valid nearby platform), with the listed accelerators attached.
    pub fn platform(&self) -> Platform {
        let mut platform = presets::random_heterogeneous(
            self.seed ^ 0x9e37_79b9_7f4a_7c15,
            self.ranks,
            self.segments,
            0.002,
            0.05,
        );
        for &rank in &self.gpu_ranks {
            platform = platform.with_device_at(rank, DeviceSpec::commodity_gpu());
        }
        for &rank in &self.fpga_ranks {
            platform = platform.with_device_at(rank, DeviceSpec::edge_fpga());
        }
        platform
    }

    /// The scenario's fault schedule as an engine-ready plan.
    pub fn fault_plan(&self) -> FaultPlan {
        plan_of(&self.faults)
    }

    /// The scenario's synthetic WTC scene.
    pub fn scene(&self) -> SyntheticScene {
        wtc_scene(WtcConfig {
            lines: self.lines,
            samples: self.samples,
            bands: self.bands,
            ..Default::default()
        })
    }

    /// Algorithm parameters (single morphological iteration keeps the
    /// per-scenario budget small; everything else defaults).
    pub fn params(&self) -> AlgoParams {
        AlgoParams {
            num_targets: self.num_targets,
            morph_iterations: 1,
            ..Default::default()
        }
    }

    /// Driver options for this scenario.
    pub fn ft_options(&self) -> FtOptions {
        FtOptions {
            chunk_lines: self.chunk_lines,
            collectives: CollectiveConfig::uniform(self.collective),
            offload: self.offload,
            ..FtOptions::default()
        }
    }

    /// `true` when at least one crash is scheduled.
    pub fn has_crash(&self) -> bool {
        self.faults.iter().any(FaultEvent::is_crash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50u64 {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
        assert_ne!(Scenario::generate(1), Scenario::generate(2));
    }

    #[test]
    fn generated_scenarios_are_structurally_valid() {
        for seed in 0..300u64 {
            let s = Scenario::generate(seed);
            assert!((2..=8).contains(&s.ranks), "seed {seed}: ranks {}", s.ranks);
            assert!(
                (1..=s.ranks.min(3)).contains(&s.segments),
                "seed {seed}: segments {}",
                s.segments
            );
            if matches!(s.algo, Algo::Pct | Algo::Morph) {
                assert_eq!(
                    s.driver,
                    Driver::SelfSched,
                    "seed {seed}: grid-dependent algo"
                );
            }
            assert!(
                matches!(
                    s.collective,
                    CollAlgorithm::Linear
                        | CollAlgorithm::BinomialTree
                        | CollAlgorithm::SegmentHierarchical
                ),
                "seed {seed}: collective must be concrete"
            );
            for event in &s.faults {
                match *event {
                    FaultEvent::Crash { rank, .. } => {
                        assert!(rank >= 1 && rank < s.ranks, "seed {seed}")
                    }
                    FaultEvent::Slowdown { rank, .. } => {
                        assert!(rank >= 1 && rank < s.ranks, "seed {seed}")
                    }
                    FaultEvent::LinkOutage { seg_a, seg_b, .. }
                    | FaultEvent::LinkDegraded { seg_a, seg_b, .. } => {
                        assert!(seg_a < s.segments && seg_b < s.segments, "seed {seed}");
                        assert_ne!(seg_a, seg_b, "seed {seed}");
                    }
                }
            }
            // The platform and plan build without panicking.
            let platform = s.platform();
            assert_eq!(platform.num_procs(), s.ranks);
            let _ = s.fault_plan();
        }
    }

    #[test]
    fn platform_is_a_pure_function_of_the_scenario() {
        let s = Scenario::generate(7);
        assert_eq!(s.platform(), s.platform());
        let mut wider = s.clone();
        wider.gpu_ranks = vec![0];
        assert_ne!(s.platform(), wider.platform());
    }
}
