//! # chaos — deterministic whole-stack differential fuzzing
//!
//! A seed-driven scenario fuzzer, seven-invariant oracle and greedy
//! scenario shrinker over the full heterospec stack: `simnet` virtual
//! time + faults + profiling, the four chunked hyperspectral
//! algorithms, both fault-tolerant drivers, tree collectives and
//! accelerator offload — all in one randomized experiment per seed.
//!
//! * [`Scenario::generate`] draws a complete experiment from one `u64`
//!   (platform shape, attached devices, workload, chunking, fault
//!   schedule, collective backend, offload policy, ft driver) as plain
//!   editable data.
//! * [`Oracle::check`] verifies the seven standing invariants of the
//!   stack (bit-exact outputs, survivor completeness, analytic replay,
//!   profile accounting, pure-observer profiling, copy/offload
//!   determinism), counting every comparison it performs.
//! * [`shrink`] minimizes a violating scenario by greedy delta
//!   debugging, and [`reproducer`] / [`json_record`] render the result
//!   as a pasteable Rust regression test and a JSON report entry.
//!
//! Everything is deterministic: same seed, same scenario, same
//! verdict, same shrink — on any host. The time-budgeted campaign
//! driver lives in `crates/bench` (`chaos_soak`); the oracle hierarchy
//! and the reproducer-to-regression workflow are documented in
//! `docs/TESTING.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::redundant_clone))]

pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use oracle::{CheckCounts, Injection, Invariant, Oracle, Verdict, Violation};
pub use scenario::{Algo, Driver, Scenario};
pub use shrink::{json_record, reproducer, shrink, Shrunk};
