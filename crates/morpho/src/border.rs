//! Overlap-border arithmetic for partitioned morphological processing.
//!
//! Hetero-MORPH (Algorithm 5, step 1) partitions the image *with overlap
//! borders* so each worker can compute its interior MEI scores without
//! talking to neighbours — redundant computation traded for
//! communication, the design choice the paper calls out.
//!
//! How much overlap is enough? Each MEI iteration reads a
//! `radius(B)`-neighbourhood to build `D_B`, another `radius(B)` to take
//! the erosion/dilation extremum over `D_B`, and then dilates the cube —
//! so information travels at most `2·radius` lines per iteration toward a
//! pixel's score, and the final iteration's score depends on pixels up to
//! `2·radius·I_max` lines away. With that overlap, a worker's interior
//! scores are **bit-identical** to the sequential computation (verified
//! by the tests below and by the integration suite).

use crate::se::StructuringElement;

/// Number of halo lines a partition needs on each side so that its
/// interior MEI scores after `iterations` rounds with `se` match the
/// sequential result exactly.
pub fn required_overlap(se: &StructuringElement, iterations: usize) -> usize {
    2 * se.radius() * iterations
}

/// Number of redundant (overlap) pixels a partition of `part_lines` own
/// lines carries, given `samples` columns and the clamped halo actually
/// granted (`halo_top`, `halo_bottom`).
pub fn redundant_pixels(samples: usize, halo_top: usize, halo_bottom: usize) -> usize {
    samples * (halo_top + halo_bottom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mei::mei;
    use hsi_cube::synth::{wtc_scene, WtcConfig};
    use hsi_cube::HyperCube;

    #[test]
    fn overlap_formula() {
        let se = StructuringElement::square(1);
        assert_eq!(required_overlap(&se, 1), 2);
        assert_eq!(required_overlap(&se, 5), 10);
        let big = StructuringElement::square(2);
        assert_eq!(required_overlap(&big, 3), 12);
    }

    #[test]
    fn redundant_pixel_count() {
        assert_eq!(redundant_pixels(100, 2, 2), 400);
        assert_eq!(redundant_pixels(100, 0, 2), 200);
    }

    /// The core guarantee: computing MEI on an overlapped slice gives the
    /// same interior scores as computing on the full image.
    #[test]
    fn partition_with_required_overlap_matches_sequential() {
        let scene = wtc_scene(WtcConfig {
            lines: 30,
            samples: 12,
            bands: 16,
            ..Default::default()
        });
        let cube = &scene.cube;
        let se = StructuringElement::square(1);
        let iters = 2;
        let overlap = required_overlap(&se, iters);

        let full = mei(cube, &se, iters);

        // Partition: own lines 10..20 with the required halo.
        let first = 10usize;
        let n = 10usize;
        let (slice, pre) = cube.extract_lines_with_overlap(first, n, overlap);
        let part = mei(&slice, &se, iters);
        for l in 0..n {
            for s in 0..cube.samples() {
                let a = full.at(first + l, s);
                let b = part.at(pre + l, s);
                assert!((a - b).abs() < 1e-12, "mismatch at ({l},{s}): {a} vs {b}");
            }
        }
    }

    /// Without enough overlap the interior scores generally differ —
    /// demonstrating the bound is tight in practice.
    #[test]
    fn insufficient_overlap_differs() {
        let scene = wtc_scene(WtcConfig {
            lines: 30,
            samples: 12,
            bands: 16,
            ..Default::default()
        });
        let cube = &scene.cube;
        let se = StructuringElement::square(1);
        let iters = 2;

        let full = mei(cube, &se, iters);
        let (slice, pre) = cube.extract_lines_with_overlap(10, 10, 0);
        let part = mei(&slice, &se, iters);
        let mut differs = false;
        for l in 0..10 {
            for s in 0..cube.samples() {
                if (full.at(10 + l, s) - part.at(pre + l, s)).abs() > 1e-12 {
                    differs = true;
                }
            }
        }
        assert!(differs, "zero overlap should corrupt border scores");
    }

    #[test]
    fn single_line_image_is_stable() {
        // Degenerate geometry must not panic.
        let c = HyperCube::from_vec(1, 6, 3, vec![0.2; 18]);
        let r = mei(&c, &StructuringElement::square(1), 2);
        assert_eq!(r.shape(), (1, 6));
    }
}
