//! # hsi-morpho — multichannel mathematical morphology for hyperspectral
//! imagery
//!
//! Implements the spatial/spectral operators behind the paper's
//! Hetero-MORPH classifier (Algorithm 5):
//!
//! * [`se`] — flat structuring elements `B` (square, cross, disk).
//! * [`cumdist`] — the cumulative SAD distance
//!   `D_B(F(x,y)) = Σ_{(i,j)∈B} SAD(F(x,y), F(i,j))` (paper eq. 2),
//!   which orders pixel *vectors* inside a spatial neighbourhood by how
//!   spectrally mixed they are.
//! * [`ops`] — multichannel erosion and dilation (paper eqs. 3–4):
//!   erosion selects the neighbourhood pixel minimising `D_B` (the most
//!   spectrally *pure* representative), dilation the one maximising it
//!   (the most highly *mixed*).
//! * [`mei`] — the morphological eccentricity index (paper eq. 5):
//!   `MEI(x,y) = SAD((F ⊖ B)(x,y), (F ⊕ B)(x,y))`, iterated `I_max`
//!   times with `F ← F ⊕ B` between iterations.
//! * [`border`] — overlap-border arithmetic for partitioned processing
//!   (how many halo lines a worker needs so its interior scores match
//!   the sequential result exactly).
//!
//! Border handling inside a cube is **edge replication** (coordinates
//! clamp to the image), the standard choice for flat SEs and the one
//! that makes partition overlap reasoning exact.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod border;
pub mod cumdist;
pub mod mei;
pub mod ops;
pub mod se;

pub use mei::MeiResult;
pub use se::StructuringElement;
