//! The cumulative SAD distance `D_B` (paper eq. 2).
//!
//! `D_B(F(x,y)) = Σ_{(i,j) ∈ Z²(B)} SAD(F(x,y), F(i,j))` sums a pixel's
//! spectral angle to every pixel in its `B`-neighbourhood. A spectrally
//! *pure* pixel surrounded by similar material has a small `D_B`; a mixed
//! pixel (straddling a material boundary) has a large one. Erosion and
//! dilation ([`crate::ops`]) order the neighbourhood by this scalar.
//!
//! Out-of-image coordinates clamp to the border (edge replication).

use crate::se::StructuringElement;
use hsi_cube::metrics::sad;
use hsi_cube::HyperCube;
use rayon::prelude::*;

/// Fixed line-chunk granularity of the parallel morphology kernels.
/// The grid depends only on the image height, never on the thread
/// count, and chunk results are concatenated in index order — so every
/// operation is bit-identical to its sequential scan.
pub(crate) const PAR_CHUNK_LINES: usize = 8;

/// Runs `per_line` over every line in fixed chunks (parallel across
/// chunks, sequential within), concatenating the per-line outputs in
/// line order.
pub(crate) fn par_lines_flat_map<T: Send>(
    lines: usize,
    per_line: impl Fn(usize, &mut Vec<T>) + Sync,
) -> Vec<T> {
    let chunks: Vec<Vec<T>> = (0..lines.div_ceil(PAR_CHUNK_LINES))
        .into_par_iter()
        .map(|c| {
            let lo = c * PAR_CHUNK_LINES;
            let hi = (lo + PAR_CHUNK_LINES).min(lines);
            let mut part = Vec::new();
            for line in lo..hi {
                per_line(line, &mut part);
            }
            part
        })
        .collect();
    chunks.into_iter().flatten().collect()
}

/// Clamps `(line, sample)` + offset to the image, returning valid
/// coordinates under edge replication.
#[inline]
pub fn clamped(
    cube: &HyperCube,
    line: usize,
    sample: usize,
    dl: isize,
    ds: isize,
) -> (usize, usize) {
    let l = (line as isize + dl).clamp(0, cube.lines() as isize - 1) as usize;
    let s = (sample as isize + ds).clamp(0, cube.samples() as isize - 1) as usize;
    (l, s)
}

/// `D_B` at one pixel.
pub fn cumdist_at(cube: &HyperCube, se: &StructuringElement, line: usize, sample: usize) -> f64 {
    let center = cube.pixel(line, sample);
    let mut sum = 0.0;
    for &(dl, ds) in se.offsets() {
        let (l, s) = clamped(cube, line, sample, dl, ds);
        sum += sad(center, cube.pixel(l, s));
    }
    sum
}

/// `D_B` for every pixel, as a row-major map.
///
/// This is the hot kernel of the MORPH family: `|B|` SAD evaluations per
/// pixel. Complexity `O(lines × samples × |B| × bands)`. Line chunks are
/// computed in parallel (each pixel's `D_B` is independent) and
/// concatenated in line order, so the map is bit-identical to a
/// sequential scan for any thread count.
pub fn cumdist_map(cube: &HyperCube, se: &StructuringElement) -> Vec<f64> {
    par_lines_flat_map(cube.lines(), |line, part| {
        for sample in 0..cube.samples() {
            part.push(cumdist_at(cube, se, line, sample));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4x4, 2 bands: left half points one way, right half another.
    fn split_cube() -> HyperCube {
        let mut c = HyperCube::zeros(4, 4, 2);
        for l in 0..4 {
            for s in 0..4 {
                let px = c.pixel_mut(l, s);
                if s < 2 {
                    px[0] = 1.0;
                    px[1] = 0.0;
                } else {
                    px[0] = 0.0;
                    px[1] = 1.0;
                }
            }
        }
        c
    }

    #[test]
    fn constant_cube_has_zero_cumdist() {
        let c = HyperCube::from_vec(3, 3, 2, vec![0.5; 18]);
        let se = StructuringElement::square(1);
        let map = cumdist_map(&c, &se);
        assert!(map.iter().all(|&v| v < 1e-6));
    }

    #[test]
    fn boundary_pixels_score_higher() {
        let c = split_cube();
        let se = StructuringElement::square(1);
        let map = cumdist_map(&c, &se);
        let at = |l: usize, s: usize| map[l * 4 + s];
        // Column 1 touches the boundary; column 0 is interior-left.
        assert!(at(1, 1) > at(1, 0));
        // Symmetric on the right side.
        assert!(at(1, 2) > at(1, 3));
    }

    #[test]
    fn clamping_replicates_edges() {
        let c = split_cube();
        assert_eq!(clamped(&c, 0, 0, -1, -1), (0, 0));
        assert_eq!(clamped(&c, 3, 3, 2, 2), (3, 3));
        assert_eq!(clamped(&c, 1, 1, 1, 0), (2, 1));
    }

    #[test]
    fn cumdist_at_matches_manual_sum() {
        let c = split_cube();
        let se = StructuringElement::cross(1);
        // Pixel (1,1): neighbours (0,1),(2,1),(1,0) same class (SAD 0),
        // (1,2) orthogonal (SAD π/2), self 0.
        let d = cumdist_at(&c, &se, 1, 1);
        assert!((d - std::f64::consts::FRAC_PI_2).abs() < 1e-9, "{d}");
    }

    #[test]
    fn map_has_one_entry_per_pixel() {
        let c = split_cube();
        let se = StructuringElement::square(1);
        assert_eq!(cumdist_map(&c, &se).len(), 16);
    }
}
