//! Flat structuring elements.
//!
//! A structuring element is the set of pixel offsets defining the spatial
//! neighbourhood `B` of the morphological operations. The paper uses a
//! square 3×3 element; disk and cross variants are provided for the
//! ablation benches.

/// A flat structuring element: a set of `(dline, dsample)` offsets that
/// always contains the origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuringElement {
    offsets: Vec<(isize, isize)>,
    radius: usize,
}

impl StructuringElement {
    /// Builds an SE from explicit offsets. The origin is added when
    /// missing; duplicates are removed; offsets are sorted so iteration
    /// order (and therefore argmin/argmax tie-breaking) is deterministic.
    pub fn from_offsets(mut offsets: Vec<(isize, isize)>) -> Self {
        if !offsets.contains(&(0, 0)) {
            offsets.push((0, 0));
        }
        offsets.sort_unstable();
        offsets.dedup();
        let radius = offsets
            .iter()
            .map(|&(dl, ds)| dl.unsigned_abs().max(ds.unsigned_abs()))
            .max()
            .unwrap_or(0);
        StructuringElement { offsets, radius }
    }

    /// Square `(2r+1) × (2r+1)` element (the paper's choice with `r = 1`).
    pub fn square(r: usize) -> Self {
        let r = r as isize;
        let mut offsets = Vec::with_capacity(((2 * r + 1) * (2 * r + 1)) as usize);
        for dl in -r..=r {
            for ds in -r..=r {
                offsets.push((dl, ds));
            }
        }
        Self::from_offsets(offsets)
    }

    /// Cross (4-connected plus origin) of arm length `r`.
    pub fn cross(r: usize) -> Self {
        let r = r as isize;
        let mut offsets = vec![(0, 0)];
        for d in 1..=r {
            offsets.extend_from_slice(&[(d, 0), (-d, 0), (0, d), (0, -d)]);
        }
        Self::from_offsets(offsets)
    }

    /// Euclidean disk of radius `r`.
    pub fn disk(r: usize) -> Self {
        let ri = r as isize;
        let mut offsets = Vec::new();
        for dl in -ri..=ri {
            for ds in -ri..=ri {
                if dl * dl + ds * ds <= ri * ri {
                    offsets.push((dl, ds));
                }
            }
        }
        Self::from_offsets(offsets)
    }

    /// The offsets, sorted, origin included.
    #[inline]
    pub fn offsets(&self) -> &[(isize, isize)] {
        &self.offsets
    }

    /// Number of offsets `|B|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// An SE is never empty (it always contains the origin).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Chebyshev radius: the largest |offset| in either axis. One MEI
    /// iteration can move information at most this many lines.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_sizes() {
        assert_eq!(StructuringElement::square(0).len(), 1);
        assert_eq!(StructuringElement::square(1).len(), 9);
        assert_eq!(StructuringElement::square(2).len(), 25);
        assert_eq!(StructuringElement::square(1).radius(), 1);
    }

    #[test]
    fn cross_sizes() {
        assert_eq!(StructuringElement::cross(1).len(), 5);
        assert_eq!(StructuringElement::cross(2).len(), 9);
        assert_eq!(StructuringElement::cross(2).radius(), 2);
    }

    #[test]
    fn disk_radius_one_is_cross() {
        assert_eq!(
            StructuringElement::disk(1).offsets(),
            StructuringElement::cross(1).offsets()
        );
    }

    #[test]
    fn origin_always_present() {
        let se = StructuringElement::from_offsets(vec![(1, 1)]);
        assert!(se.offsets().contains(&(0, 0)));
        assert_eq!(se.len(), 2);
    }

    #[test]
    fn duplicates_removed_and_sorted() {
        let se = StructuringElement::from_offsets(vec![(1, 0), (1, 0), (-1, 0), (0, 0)]);
        assert_eq!(se.offsets(), &[(-1, 0), (0, 0), (1, 0)]);
    }

    #[test]
    fn never_empty() {
        assert!(!StructuringElement::from_offsets(vec![]).is_empty());
    }
}
