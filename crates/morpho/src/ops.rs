//! Multichannel erosion and dilation (paper eqs. 3–4).
//!
//! Classical grayscale morphology ranks scalars; the multichannel
//! extension ranks pixel *vectors* by the cumulative SAD distance `D_B`:
//!
//! * erosion `(F ⊖ B)(x,y)` selects the neighbourhood pixel with the
//!   **minimum** `D_B` — the most spectrally pure representative,
//! * dilation `(F ⊕ B)(x,y)` selects the **maximum** — the most mixed.
//!
//! Both return, per output pixel, the *coordinates* of the selected input
//! pixel; [`apply_selection`] materialises the corresponding cube. Ties
//! break on the structuring element's sorted offset order, so results
//! are deterministic.
//!
//! The implementation precomputes the `D_B` map once (`O(n·|B|)` SADs)
//! and then ranks neighbourhoods by table lookup — the standard
//! factorisation; the cost model in `hetero-hsi` mirrors it.

use crate::cumdist::{clamped, cumdist_map, par_lines_flat_map};
use crate::se::StructuringElement;
use hsi_cube::HyperCube;

/// Which extremum of `D_B` an operation selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extremum {
    /// Erosion: minimise `D_B` (most pure neighbour).
    Min,
    /// Dilation: maximise `D_B` (most mixed neighbour).
    Max,
}

/// Per-pixel selected coordinates of a morphological operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// For each output pixel (row-major), the input coordinates chosen.
    pub coords: Vec<(usize, usize)>,
    lines: usize,
    samples: usize,
}

impl Selection {
    /// Selected input coordinates for output pixel `(line, sample)`.
    #[inline]
    pub fn at(&self, line: usize, sample: usize) -> (usize, usize) {
        self.coords[line * self.samples + sample]
    }

    /// Output dimensions `(lines, samples)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.lines, self.samples)
    }
}

/// Runs erosion or dilation given a precomputed `D_B` map (so callers
/// doing both per iteration — like MEI — pay for the map once).
///
/// Output pixels are independent, so line chunks run in parallel and
/// concatenate in line order: the selection (including the documented
/// sorted-offset tie-break, which is purely per-pixel) is bit-identical
/// to a sequential scan for any thread count.
pub fn select_with_map(
    cube: &HyperCube,
    se: &StructuringElement,
    dist: &[f64],
    which: Extremum,
) -> Selection {
    assert_eq!(dist.len(), cube.num_pixels(), "select: wrong map size");
    let samples = cube.samples();
    let coords = par_lines_flat_map(cube.lines(), |line, part| {
        for sample in 0..samples {
            let mut best: Option<((usize, usize), f64)> = None;
            for &(dl, ds) in se.offsets() {
                let (l, s) = clamped(cube, line, sample, dl, ds);
                let d = dist[l * samples + s];
                let better = match (which, &best) {
                    (_, None) => true,
                    (Extremum::Min, Some((_, bd))) => d < *bd,
                    (Extremum::Max, Some((_, bd))) => d > *bd,
                };
                if better {
                    best = Some(((l, s), d));
                }
            }
            part.push(best.expect("SE is never empty").0);
        }
    });
    Selection {
        coords,
        lines: cube.lines(),
        samples,
    }
}

/// Multichannel erosion `(F ⊖ B)`: selected coordinates per pixel.
pub fn erosion(cube: &HyperCube, se: &StructuringElement) -> Selection {
    let map = cumdist_map(cube, se);
    select_with_map(cube, se, &map, Extremum::Min)
}

/// Multichannel dilation `(F ⊕ B)`: selected coordinates per pixel.
pub fn dilation(cube: &HyperCube, se: &StructuringElement) -> Selection {
    let map = cumdist_map(cube, se);
    select_with_map(cube, se, &map, Extremum::Max)
}

/// Materialises the cube `G` with `G(x,y) = F(selection.at(x,y))`
/// (gather parallelised over line chunks; pure copies, so the output is
/// exactly the sequential one).
pub fn apply_selection(cube: &HyperCube, sel: &Selection) -> HyperCube {
    assert_eq!(sel.shape(), (cube.lines(), cube.samples()));
    let data = par_lines_flat_map(cube.lines(), |line, part: &mut Vec<f32>| {
        for sample in 0..cube.samples() {
            let (l, s) = sel.at(line, sample);
            part.extend_from_slice(cube.pixel(l, s));
        }
    });
    HyperCube::from_vec(cube.lines(), cube.samples(), cube.bands(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5x5, 2 bands: all pixels class A except a 1-pixel anomaly at (2,2).
    fn anomaly_cube() -> HyperCube {
        let mut c = HyperCube::zeros(5, 5, 2);
        for l in 0..5 {
            for s in 0..5 {
                let px = c.pixel_mut(l, s);
                px[0] = 1.0;
                px[1] = 0.1;
            }
        }
        let px = c.pixel_mut(2, 2);
        px[0] = 0.1;
        px[1] = 1.0;
        c
    }

    #[test]
    fn dilation_selects_the_anomaly() {
        // The anomaly has the largest D_B in every neighbourhood that
        // contains it: dilation must pick (2,2) for all its neighbours.
        let c = anomaly_cube();
        let se = StructuringElement::square(1);
        let dil = dilation(&c, &se);
        for l in 1..4 {
            for s in 1..4 {
                assert_eq!(dil.at(l, s), (2, 2), "at ({l},{s})");
            }
        }
    }

    #[test]
    fn erosion_avoids_the_anomaly() {
        let c = anomaly_cube();
        let se = StructuringElement::square(1);
        let ero = erosion(&c, &se);
        for l in 0..5 {
            for s in 0..5 {
                assert_ne!(ero.at(l, s), (2, 2), "erosion picked the anomaly");
            }
        }
    }

    #[test]
    fn constant_cube_selects_deterministically() {
        // All D_B equal: the first offset in sorted order wins, so the
        // result is reproducible.
        let c = HyperCube::from_vec(3, 3, 2, vec![0.5; 18]);
        let se = StructuringElement::square(1);
        let a = dilation(&c, &se);
        let b = dilation(&c, &se);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_selection_materialises_vectors() {
        let c = anomaly_cube();
        let se = StructuringElement::square(1);
        let dil = dilation(&c, &se);
        let g = apply_selection(&c, &dil);
        // The anomaly's spectrum has spread to its 3x3 neighbourhood.
        for l in 1..4 {
            for s in 1..4 {
                assert_eq!(g.pixel(l, s), c.pixel(2, 2));
            }
        }
    }

    #[test]
    fn erosion_dilation_identity_on_constant() {
        let c = HyperCube::from_vec(4, 4, 3, vec![0.25; 48]);
        let se = StructuringElement::cross(1);
        let e = apply_selection(&c, &erosion(&c, &se));
        let d = apply_selection(&c, &dilation(&c, &se));
        assert_eq!(e, c);
        assert_eq!(d, c);
    }

    #[test]
    fn selection_shape_reported() {
        let c = anomaly_cube();
        let sel = erosion(&c, &StructuringElement::square(1));
        assert_eq!(sel.shape(), (5, 5));
    }

    #[test]
    #[should_panic(expected = "wrong map size")]
    fn wrong_map_size_panics() {
        let c = anomaly_cube();
        let se = StructuringElement::square(1);
        select_with_map(&c, &se, &[0.0; 3], Extremum::Min);
    }
}
