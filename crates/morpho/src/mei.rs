//! The morphological eccentricity index (MEI, paper eq. 5 / Algorithm 5
//! step 2).
//!
//! Per iteration `j = 1..I_max`:
//!
//! 1. compute the `D_B` map of the current cube `F`,
//! 2. at every pixel, let `e = (F ⊖ B)(x,y)` and `d = (F ⊕ B)(x,y)` (the
//!    most pure and most mixed neighbourhood representatives) and update
//!    `MEI(x,y) ← max(MEI(x,y), SAD(F(e), F(d)))`,
//! 3. propagate: `F ← F ⊕ B`.
//!
//! Following Plaza et al.'s AMEE formulation (the algorithm this paper's
//! MORPH classifier builds on), the score is credited to the
//! **dilation-selected pixel** — the spectrally purest representative of
//! its neighbourhood — not to the window centre: that is what makes the
//! top-MEI pixels good class-endmember candidates rather than mixed
//! boundary pixels. The max-update accumulates eccentricity across
//! spatial scales (one dilation per iteration widens the effective
//! neighbourhood by the SE radius). Pixels in uniform neighbourhoods
//! keep `MEI ≈ 0`.

use crate::cumdist::cumdist_map;
use crate::ops::{apply_selection, select_with_map, Extremum};
use crate::se::StructuringElement;
use hsi_cube::metrics::sad;
use hsi_cube::HyperCube;

/// Result of an MEI computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MeiResult {
    /// Row-major MEI score per pixel.
    pub scores: Vec<f64>,
    lines: usize,
    samples: usize,
}

impl MeiResult {
    /// Score at `(line, sample)`.
    #[inline]
    pub fn at(&self, line: usize, sample: usize) -> f64 {
        self.scores[line * self.samples + sample]
    }

    /// Shape `(lines, samples)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.lines, self.samples)
    }

    /// The `k` pixels with the highest MEI scores, best first, with
    /// deterministic (row-major) tie-breaking. Returns fewer when the
    /// image has fewer pixels.
    pub fn top_k(&self, k: usize) -> Vec<(usize, usize, f64)> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.into_iter()
            .take(k)
            .map(|i| (i / self.samples, i % self.samples, self.scores[i]))
            .collect()
    }
}

/// Computes the MEI map with `iterations` erosion/dilation rounds of the
/// structuring element `se`.
///
/// ```
/// use hsi_cube::HyperCube;
/// use hsi_morpho::{mei::mei, StructuringElement};
/// // A uniform image has zero eccentricity everywhere.
/// let cube = HyperCube::from_vec(4, 4, 2, vec![0.5; 32]);
/// let result = mei(&cube, &StructuringElement::square(1), 2);
/// assert!(result.scores.iter().all(|&v| v < 1e-6));
/// ```
///
/// # Panics
/// Panics when `iterations == 0`.
pub fn mei(cube: &HyperCube, se: &StructuringElement, iterations: usize) -> MeiResult {
    assert!(iterations > 0, "mei: need at least one iteration");
    let (lines, samples) = (cube.lines(), cube.samples());
    let mut scores = vec![0.0f64; cube.num_pixels()];
    let mut current = cube.clone();

    for it in 0..iterations {
        let dist = cumdist_map(&current, se);
        let ero = select_with_map(&current, se, &dist, Extremum::Min);
        let dil = select_with_map(&current, se, &dist, Extremum::Max);
        for line in 0..lines {
            for sample in 0..samples {
                let (el, es) = ero.at(line, sample);
                let (dl, ds) = dil.at(line, sample);
                let v = sad(current.pixel(el, es), current.pixel(dl, ds));
                // Credit the score to the pure (dilation-selected) pixel.
                let slot = &mut scores[dl * samples + ds];
                if v > *slot {
                    *slot = v;
                }
            }
        }
        // Propagate for the next scale (skip the final, unused dilation).
        if it + 1 < iterations {
            current = apply_selection(&current, &dil);
        }
    }
    MeiResult {
        scores,
        lines,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 7x7, 2 bands, two homogeneous halves with a vertical boundary.
    fn two_region_cube() -> HyperCube {
        let mut c = HyperCube::zeros(7, 7, 2);
        for l in 0..7 {
            for s in 0..7 {
                let px = c.pixel_mut(l, s);
                if s < 4 {
                    px[0] = 1.0;
                    px[1] = 0.05;
                } else {
                    px[0] = 0.05;
                    px[1] = 1.0;
                }
            }
        }
        c
    }

    #[test]
    fn uniform_image_scores_zero() {
        let c = HyperCube::from_vec(5, 5, 3, vec![0.3; 75]);
        let r = mei(&c, &StructuringElement::square(1), 3);
        assert!(r.scores.iter().all(|&v| v < 1e-9));
    }

    #[test]
    fn boundary_pixels_score_high() {
        let c = two_region_cube();
        let r = mei(&c, &StructuringElement::square(1), 1);
        // Windows straddling the boundary credit their eccentricity to
        // the dilation-selected pure pixel: the column-3 pixels (last
        // pure-A column) receive SAD ≈ π/2 scores.
        assert!(r.at(3, 3) > 1.0, "boundary MEI too low: {}", r.at(3, 3));
        // Deep interior pixels see one class only.
        assert!(r.at(3, 0) < 1e-6, "interior MEI: {}", r.at(3, 0));
        assert!(r.at(3, 6) < 1e-6, "interior MEI: {}", r.at(3, 6));
    }

    #[test]
    fn more_iterations_extend_reach() {
        let c = two_region_cube();
        let one = mei(&c, &StructuringElement::square(1), 1);
        let three = mei(&c, &StructuringElement::square(1), 3);
        // Dilation shifts the boundary between iterations, so the pure
        // pixels of the *other* class (column 4) acquire scores only at
        // later scales.
        assert!(one.at(3, 4) < 1e-6, "got {}", one.at(3, 4));
        assert!(three.at(3, 4) > 1.0, "got {}", three.at(3, 4));
        // Scores never decrease with iterations (max-accumulated).
        for (a, b) in one.scores.iter().zip(&three.scores) {
            assert!(b + 1e-12 >= *a);
        }
    }

    #[test]
    fn top_k_orders_descending() {
        let c = two_region_cube();
        let r = mei(&c, &StructuringElement::square(1), 2);
        let top = r.top_k(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        // Best pixels hug the boundary columns 3-4.
        assert!(top[0].1 == 3 || top[0].1 == 4);
    }

    #[test]
    fn top_k_truncates_at_pixel_count() {
        let c = HyperCube::from_vec(2, 2, 2, vec![0.1; 8]);
        let r = mei(&c, &StructuringElement::square(1), 1);
        assert_eq!(r.top_k(10).len(), 4);
    }

    #[test]
    fn deterministic() {
        let c = two_region_cube();
        let a = mei(&c, &StructuringElement::square(1), 3);
        let b = mei(&c, &StructuringElement::square(1), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn works_with_cross_and_disk_elements() {
        let c = two_region_cube();
        // All SE shapes run cleanly; the "fat" elements that see both
        // sides of the boundary must find strong eccentricity (a thin
        // cross on this axis-aligned boundary can tie-break to zero).
        for se in [StructuringElement::cross(1), StructuringElement::disk(2)] {
            let r = mei(&c, &se, 1);
            assert_eq!(r.shape(), (7, 7));
            assert!(r.scores.iter().all(|v| v.is_finite()));
        }
        // The square element sees both sides of the boundary at every
        // offset pattern and must find strong eccentricity (thin/round
        // elements can tie-break to zero on this noise-free toy).
        let r = mei(&c, &StructuringElement::square(2), 1);
        assert_eq!(r.shape(), (7, 7));
        assert!(r.scores.iter().any(|&v| v > 1.0));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        mei(&two_region_cube(), &StructuringElement::square(1), 0);
    }
}
