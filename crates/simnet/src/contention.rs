//! Serial inter-segment link contention.
//!
//! The paper's heterogeneous network consists of four fast switched
//! segments whose interconnecting links "only support serial
//! communication" (§3.1). We model each unordered segment pair as a FIFO
//! resource in virtual time: a transfer crossing from segment `a` to
//! segment `b` must wait until the `(a,b)` link is free, then occupies it
//! for the transfer duration.
//!
//! **Determinism.** Reservations are made from whichever endpoint of the
//! message is rank 0 (the root): the root issues its sends and receives
//! in program order, so reservation order — and therefore every virtual
//! timestamp — is deterministic for the master/worker communication
//! patterns all algorithms in this repository use. Worker↔worker
//! transfers (only used by the halo-exchange ablation) skip the queue and
//! pay the raw transfer duration; see DESIGN.md.

use parking_lot::Mutex;
use std::collections::HashMap;

/// FIFO reservation ledger for serial inter-segment links.
#[derive(Debug, Default)]
pub struct InterSegmentLinks {
    /// `busy_until[(a, b)]` with `a < b`: virtual time at which the a↔b
    /// link becomes free.
    busy_until: Mutex<HashMap<(usize, usize), f64>>,
}

impl InterSegmentLinks {
    /// A fresh ledger with all links free.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the `seg_a`↔`seg_b` link for a transfer of `duration`
    /// seconds that cannot start before `earliest`. Returns the actual
    /// start time (≥ `earliest`).
    ///
    /// Same-segment "reservations" (switched network) start immediately
    /// and occupy nothing.
    pub fn reserve(&self, seg_a: usize, seg_b: usize, earliest: f64, duration: f64) -> f64 {
        debug_assert!(duration >= 0.0);
        if seg_a == seg_b {
            return earliest;
        }
        let key = (seg_a.min(seg_b), seg_a.max(seg_b));
        let mut map = self.busy_until.lock();
        let free_at = map.get(&key).copied().unwrap_or(0.0);
        let start = earliest.max(free_at);
        map.insert(key, start + duration);
        start
    }

    /// Virtual time at which the `seg_a`↔`seg_b` link becomes free
    /// (0 when never used). Exposed for tests and diagnostics.
    pub fn free_at(&self, seg_a: usize, seg_b: usize) -> f64 {
        let key = (seg_a.min(seg_b), seg_a.max(seg_b));
        self.busy_until.lock().get(&key).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_segment_never_queues() {
        let links = InterSegmentLinks::new();
        assert_eq!(links.reserve(1, 1, 5.0, 10.0), 5.0);
        assert_eq!(links.reserve(1, 1, 5.0, 10.0), 5.0);
        assert_eq!(links.free_at(1, 1), 0.0);
    }

    #[test]
    fn cross_segment_transfers_serialize() {
        let links = InterSegmentLinks::new();
        let s1 = links.reserve(0, 1, 0.0, 2.0);
        let s2 = links.reserve(0, 1, 0.0, 2.0);
        let s3 = links.reserve(1, 0, 0.0, 1.0); // same unordered pair
        assert_eq!(s1, 0.0);
        assert_eq!(s2, 2.0);
        assert_eq!(s3, 4.0);
        assert_eq!(links.free_at(0, 1), 5.0);
    }

    #[test]
    fn distinct_pairs_are_independent() {
        let links = InterSegmentLinks::new();
        let a = links.reserve(0, 1, 0.0, 10.0);
        let b = links.reserve(2, 3, 0.0, 10.0);
        assert_eq!(a, 0.0);
        assert_eq!(b, 0.0);
    }

    #[test]
    fn earliest_respected_when_link_free() {
        let links = InterSegmentLinks::new();
        let s = links.reserve(0, 1, 7.5, 1.0);
        assert_eq!(s, 7.5);
        assert_eq!(links.free_at(0, 1), 8.5);
    }

    #[test]
    fn gap_then_later_transfer() {
        let links = InterSegmentLinks::new();
        links.reserve(0, 1, 0.0, 1.0); // busy until 1.0
        let s = links.reserve(0, 1, 10.0, 1.0); // link long free again
        assert_eq!(s, 10.0);
    }

    #[test]
    fn fifo_is_reservation_order_not_earliest_time() {
        // The queue discipline is *call order* (the root's program
        // order), not earliest-requested-start order: a later call with
        // an earlier `earliest` still queues behind prior reservations.
        let links = InterSegmentLinks::new();
        let s1 = links.reserve(0, 1, 5.0, 1.0); // head of queue
        let s2 = links.reserve(0, 1, 0.0, 1.0); // wants 0.0, gets 6.0
        let s3 = links.reserve(1, 0, 6.0, 1.0); // same pair, queues again
        assert_eq!(s1, 5.0);
        assert_eq!(s2, 6.0);
        assert_eq!(s3, 7.0);
        assert_eq!(links.free_at(0, 1), 8.0);
    }

    #[test]
    fn contended_link_backlog_accumulates() {
        // Ten back-to-back reservations pack the link solid with no gaps.
        let links = InterSegmentLinks::new();
        for i in 0..10 {
            let s = links.reserve(2, 7, 0.0, 0.5);
            assert!((s - 0.5 * i as f64).abs() < 1e-12, "slot {i} at {s}");
        }
        assert!((links.free_at(2, 7) - 5.0).abs() < 1e-12);
    }
}
