//! Post-run profiler: exact per-rank phase accounting and critical-path
//! extraction over a run's [`Trace`].
//!
//! The profiler is **pure observability**: it consumes the finalized
//! trace stream plus the per-rank [`TimeLedger`]s after the run and
//! never feeds anything back into the simulation, so a profiled run is
//! bit-identical to an unprofiled one in every other report field.
//!
//! # Phase taxonomy
//!
//! Each rank's wall-clock is decomposed into eight phases (see
//! `docs/PROF.md` for the full taxonomy):
//!
//! | phase | source |
//! |---|---|
//! | `compute_par` | [`TraceKind::ComputePar`] spans |
//! | `compute_seq` | [`TraceKind::ComputeSeq`] spans |
//! | `offload` | [`TraceKind::Offload`] spans (launch + H2D + device + D2H) |
//! | `send_wait` | [`TraceKind::Send`] sender-overhead spans |
//! | `recv_wait` | transfer tail of delivered [`TraceKind::Recv`] spans |
//! | `contention` | FIFO link-queueing tail of delivered receive spans |
//! | `recovery` | merged [`TraceKind::Recovery`] windows (overlay) |
//! | `idle` | everything else (late senders, timeouts, barrier waits) |
//!
//! # The accounting identity
//!
//! For every rank the canonical left-fold of the eight phases equals the
//! rank's wall-clock **bitwise** (`f64::to_bits` equality, no epsilon) —
//! the same exactness discipline as [`crate::accel::cost::predict_offload`].
//! Floating-point addition is not associative, so the identity is *made*
//! exact rather than assumed: the seven non-idle phases are measured
//! from trace spans, and `idle` is solved as the residual with a bounded
//! ulp-stepping search (`fl(partial + idle) == wall`). The search always
//! terminates in a handful of steps: when `partial ≥ wall/2` Sterbenz's
//! lemma makes `wall - partial` exact, and otherwise the residual
//! exceeds `wall/2` so its ulp is at least half of `wall`'s. In the
//! degenerate corner where the measured phases alone overshoot the
//! wall-clock by a few ulps (a rank with no idle at all), the largest
//! phase is stepped down until the fold lands exactly — attribution
//! honesty is traded one ulp at a time, never silently.
//!
//! # Critical path
//!
//! The path is extracted by a backward frontier walk from the rank that
//! realises the makespan: within a rank it follows busy spans and idle
//! gaps backwards; at a *binding* delivered receive (one that advanced
//! the receiver's clock) it crosses the message edge to the sender's
//! injection instant, attributing the wire hole to the inter-segment
//! link (transfer + queueing). The resulting element list satisfies two
//! always-gateable bounds: `length ≤ makespan` and
//! `fl(length + slack) == makespan` bitwise, where `length` folds the
//! work elements and `slack` the attributed non-work time.

use crate::clock::TimeLedger;
use crate::platform::Platform;
use crate::trace::{Trace, TraceEvent, TraceKind};

/// Maximum ulp-stepping iterations for the residual solvers; the
/// Sterbenz argument above bounds the actual step count by ~4.
const MAX_ULP_STEPS: usize = 64;

/// The phase a profiled span is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PhaseKind {
    /// Parallel-phase host computation.
    ComputePar,
    /// Sequential-phase (root-only) computation.
    ComputeSeq,
    /// Offloaded kernel execution (launch + transfers + device compute).
    Offload,
    /// Sender-side message injection overhead.
    SendWait,
    /// Receive wait covered by the delivered transfer itself.
    RecvWait,
    /// Receive wait caused by FIFO queueing on a serial inter-segment
    /// link (the transfer waited behind earlier reservations).
    Contention,
    /// Master-side recovery span after losing a worker (overlay phase:
    /// primitive spans inside a recovery window are re-attributed here).
    Recovery,
    /// Unattributed time: late senders, deadline timeouts, barrier
    /// waits, crash idling.
    Idle,
}

impl PhaseKind {
    /// Short display label (`"compute_par"`, `"idle"`, …).
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::ComputePar => "compute_par",
            PhaseKind::ComputeSeq => "compute_seq",
            PhaseKind::Offload => "offload",
            PhaseKind::SendWait => "send_wait",
            PhaseKind::RecvWait => "recv_wait",
            PhaseKind::Contention => "contention",
            PhaseKind::Recovery => "recovery",
            PhaseKind::Idle => "idle",
        }
    }
}

/// One rank's wall-clock decomposed into phases.
///
/// The canonical fold [`PhaseBreakdown::accounted`] equals the rank's
/// wall-clock bitwise — see the module docs for how the identity is
/// enforced.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Parallel-phase host compute seconds.
    pub compute_par: f64,
    /// Sequential-phase compute seconds.
    pub compute_seq: f64,
    /// Offloaded kernel seconds (actual elapsed, dilation included).
    pub offload: f64,
    /// Sender-side injection overhead seconds.
    pub send_wait: f64,
    /// Receive wait covered by delivered transfers.
    pub recv_wait: f64,
    /// Receive wait caused by serial-link FIFO queueing.
    pub contention: f64,
    /// Recovery-window seconds (merged, overlay — see module docs).
    pub recovery: f64,
    /// Residual idle seconds (solved so the identity holds exactly).
    pub idle: f64,
    /// Nominal launch-latency seconds inside `offload` (informational:
    /// pre-dilation closed-form split, not part of the identity).
    pub offload_launch: f64,
    /// Nominal host→device transfer seconds inside `offload`.
    pub offload_h2d: f64,
    /// Nominal device-compute seconds inside `offload`.
    pub offload_compute: f64,
    /// Nominal device→host transfer seconds inside `offload`.
    pub offload_d2h: f64,
}

impl PhaseBreakdown {
    /// The canonical left-fold of the eight phases, in declaration
    /// order. Bitwise equal to the rank's wall-clock for every profile
    /// the engine produces.
    pub fn accounted(&self) -> f64 {
        self.non_idle_sum() + self.idle
    }

    /// The value of one phase.
    pub fn get(&self, phase: PhaseKind) -> f64 {
        match phase {
            PhaseKind::ComputePar => self.compute_par,
            PhaseKind::ComputeSeq => self.compute_seq,
            PhaseKind::Offload => self.offload,
            PhaseKind::SendWait => self.send_wait,
            PhaseKind::RecvWait => self.recv_wait,
            PhaseKind::Contention => self.contention,
            PhaseKind::Recovery => self.recovery,
            PhaseKind::Idle => self.idle,
        }
    }

    /// Left-fold of the seven non-idle phases (same order as
    /// [`PhaseBreakdown::accounted`]).
    fn non_idle_sum(&self) -> f64 {
        let mut s = self.compute_par;
        s += self.compute_seq;
        s += self.offload;
        s += self.send_wait;
        s += self.recv_wait;
        s += self.contention;
        s += self.recovery;
        s
    }

    /// The non-idle phase with the largest value (ties → earliest in
    /// canonical order), as a [`PhaseKind`].
    fn largest_non_idle(&self) -> PhaseKind {
        let mut best = PhaseKind::ComputePar;
        for p in [
            PhaseKind::ComputeSeq,
            PhaseKind::Offload,
            PhaseKind::SendWait,
            PhaseKind::RecvWait,
            PhaseKind::Contention,
            PhaseKind::Recovery,
        ] {
            if self.get(p) > self.get(best) {
                best = p;
            }
        }
        best
    }

    fn set(&mut self, phase: PhaseKind, v: f64) {
        match phase {
            PhaseKind::ComputePar => self.compute_par = v,
            PhaseKind::ComputeSeq => self.compute_seq = v,
            PhaseKind::Offload => self.offload = v,
            PhaseKind::SendWait => self.send_wait = v,
            PhaseKind::RecvWait => self.recv_wait = v,
            PhaseKind::Contention => self.contention = v,
            PhaseKind::Recovery => self.recovery = v,
            PhaseKind::Idle => self.idle = v,
        }
    }

    /// Solves `idle` (and, in the overshoot corner, nudges the largest
    /// measured phase) so that [`PhaseBreakdown::accounted`] equals
    /// `wall` bitwise.
    fn enforce_identity(&mut self, wall: f64) {
        for _ in 0..MAX_ULP_STEPS {
            let partial = self.non_idle_sum();
            if let Some(idle) = solve_residual(partial, wall) {
                self.idle = idle;
                return;
            }
            // Measured phases alone overshoot the wall-clock (a rank
            // with no idle): give back one ulp from the largest phase.
            let p = self.largest_non_idle();
            let v = self.get(p);
            if v <= 0.0 {
                break;
            }
            self.set(p, next_down(v).max(0.0));
        }
        // Mathematically unreachable (see module docs); keep the
        // identity rather than the attribution if it ever trips.
        *self = PhaseBreakdown {
            idle: wall,
            ..PhaseBreakdown::default()
        };
    }
}

/// One rank's profile: wall-clock, phase breakdown, epoch-bump count.
#[derive(Debug, Clone, PartialEq)]
pub struct RankProfile {
    /// The rank this profile describes.
    pub rank: usize,
    /// The rank's final virtual clock (crashed ranks: crash instant).
    pub wall: f64,
    /// The phase decomposition of `wall`.
    pub phases: PhaseBreakdown,
    /// Number of membership epoch transitions this rank observed.
    pub epoch_bumps: u64,
}

impl RankProfile {
    /// `true` iff the accounting identity holds bitwise on this rank.
    pub fn identity_holds(&self) -> bool {
        self.phases.accounted().to_bits() == self.wall.to_bits()
    }
}

/// Who owns a critical-path element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathOwner {
    /// Time spent on a rank, attributed to a phase. `Idle` elements are
    /// the path's attributed slack (gaps and non-delivered waits).
    Rank {
        /// The rank the element executes on.
        rank: usize,
        /// The phase the element is attributed to.
        phase: PhaseKind,
    },
    /// A message in flight on the inter-segment fabric: the wire hole
    /// between the sender's injection and the receiver's arrival.
    Link {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Sender's network segment.
        src_seg: usize,
        /// Receiver's network segment.
        dst_seg: usize,
        /// Link-occupancy seconds of the transfer.
        transfer: f64,
        /// FIFO queueing seconds behind earlier reservations.
        queued: f64,
    },
}

impl PathOwner {
    /// Deterministic attribution key (`"r3/compute_par"`,
    /// `"link s1->s0"`); link keys aggregate by segment pair.
    pub fn key(&self) -> String {
        match self {
            PathOwner::Rank { rank, phase } => format!("r{rank}/{}", phase.label()),
            PathOwner::Link {
                src_seg, dst_seg, ..
            } => format!("link s{src_seg}->s{dst_seg}"),
        }
    }

    /// `true` for slack (idle) elements — attributed non-work time.
    pub fn is_slack(&self) -> bool {
        matches!(
            self,
            PathOwner::Rank {
                phase: PhaseKind::Idle,
                ..
            }
        )
    }
}

/// One element of the critical path, in forward time order.
#[derive(Debug, Clone, PartialEq)]
pub struct PathElement {
    /// Who the element is attributed to.
    pub owner: PathOwner,
    /// Virtual start time.
    pub start: f64,
    /// Virtual end time.
    pub end: f64,
}

impl PathElement {
    /// Element duration in seconds.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// `true` for zero-duration elements.
    pub fn is_empty(&self) -> bool {
        self.len() <= 0.0
    }
}

/// The dominant contributor on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// Attribution key of the dominant owner (see [`PathOwner::key`]).
    pub owner: String,
    /// Seconds the owner contributes to the path.
    pub seconds: f64,
    /// `seconds / makespan` (0 for an empty run).
    pub share: f64,
}

/// The extracted critical path with its bottleneck attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Path elements in forward time order (work and slack interleaved).
    pub elements: Vec<PathElement>,
    /// Left-fold of the work (non-slack) element durations, clamped to
    /// the makespan. Gate: `length ≤ makespan` always.
    pub length: f64,
    /// Attributed slack, solved so `fl(length + slack) == makespan`
    /// bitwise. Gate: `slack ≥ 0` always.
    pub slack: f64,
    /// The dominant work contributor and its share of the makespan.
    pub bottleneck: Bottleneck,
}

/// A complete run profile: per-rank phase breakdowns plus the critical
/// path. Deterministic — a pure function of the (deterministic) trace
/// and ledgers — so it participates in
/// [`crate::report::RunReport`]'s `PartialEq` contract.
#[derive(Debug, Clone, PartialEq)]
pub struct RunProfile {
    /// The run's makespan (latest rank clock).
    pub makespan: f64,
    /// One profile per rank, in rank order.
    pub ranks: Vec<RankProfile>,
    /// The critical path through the message-dependency DAG.
    pub critical_path: CriticalPath,
}

impl RunProfile {
    /// Builds the profile from a finalized trace and the run's per-rank
    /// ledgers. `platform` supplies the rank→segment mapping for link
    /// attribution.
    pub fn from_run(platform: &Platform, ledgers: &[TimeLedger], trace: &Trace) -> RunProfile {
        let num_ranks = ledgers.len();
        let makespan = ledgers.iter().map(|l| l.now).fold(0.0, f64::max);
        let ranks = (0..num_ranks)
            .map(|rank| profile_rank(rank, ledgers[rank].now, trace))
            .collect();
        let critical_path = extract_critical_path(platform, ledgers, trace, makespan);
        RunProfile {
            makespan,
            ranks,
            critical_path,
        }
    }

    /// `true` iff the accounting identity holds bitwise on every rank.
    pub fn identity_holds(&self) -> bool {
        self.ranks.iter().all(RankProfile::identity_holds)
    }

    /// `true` iff the critical-path bounds hold: `length ≤ makespan`,
    /// `slack ≥ 0`, and `fl(length + slack) == makespan` bitwise.
    pub fn path_bounded(&self) -> bool {
        let p = &self.critical_path;
        p.length <= self.makespan
            && p.slack >= 0.0
            && (p.length + p.slack).to_bits() == self.makespan.to_bits()
    }

    /// One-line bottleneck attribution for emitters and logs.
    pub fn bottleneck_line(&self) -> String {
        let b = &self.critical_path.bottleneck;
        format!(
            "bottleneck {}: {:.4} s on the critical path ({:.1}% of makespan {:.4} s)",
            b.owner,
            b.seconds,
            b.share * 100.0,
            self.makespan
        )
    }

    /// Deterministic multi-line human-readable summary: makespan,
    /// critical-path share, bottleneck, and the per-rank breakdown.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let cp = &self.critical_path;
        let share = if self.makespan > 0.0 {
            cp.length / self.makespan * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "makespan {:.6} s | critical path {:.6} s ({share:.1}%) + slack {:.6} s",
            self.makespan, cp.length, cp.slack
        );
        let _ = writeln!(out, "{}", self.bottleneck_line());
        let _ = writeln!(
            out,
            "rank  wall      par       seq       offl      send      recv      cont      recov     idle"
        );
        for r in &self.ranks {
            let p = &r.phases;
            let _ = writeln!(
                out,
                "r{:03}  {:<9.4} {:<9.4} {:<9.4} {:<9.4} {:<9.4} {:<9.4} {:<9.4} {:<9.4} {:<9.4}",
                r.rank,
                r.wall,
                p.compute_par,
                p.compute_seq,
                p.offload,
                p.send_wait,
                p.recv_wait,
                p.contention,
                p.recovery,
                p.idle
            );
        }
        out
    }
}

// --- residual solver ----------------------------------------------------

/// Next representable f64 above `x` (finite inputs).
fn next_up(x: f64) -> f64 {
    if x == 0.0 {
        f64::from_bits(1)
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        f64::from_bits(x.to_bits() - 1)
    }
}

/// Next representable f64 below `x` (finite inputs).
fn next_down(x: f64) -> f64 {
    if x == 0.0 {
        -f64::from_bits(1)
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else {
        f64::from_bits(x.to_bits() + 1)
    }
}

/// Finds `b ≥ 0` with `fl(a + b) == wall` bitwise, stepping from the
/// na(ï)ve candidate by ulps. Returns `None` when no non-negative
/// residual exists (i.e. `a` alone already overshoots `wall`).
fn solve_residual(a: f64, wall: f64) -> Option<f64> {
    if a.to_bits() == wall.to_bits() {
        return Some(0.0);
    }
    let mut b = (wall - a).max(0.0);
    for _ in 0..MAX_ULP_STEPS {
        let s = a + b;
        if s.to_bits() == wall.to_bits() {
            return Some(b);
        }
        if s < wall {
            b = next_up(b);
        } else if b > 0.0 {
            b = next_down(b).max(0.0);
        } else {
            return None;
        }
    }
    None
}

// --- phase accounting ---------------------------------------------------

/// Merges this rank's recovery spans into disjoint windows clipped to
/// `[0, wall]`.
fn recovery_windows(rank: usize, wall: f64, trace: &Trace) -> Vec<(f64, f64)> {
    let mut spans: Vec<(f64, f64)> = trace
        .for_rank(rank)
        .filter(|e| matches!(e.kind, TraceKind::Recovery { .. }))
        .map(|e| (e.start.max(0.0), e.end.min(wall)))
        .filter(|(a, b)| b > a)
        .collect();
    spans.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (a, b) in spans {
        match merged.last_mut() {
            Some((_, e)) if a <= *e => *e = e.max(b),
            _ => merged.push((a, b)),
        }
    }
    merged
}

/// Seconds of `[a, b]` covered by the merged `windows`.
fn overlap(a: f64, b: f64, windows: &[(f64, f64)]) -> f64 {
    let mut s = 0.0;
    for &(wa, wb) in windows {
        let lo = a.max(wa);
        let hi = b.min(wb);
        if hi > lo {
            s += hi - lo;
        }
    }
    s
}

/// Adds the span `[a, b]` to `phase`, re-attributing any part inside a
/// recovery window to the recovery phase (which is tallied separately
/// from the windows themselves).
fn add_span(ph: &mut PhaseBreakdown, phase: PhaseKind, a: f64, b: f64, windows: &[(f64, f64)]) {
    if b <= a {
        return;
    }
    let contribution = ((b - a) - overlap(a, b, windows)).max(0.0);
    ph.set(phase, ph.get(phase) + contribution);
}

/// Computes one rank's phase breakdown with the exact identity.
fn profile_rank(rank: usize, wall: f64, trace: &Trace) -> RankProfile {
    let windows = recovery_windows(rank, wall, trace);
    let mut ph = PhaseBreakdown::default();
    let mut epoch_bumps = 0u64;
    // Recovery is an overlay: its total is the merged window length, and
    // primitive spans subtract their covered part (see `add_span`).
    // Fold from +0.0: `Iterator::sum` starts at -0.0, which would leak
    // a negative zero into the breakdown of every recovery-free rank.
    ph.recovery = windows.iter().fold(0.0, |s, (a, b)| s + (b - a));
    for e in trace.for_rank(rank) {
        match e.kind {
            TraceKind::ComputePar => {
                add_span(&mut ph, PhaseKind::ComputePar, e.start, e.end, &windows)
            }
            TraceKind::ComputeSeq => {
                add_span(&mut ph, PhaseKind::ComputeSeq, e.start, e.end, &windows)
            }
            TraceKind::Offload {
                launch,
                h2d,
                compute,
                d2h,
            } => {
                add_span(&mut ph, PhaseKind::Offload, e.start, e.end, &windows);
                ph.offload_launch += launch;
                ph.offload_h2d += h2d;
                ph.offload_compute += compute;
                ph.offload_d2h += d2h;
            }
            TraceKind::Send { .. } => {
                add_span(&mut ph, PhaseKind::SendWait, e.start, e.end, &windows)
            }
            TraceKind::Recv {
                delivered,
                transfer,
                queued,
                ..
            } => {
                if delivered {
                    // Within the wait [start, end]: the tail is the
                    // transfer itself, before that the link queueing,
                    // and any remainder is a late sender → idle
                    // (left to the residual).
                    let span = e.end - e.start;
                    let t = transfer.clamp(0.0, span.max(0.0));
                    let q = queued.clamp(0.0, (span - t).max(0.0));
                    add_span(&mut ph, PhaseKind::RecvWait, e.end - t, e.end, &windows);
                    add_span(
                        &mut ph,
                        PhaseKind::Contention,
                        e.end - t - q,
                        e.end - t,
                        &windows,
                    );
                }
                // Non-delivered waits (timeouts, failure observations)
                // are pure idle: covered by the residual.
            }
            TraceKind::EpochBump { .. } => epoch_bumps += 1,
            TraceKind::Crash | TraceKind::Recovery { .. } => {}
        }
    }
    ph.enforce_identity(wall);
    RankProfile {
        rank,
        wall,
        phases: ph,
        epoch_bumps,
    }
}

// --- critical path ------------------------------------------------------

/// `true` for event kinds that occupy time on a rank's own timeline
/// (primitive spans; overlays and zero-length markers excluded).
fn is_timeline_atom(kind: &TraceKind) -> bool {
    matches!(
        kind,
        TraceKind::ComputePar
            | TraceKind::ComputeSeq
            | TraceKind::Offload { .. }
            | TraceKind::Send { .. }
            | TraceKind::Recv { .. }
    )
}

/// The element phase of a non-message timeline atom.
fn atom_phase(kind: &TraceKind) -> PhaseKind {
    match kind {
        TraceKind::ComputePar => PhaseKind::ComputePar,
        TraceKind::ComputeSeq => PhaseKind::ComputeSeq,
        TraceKind::Offload { .. } => PhaseKind::Offload,
        TraceKind::Send { .. } => PhaseKind::SendWait,
        _ => PhaseKind::Idle,
    }
}

/// Backward frontier walk from the makespan rank through the
/// message-dependency DAG. See the module docs for semantics and the
/// termination argument (the frontier time and per-rank cursors are
/// jointly strictly decreasing).
fn extract_critical_path(
    platform: &Platform,
    ledgers: &[TimeLedger],
    trace: &Trace,
    makespan: f64,
) -> CriticalPath {
    let num_ranks = ledgers.len();
    let atoms: Vec<Vec<&TraceEvent>> = (0..num_ranks)
        .map(|r| {
            trace
                .for_rank(r)
                .filter(|e| is_timeline_atom(&e.kind))
                .collect()
        })
        .collect();

    // Start on the rank that realises the makespan (ties → lowest rank).
    let mut rank = 0usize;
    for (r, l) in ledgers.iter().enumerate() {
        if l.now > ledgers[rank].now {
            rank = r;
        }
    }
    let mut t = makespan;
    let mut cursor: Vec<usize> = atoms.iter().map(Vec::len).collect();
    let total_atoms: usize = atoms.iter().map(Vec::len).sum();
    let step_cap = 2 * total_atoms + num_ranks + 8;

    let mut rev_elements: Vec<PathElement> = Vec::new();
    let push = |rev: &mut Vec<PathElement>, owner: PathOwner, start: f64, end: f64| {
        if end > start {
            rev.push(PathElement { owner, start, end });
        }
    };

    let mut steps = 0usize;
    while t > 0.0 && steps < step_cap {
        steps += 1;
        let a = &atoms[rank];
        let mut i = cursor[rank];
        // Drop atoms entirely after the frontier (they start at or
        // after `t`; straddling is impossible — see module docs).
        while i > 0 && a[i - 1].end > t {
            i -= 1;
        }
        cursor[rank] = i;
        if i == 0 {
            // Leading idle back to the origin.
            push(
                &mut rev_elements,
                PathOwner::Rank {
                    rank,
                    phase: PhaseKind::Idle,
                },
                0.0,
                t,
            );
            break;
        }
        let e = a[i - 1];
        if e.end < t {
            // Untraced gap (wait_until, crash idling, recv-gone wait).
            push(
                &mut rev_elements,
                PathOwner::Rank {
                    rank,
                    phase: PhaseKind::Idle,
                },
                e.end,
                t,
            );
            t = e.end;
            continue;
        }
        // e.end == t: consume the atom.
        cursor[rank] = i - 1;
        if e.end <= e.start {
            continue; // zero-length (non-binding immediate delivery)
        }
        match e.kind {
            TraceKind::Recv {
                src,
                delivered: true,
                sent_at,
                transfer,
                queued,
            } => {
                // Binding message edge: the wire hole [sent_at, arrival]
                // goes to the link; the walk crosses to the sender.
                push(
                    &mut rev_elements,
                    PathOwner::Link {
                        src,
                        dst: rank,
                        src_seg: platform.segment_of(src),
                        dst_seg: platform.segment_of(rank),
                        transfer,
                        queued,
                    },
                    sent_at,
                    e.end,
                );
                t = sent_at;
                rank = src;
            }
            TraceKind::Recv { .. } => {
                // Timeout / failure observation: pure slack.
                push(
                    &mut rev_elements,
                    PathOwner::Rank {
                        rank,
                        phase: PhaseKind::Idle,
                    },
                    e.start,
                    e.end,
                );
                t = e.start;
            }
            ref kind => {
                push(
                    &mut rev_elements,
                    PathOwner::Rank {
                        rank,
                        phase: atom_phase(kind),
                    },
                    e.start,
                    e.end,
                );
                t = e.start;
            }
        }
    }

    let mut elements = rev_elements;
    elements.reverse();

    // Path length: canonical fold of the work elements, clamped so the
    // `length ≤ makespan` gate is structural.
    let mut length = 0.0f64;
    for e in &elements {
        if !e.owner.is_slack() {
            length += e.len();
        }
    }
    if length > makespan {
        length = makespan;
    }
    // `fl(length + slack) == makespan` can be unsolvable for an exact
    // `length`: when every candidate sum lands on a rounding midpoint
    // and the makespan mantissa is odd, ties-to-even skips it in both
    // directions (found by the chaos harness, seed 15). Give back one
    // ulp of path length per attempt — same recovery `enforce_identity`
    // uses for the per-rank fold — so the bound gate stays structural.
    let (length, slack) = {
        let mut l = length;
        let mut solved = None;
        for _ in 0..MAX_ULP_STEPS {
            if let Some(b) = solve_residual(l, makespan) {
                solved = Some((l, b));
                break;
            }
            if l <= 0.0 {
                break;
            }
            l = next_down(l).max(0.0);
        }
        // Mathematically unreachable (64 ulp nudges break any midpoint
        // pattern); keep the bound rather than the attribution.
        solved.unwrap_or((makespan, 0.0))
    };

    // Bottleneck: aggregate work seconds by owner key; deterministic
    // max (strictly-greater comparison over a BTreeMap → ties resolve
    // to the lexicographically smallest key).
    let mut by_owner: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for e in &elements {
        if !e.owner.is_slack() {
            *by_owner.entry(e.owner.key()).or_insert(0.0) += e.len();
        }
    }
    let mut bottleneck = Bottleneck {
        owner: "none".to_string(),
        seconds: 0.0,
        share: 0.0,
    };
    for (k, &secs) in &by_owner {
        if secs > bottleneck.seconds {
            bottleneck = Bottleneck {
                owner: k.clone(),
                seconds: secs,
                share: if makespan > 0.0 { secs / makespan } else { 0.0 },
            };
        }
    }

    CriticalPath {
        elements,
        length,
        slack,
        bottleneck,
    }
}

// --- Chrome trace export ------------------------------------------------

/// Serializes a finalized trace as Chrome-trace JSON (an array of
/// complete `"ph":"X"` events, one per trace event, `tid` = rank,
/// timestamps in microseconds). Load the output in `chrome://tracing`
/// or Perfetto. Deterministic: event order is the trace's canonical
/// order and numbers use shortest-roundtrip formatting.
pub fn chrome_trace(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, e) in trace.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (name, args) = match e.kind {
            TraceKind::ComputePar => ("compute_par", String::new()),
            TraceKind::ComputeSeq => ("compute_seq", String::new()),
            TraceKind::Offload {
                launch,
                h2d,
                compute,
                d2h,
            } => (
                "offload",
                format!(
                    r#","args":{{"launch_s":{launch},"h2d_s":{h2d},"compute_s":{compute},"d2h_s":{d2h}}}"#
                ),
            ),
            TraceKind::Send { dst } => ("send", format!(r#","args":{{"dst":{dst}}}"#)),
            TraceKind::Recv { src, delivered, .. } => (
                if delivered { "recv" } else { "recv_miss" },
                format!(r#","args":{{"src":{src}}}"#),
            ),
            TraceKind::Crash => ("crash", String::new()),
            TraceKind::Recovery { lost } => ("recovery", format!(r#","args":{{"lost":{lost}}}"#)),
            TraceKind::EpochBump { epoch } => ("epoch", format!(r#","args":{{"epoch":{epoch}}}"#)),
        };
        let ts = e.start * 1.0e6;
        let dur = (e.end - e.start) * 1.0e6;
        let _ = write!(
            out,
            r#"{{"name":"{name}","cat":"sim","ph":"X","pid":0,"tid":{},"ts":{ts},"dur":{dur}{args}}}"#,
            e.rank
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Ctx, Engine};
    use crate::faults::FaultPlan;
    use crate::Platform;

    fn assert_exact(profile: &RunProfile) {
        for r in &profile.ranks {
            assert!(
                r.identity_holds(),
                "rank {}: accounted {:e} != wall {:e}",
                r.rank,
                r.phases.accounted(),
                r.wall
            );
        }
        assert!(profile.path_bounded(), "path bounds violated: {profile:?}");
    }

    fn master_worker_profile() -> RunProfile {
        let engine = Engine::new(Platform::uniform("p", 4, 0.01, 64, 5.0)).with_profiling(true);
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            ctx.compute_par(100.0 * (ctx.rank() + 1) as f64);
            if ctx.is_root() {
                for src in 1..ctx.num_ranks() {
                    let _ = ctx.recv(src);
                }
                ctx.compute_seq(50.0);
            } else {
                ctx.send(0, ctx.rank() as u64);
            }
            ctx.rank()
        });
        report.profile.expect("profiling enabled")
    }

    #[test]
    fn identity_and_path_bounds_hold() {
        let p = master_worker_profile();
        assert_exact(&p);
        assert!(p.makespan > 0.0);
        assert!(p.critical_path.length > 0.0);
        assert!(!p.critical_path.elements.is_empty());
    }

    #[test]
    fn profiles_are_deterministic() {
        let (a, b) = (master_worker_profile(), master_worker_profile());
        assert_eq!(a, b);
    }

    #[test]
    fn critical_path_crosses_to_the_slowest_sender() {
        // Rank 3 computes 4x the work: the path must route through it.
        let p = master_worker_profile();
        assert!(
            p.critical_path
                .elements
                .iter()
                .any(|e| matches!(e.owner, PathOwner::Rank { rank: 3, .. })),
            "path misses the slow worker: {:?}",
            p.critical_path.elements
        );
        assert!(
            p.critical_path
                .elements
                .iter()
                .any(|e| matches!(e.owner, PathOwner::Link { src: 3, dst: 0, .. })),
            "path misses the binding message edge"
        );
        assert!(p.critical_path.bottleneck.seconds > 0.0);
        assert!(p.critical_path.bottleneck.share <= 1.0 + 1e-12);
    }

    #[test]
    fn residual_solver_lands_exactly() {
        for (a, wall) in [
            (0.0, 0.0),
            (0.0, 1.5),
            (0.1 + 0.2, 1.0),
            (1.0 / 3.0, 2.0 / 3.0),
            (0.7, 0.7),
            (1e-9, 3.7),
            (5.0, 5.0 + f64::EPSILON * 10.0),
        ] {
            let b = solve_residual(a, wall).expect("solvable");
            assert_eq!((a + b).to_bits(), wall.to_bits(), "a={a} wall={wall}");
            assert!(b >= 0.0);
        }
        // Overshoot: no non-negative residual exists.
        assert_eq!(solve_residual(1.0 + f64::EPSILON, 1.0), None);
    }

    #[test]
    fn enforce_identity_handles_overshoot() {
        let mut ph = PhaseBreakdown {
            compute_par: 1.0 + f64::EPSILON,
            ..PhaseBreakdown::default()
        };
        ph.enforce_identity(1.0);
        assert_eq!(ph.accounted().to_bits(), 1.0f64.to_bits());
        assert!(ph.compute_par <= 1.0);
    }

    #[test]
    fn crash_run_keeps_identity_and_marks_idle() {
        let engine = Engine::new(Platform::uniform("c", 3, 0.01, 64, 5.0))
            .with_faults(FaultPlan::new().crash(2, 0.25))
            .with_profiling(true);
        let report = engine.run(|ctx: &mut Ctx<u64>| {
            if ctx.is_root() {
                for src in 1..ctx.num_ranks() {
                    let _ = ctx.recv_deadline(src, 2.0);
                }
            } else {
                ctx.compute_par(100.0); // 1 s; rank 2 dies at 0.25
                ctx.send(0, 1);
            }
            0
        });
        let p = report.profile.expect("profiled");
        assert_exact(&p);
        // The crashed rank's wall stops at the crash instant.
        assert!((p.ranks[2].wall - 0.25).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let engine = Engine::new(Platform::uniform("t", 2, 0.01, 64, 5.0));
        let (_, trace) = engine.run_traced(|ctx: &mut Ctx<u64>| {
            if ctx.is_root() {
                let _ = ctx.recv(1);
            } else {
                ctx.compute_par(10.0);
                ctx.send(0, 7);
            }
        });
        let json = chrome_trace(&trace);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""name":"compute_par""#));
        assert!(json.contains(r#""name":"send""#));
        assert!(json.contains(r#""name":"recv""#));
        assert!(json.contains(r#""ph":"X""#));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        // Deterministic.
        let (_, trace2) = engine.run_traced(|ctx: &mut Ctx<u64>| {
            if ctx.is_root() {
                let _ = ctx.recv(1);
            } else {
                ctx.compute_par(10.0);
                ctx.send(0, 7);
            }
        });
        assert_eq!(json, chrome_trace(&trace2));
    }

    #[test]
    fn summary_and_bottleneck_lines_render() {
        let p = master_worker_profile();
        let s = p.summary();
        assert!(s.contains("makespan"));
        assert!(s.contains("bottleneck"));
        assert!(s.lines().count() >= 4 + 3); // header lines + 4 ranks
        assert!(p.bottleneck_line().contains("% of makespan"));
    }

    #[test]
    fn empty_run_profile_is_degenerate_but_exact() {
        let ledgers = vec![TimeLedger::new()];
        let trace = Trace::default();
        let platform = Platform::uniform("e", 1, 0.01, 64, 0.0);
        let p = RunProfile::from_run(&platform, &ledgers, &trace);
        assert_eq!(p.makespan, 0.0);
        assert!(p.identity_holds());
        assert!(p.path_bounded());
        assert_eq!(p.critical_path.bottleneck.owner, "none");
    }
}
