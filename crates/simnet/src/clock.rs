//! Per-rank virtual clocks and time ledgers.
//!
//! Each rank carries a [`TimeLedger`]: its current virtual time plus an
//! itemised account of where that time went. The categories follow the
//! paper's Table 6 decomposition:
//!
//! * **SEQ** — computation performed while the rest of the system is
//!   known to be idle (the root's sequential phases),
//! * **PAR** — computation performed inside a parallel phase,
//! * **COM** — time spent inside message transfers,
//! * **idle** — time spent blocked waiting for a message beyond its
//!   transfer duration (a late sender).

/// Whether a computation belongs to a sequential (root-only) or parallel
/// phase — the paper's SEQ/PAR distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Root-only computation; everyone else waits.
    Seq,
    /// Computation inside a parallel phase.
    Par,
}

/// A rank's virtual clock plus its time accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeLedger {
    /// Current virtual time in seconds.
    pub now: f64,
    /// Seconds of sequential-phase computation.
    pub compute_seq: f64,
    /// Seconds of parallel-phase computation.
    pub compute_par: f64,
    /// Seconds spent inside message transfers.
    pub comm: f64,
    /// Seconds blocked waiting beyond transfer time.
    pub idle: f64,
}

impl TimeLedger {
    /// A fresh ledger at time zero.
    pub fn new() -> Self {
        TimeLedger::default()
    }

    /// Advances the clock by `secs` of computation in `phase`.
    pub fn compute(&mut self, secs: f64, phase: Phase) {
        debug_assert!(secs >= 0.0);
        self.now += secs;
        match phase {
            Phase::Seq => self.compute_seq += secs,
            Phase::Par => self.compute_par += secs,
        }
    }

    /// Accounts for receiving a message that arrives at `arrival` after a
    /// transfer lasting `transfer_secs`. Time from `now` to `arrival`
    /// splits into idle (waiting for the sender) and communication (the
    /// transfer overlapping our wait); if the message already arrived in
    /// the past, only bookkeeping happens.
    pub fn receive(&mut self, arrival: f64, transfer_secs: f64) {
        debug_assert!(transfer_secs >= 0.0);
        if arrival > self.now {
            let wait = arrival - self.now;
            let comm_part = transfer_secs.min(wait);
            self.comm += comm_part;
            self.idle += wait - comm_part;
            self.now = arrival;
        }
        // Message from the past: it was already here; no time passes.
    }

    /// Accounts for the sender-side cost of injecting a message
    /// (per-message software latency; the transfer itself is DMA-style
    /// and does not block the sender).
    pub fn send_overhead(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0);
        self.now += secs;
        self.comm += secs;
    }

    /// Busy time: everything except idling. This is the processor "run
    /// time" `Rᵢ` used by the paper's imbalance metric `D = R_max/R_min`.
    pub fn busy(&self) -> f64 {
        self.compute_seq + self.compute_par + self.comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_advances_clock_and_categories() {
        let mut t = TimeLedger::new();
        t.compute(2.0, Phase::Par);
        t.compute(1.0, Phase::Seq);
        assert_eq!(t.now, 3.0);
        assert_eq!(t.compute_par, 2.0);
        assert_eq!(t.compute_seq, 1.0);
        assert_eq!(t.busy(), 3.0);
    }

    #[test]
    fn receive_future_message_waits() {
        let mut t = TimeLedger::new();
        t.compute(1.0, Phase::Par);
        // Message arrives at t=5 after a 1.5 s transfer: 2.5 s idle
        // (sender still computing) + 1.5 s transfer.
        t.receive(5.0, 1.5);
        assert_eq!(t.now, 5.0);
        assert!((t.comm - 1.5).abs() < 1e-12);
        assert!((t.idle - 2.5).abs() < 1e-12);
    }

    #[test]
    fn receive_past_message_is_free() {
        let mut t = TimeLedger::new();
        t.compute(10.0, Phase::Par);
        t.receive(5.0, 1.0);
        assert_eq!(t.now, 10.0);
        assert_eq!(t.comm, 0.0);
        assert_eq!(t.idle, 0.0);
    }

    #[test]
    fn receive_transfer_longer_than_wait() {
        // Arrival barely after now: only the waited part counts as comm.
        let mut t = TimeLedger::new();
        t.compute(4.0, Phase::Par);
        t.receive(4.5, 2.0);
        assert!((t.comm - 0.5).abs() < 1e-12);
        assert_eq!(t.idle, 0.0);
        assert_eq!(t.now, 4.5);
    }

    #[test]
    fn send_overhead_counts_as_comm() {
        let mut t = TimeLedger::new();
        t.send_overhead(0.001);
        assert_eq!(t.now, 0.001);
        assert_eq!(t.comm, 0.001);
        assert_eq!(t.busy(), 0.001);
    }
}
