//! Run reports: the paper's performance metrics.
//!
//! * Total execution time (Table 5 / Table 8),
//! * COM/SEQ/PAR decomposition on the root timeline (Table 6),
//! * load imbalance `D = R_max/R_min` over processor run times, with and
//!   without the root (Table 7),
//! * speedup helpers (Figure 2),
//! * structured rank failures (`None` results + [`RankFailure`] records)
//!   when a run executes under a fault plan or a rank panics.

use crate::accel::OffloadStats;
use crate::clock::TimeLedger;
use crate::coll::CollectiveChoice;
use crate::faults::RankFailure;

/// Per-rank hardware summary recorded in [`RunReport::ranks`]: the
/// processor architecture string (promoted from "documentation only")
/// and the attached accelerator, if any. Derived from the platform
/// alone, so it is deterministic across reruns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankSummary {
    /// Processor name (e.g. `"p3"`).
    pub name: String,
    /// Architecture label from [`crate::platform::ProcessorSpec::arch`].
    pub arch: &'static str,
    /// Attached accelerator label (`"GPU"` / `"FPGA"`), `None` for a
    /// plain CPU host.
    pub device: Option<&'static str>,
}

/// Host-side copy telemetry for one run, summed over all ranks.
///
/// The counters are **deterministic**: they count the clone sites the
/// collective schedules execute (a function of the platform, rank count
/// and payload types only), charging each site the payload's
/// [`crate::Wire::deep_copy_bits`]. They never observe `Arc` refcounts
/// or decoder unwrap outcomes, which can differ between hosts. The
/// counters describe host behaviour, not the simulation, so they are
/// excluded from [`RunReport`]'s `PartialEq` bit-identity contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CopyStats {
    /// Bytes actually deep-copied by collective fan-out clones (heap
    /// payload only; an `Arc`-backed payload contributes 0 per clone).
    pub bytes_deep_copied: u64,
    /// Number of fan-out clones that allocated (deep-copied > 0 bytes).
    pub allocs_on_hot_path: u64,
    /// Bytes the pre-zero-copy implementation would have deep-copied at
    /// the same sites: one full payload clone per fan-out send. The
    /// `bytes_deep_copied / bytes_owned_baseline` ratio is the measured
    /// zero-copy saving.
    pub bytes_owned_baseline: u64,
}

impl CopyStats {
    /// Accumulates another rank's counters into this one.
    pub fn merge(&mut self, other: CopyStats) {
        self.bytes_deep_copied += other.bytes_deep_copied;
        self.allocs_on_hot_path += other.allocs_on_hot_path;
        self.bytes_owned_baseline += other.bytes_owned_baseline;
    }
}

/// One membership-view epoch bump recorded by a run's coordinator (see
/// [`crate::coll::Membership`]): the coordinator observed a new rank
/// failure and moved its view to `epoch`.
///
/// Deterministic — failures are virtual-time events and the observer's
/// protocol is fixed — so the transition log participates in the
/// report's bit-identity comparisons like [`CollectiveChoice`]s do.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochTransition {
    /// The epoch the view moved *to* (first bump is epoch 1).
    pub epoch: u64,
    /// Virtual time at which the coordinator observed the failure.
    pub at: f64,
    /// The rank whose failure triggered this bump.
    pub failed: usize,
    /// Survivor count after the bump.
    pub survivors: usize,
}

/// The outcome of one [`crate::Engine::run`].
///
/// `PartialEq` compares every *simulation* field — including each rank's
/// full time ledger — which is how the fault-injection tests assert that
/// two runs under identical fault plans are *bit-identical*. The
/// [`RunReport::copies`] host telemetry is deliberately excluded: a
/// shared-payload run must compare equal to an owned-payload run that
/// produced the same simulation. [`RunReport::offloads`] *is* compared —
/// offload decisions are simulation state, so two runs that scheduled
/// kernels differently must not compare equal.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// Name of the platform the run executed on.
    pub platform_name: String,
    /// Per-rank time ledgers.
    pub ledgers: Vec<TimeLedger>,
    /// Per-rank program results; `None` for ranks that failed.
    pub results: Vec<Option<R>>,
    /// Structured failures, in rank order (empty on a healthy run).
    pub failures: Vec<RankFailure>,
    /// Total virtual execution time: the latest rank's final clock.
    pub total_time: f64,
    /// Collective algorithm choices made during the run (rank 0's log,
    /// in call order; see [`crate::coll`]). Deterministic, so it
    /// participates in the report's bit-identity comparisons.
    pub collectives: Vec<CollectiveChoice>,
    /// Membership epoch transitions observed by the run's coordinator
    /// (rank 0's log, in observation order; empty unless the program
    /// drives a [`crate::coll::Membership`] view through
    /// [`crate::Ctx::mark_epoch`]). Deterministic, so it participates in
    /// bit-identity comparisons.
    pub epochs: Vec<EpochTransition>,
    /// Copy telemetry summed over all ranks (host observability only;
    /// not part of the `PartialEq` identity contract).
    pub copies: CopyStats,
    /// Per-rank offload telemetry (one entry per rank, crashed ranks
    /// included up to their crash instant). Unlike [`RunReport::copies`]
    /// these counters are *simulation state* — a function of the
    /// platform model and the offload policy only — so they participate
    /// in the bit-identity `PartialEq` contract.
    pub offloads: Vec<OffloadStats>,
    /// Per-rank hardware summaries (arch + attached device), derived
    /// from the platform. Empty for reports assembled outside the
    /// engine (e.g. directly via [`RunReport::new`]).
    pub ranks: Vec<RankSummary>,
    /// Post-run profile: per-rank phase breakdowns and the critical
    /// path (see [`crate::prof`]). `Some` for profiled runs
    /// ([`crate::Engine::with_profiling`] / `run_traced`), `None`
    /// otherwise. The profile is a pure function of the trace and the
    /// ledgers, so it is deterministic and **participates in the
    /// `PartialEq` bit-identity contract** — two profiled runs must
    /// agree on the profile, and a profiled run never compares equal to
    /// an unprofiled one (clear the field to compare across the two).
    pub profile: Option<crate::prof::RunProfile>,
}

impl<R: PartialEq> PartialEq for RunReport<R> {
    fn eq(&self, other: &Self) -> bool {
        self.platform_name == other.platform_name
            && self.ledgers == other.ledgers
            && self.results == other.results
            && self.failures == other.failures
            && self.total_time == other.total_time
            && self.collectives == other.collectives
            && self.epochs == other.epochs
            && self.offloads == other.offloads
            && self.profile == other.profile
    }
}

impl<R> RunReport<R> {
    /// Assembles a report from per-rank ledgers and results of a healthy
    /// (failure-free) run.
    pub fn new(platform_name: String, ledgers: Vec<TimeLedger>, results: Vec<R>) -> Self {
        Self::with_failures(
            platform_name,
            ledgers,
            results.into_iter().map(Some).collect(),
            Vec::new(),
        )
    }

    /// Assembles a report that may include failed ranks.
    pub fn with_failures(
        platform_name: String,
        ledgers: Vec<TimeLedger>,
        results: Vec<Option<R>>,
        failures: Vec<RankFailure>,
    ) -> Self {
        let total_time = ledgers.iter().map(|l| l.now).fold(0.0, f64::max);
        RunReport {
            platform_name,
            ledgers,
            results,
            failures,
            total_time,
            collectives: Vec::new(),
            epochs: Vec::new(),
            copies: CopyStats::default(),
            offloads: Vec::new(),
            ranks: Vec::new(),
            profile: None,
        }
    }

    /// `true` when every rank completed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// The failure record of `rank`, if it failed.
    pub fn failure_of(&self, rank: usize) -> Option<&RankFailure> {
        self.failures.iter().find(|f| f.rank == rank)
    }

    /// The recorded collective choices for one operation, in call order
    /// — e.g. every `Allreduce` decision of a winner-selection loop.
    pub fn choices_of(&self, op: crate::coll::CollOp) -> impl Iterator<Item = &CollectiveChoice> {
        self.collectives.iter().filter(move |c| c.op == op)
    }

    /// The result of `rank`.
    ///
    /// # Panics
    /// Panics (with the failure record) if the rank did not complete —
    /// the convenient accessor for tests and healthy-run call sites.
    pub fn result(&self, rank: usize) -> &R {
        match &self.results[rank] {
            Some(r) => r,
            None => panic!(
                "rank {rank} produced no result: {:?}",
                self.failure_of(rank)
            ),
        }
    }

    /// The paper's Table 6 decomposition, computed on the root timeline:
    /// `SEQ` = root sequential compute, `COM` = root communication time,
    /// `PAR` = everything else (parallel compute **including worker idle
    /// time**, as the paper specifies).
    pub fn decomposition(&self) -> Decomposition {
        let root = &self.ledgers[0];
        let seq = root.compute_seq;
        let com = root.comm;
        let par = (self.total_time - seq - com).max(0.0);
        Decomposition {
            com,
            seq,
            par,
            total: self.total_time,
        }
    }

    /// The paper's Table 7 imbalance metrics over processor run (busy)
    /// times: `D_all` over all processors, `D_minus` excluding the root.
    pub fn imbalance(&self) -> Imbalance {
        Imbalance {
            d_all: imbalance_of(self.ledgers.iter().map(|l| l.busy())),
            d_minus: imbalance_of(self.ledgers.iter().skip(1).map(|l| l.busy())),
        }
    }
}

/// COM/SEQ/PAR split of a run (Table 6 semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decomposition {
    /// Communication time on the root timeline.
    pub com: f64,
    /// Root-only sequential computation.
    pub seq: f64,
    /// Parallel-phase time, worker idling included.
    pub par: f64,
    /// Total execution time (`com + seq + par`).
    pub total: f64,
}

/// Load-imbalance ratios (Table 7 semantics). Perfect balance is `1.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imbalance {
    /// `R_max / R_min` over all processors.
    pub d_all: f64,
    /// `R_max / R_min` excluding the root.
    pub d_minus: f64,
}

fn imbalance_of(times: impl Iterator<Item = f64>) -> f64 {
    let mut max = f64::NEG_INFINITY;
    let mut min = f64::INFINITY;
    let mut any = false;
    for t in times {
        any = true;
        max = max.max(t);
        min = min.min(t);
    }
    if !any || min <= 0.0 {
        return 1.0;
    }
    max / min
}

/// Speedup of a multi-processor time over the single-processor baseline
/// (Figure 2's y-axis). Returns 0 for non-positive times.
pub fn speedup(single_proc_time: f64, multi_proc_time: f64) -> f64 {
    if single_proc_time <= 0.0 || multi_proc_time <= 0.0 {
        return 0.0;
    }
    single_proc_time / multi_proc_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Phase;
    use crate::faults::FailureCause;

    fn ledger(seq: f64, par: f64, comm: f64, idle: f64) -> TimeLedger {
        let mut l = TimeLedger::new();
        l.compute(seq, Phase::Seq);
        l.compute(par, Phase::Par);
        l.comm = comm;
        l.idle = idle;
        l.now = seq + par + comm + idle;
        l
    }

    #[test]
    fn decomposition_sums_to_total() {
        let report = RunReport::new(
            "t".into(),
            vec![ledger(2.0, 5.0, 1.0, 0.5), ledger(0.0, 7.0, 0.5, 1.0)],
            vec![(), ()],
        );
        let d = report.decomposition();
        assert!((d.total - report.total_time).abs() < 1e-12);
        assert!((d.com - 1.0).abs() < 1e-12);
        assert!((d.seq - 2.0).abs() < 1e-12);
        assert!((d.com + d.seq + d.par - d.total).abs() < 1e-12);
    }

    #[test]
    fn total_time_is_max_rank_clock() {
        let report = RunReport::new(
            "t".into(),
            vec![ledger(0.0, 1.0, 0.0, 0.0), ledger(0.0, 9.0, 0.0, 0.0)],
            vec![(), ()],
        );
        assert!((report.total_time - 9.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_perfect_when_equal() {
        let report = RunReport::new(
            "t".into(),
            vec![
                ledger(0.0, 4.0, 0.0, 0.0),
                ledger(0.0, 4.0, 0.0, 0.0),
                ledger(0.0, 4.0, 0.0, 0.0),
            ],
            vec![(), (), ()],
        );
        let i = report.imbalance();
        assert!((i.d_all - 1.0).abs() < 1e-12);
        assert!((i.d_minus - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew_and_root_exclusion() {
        let report = RunReport::new(
            "t".into(),
            vec![
                ledger(8.0, 0.0, 0.0, 0.0), // busy root
                ledger(0.0, 2.0, 0.0, 0.0),
                ledger(0.0, 4.0, 0.0, 0.0),
            ],
            vec![(), (), ()],
        );
        let i = report.imbalance();
        assert!((i.d_all - 4.0).abs() < 1e-12); // 8 / 2
        assert!((i.d_minus - 2.0).abs() < 1e-12); // 4 / 2
    }

    #[test]
    fn idle_time_lands_in_par_not_com() {
        // Root waits 10 s idle for workers: decomposition must charge PAR.
        let report = RunReport::new(
            "t".into(),
            vec![ledger(1.0, 2.0, 0.5, 10.0), ledger(0.0, 13.0, 0.5, 0.0)],
            vec![(), ()],
        );
        let d = report.decomposition();
        assert!((d.seq - 1.0).abs() < 1e-12);
        assert!((d.com - 0.5).abs() < 1e-12);
        assert!(d.par > 11.9, "idle must be inside PAR: {}", d.par);
    }

    #[test]
    fn speedup_helper() {
        assert!((speedup(100.0, 25.0) - 4.0).abs() < 1e-12);
        assert_eq!(speedup(0.0, 10.0), 0.0);
        assert_eq!(speedup(10.0, 0.0), 0.0);
    }

    #[test]
    fn healthy_report_accessors() {
        let report = RunReport::new(
            "t".into(),
            vec![ledger(0.0, 1.0, 0.0, 0.0), ledger(0.0, 2.0, 0.0, 0.0)],
            vec![10u32, 20u32],
        );
        assert!(report.ok());
        assert_eq!(*report.result(1), 20);
        assert_eq!(report.failure_of(0), None);
    }

    #[test]
    fn failed_report_accessors() {
        let failure = RankFailure {
            rank: 1,
            at: 2.0,
            cause: FailureCause::Crash,
        };
        let report = RunReport::with_failures(
            "t".into(),
            vec![ledger(0.0, 1.0, 0.0, 0.0), ledger(0.0, 2.0, 0.0, 0.0)],
            vec![Some(10u32), None],
            vec![failure.clone()],
        );
        assert!(!report.ok());
        assert_eq!(report.failure_of(1), Some(&failure));
        assert_eq!(*report.result(0), 10);
    }

    #[test]
    fn choices_of_filters_by_operation() {
        use crate::coll::{CollAlgorithm, CollOp};
        let mut report = RunReport::new("t".into(), vec![ledger(0.0, 1.0, 0.0, 0.0)], vec![()]);
        for op in [CollOp::Broadcast, CollOp::Allreduce, CollOp::Allreduce] {
            report.collectives.push(CollectiveChoice {
                op,
                requested: CollAlgorithm::Auto,
                algorithm: CollAlgorithm::Linear,
                bits: 64,
                predicted_secs: 0.0,
            });
        }
        assert_eq!(report.choices_of(CollOp::Allreduce).count(), 2);
        assert_eq!(report.choices_of(CollOp::Gather).count(), 0);
    }

    #[test]
    #[should_panic(expected = "produced no result")]
    fn result_accessor_panics_on_failed_rank() {
        let report = RunReport::with_failures(
            "t".into(),
            vec![ledger(0.0, 1.0, 0.0, 0.0)],
            vec![None::<u32>],
            vec![RankFailure {
                rank: 0,
                at: 1.0,
                cause: FailureCause::Crash,
            }],
        );
        let _ = report.result(0);
    }
}
