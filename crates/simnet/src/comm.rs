//! Root-mediated collectives over [`Ctx`].
//!
//! The paper's algorithms use exactly four collective patterns — scatter
//! the partitions, broadcast the growing endmember matrix `U`, gather
//! per-worker candidates, and barrier-style synchronisation. All are
//! root-mediated (a star topology), which is also what keeps the virtual
//! timestamps deterministic (see [`crate::contention`]).

use crate::engine::{Ctx, Wire};

/// How the initial data scatter is charged. See DESIGN.md: the paper's
/// reported COM magnitudes imply bulk data staging is *not* part of the
/// measured communication, so experiments default to [`ScatterMode::Free`];
/// the `ablation_scatter` bench flips this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScatterMode {
    /// Partitions are assumed pre-staged: only per-message latency.
    #[default]
    Free,
    /// Partitions pay full transfer cost on the link matrix.
    Charged,
}

/// Broadcast from `root`: the root passes `Some(msg)`, every other rank
/// passes `None`; all ranks return the message.
///
/// # Panics
/// Panics if the root passes `None` or a non-root passes `Some`.
pub fn broadcast<M: Wire + Clone>(ctx: &mut Ctx<M>, root: usize, msg: Option<M>) -> M {
    if ctx.rank() == root {
        let msg = msg.expect("broadcast: root must supply the message");
        for dst in 0..ctx.num_ranks() {
            if dst != root {
                ctx.send(dst, msg.clone());
            }
        }
        msg
    } else {
        assert!(msg.is_none(), "broadcast: non-root must pass None");
        ctx.recv(root)
    }
}

/// Gather to `root`: every rank contributes `msg`; the root returns
/// `Some(vec)` ordered by rank (its own contribution included), everyone
/// else returns `None`.
#[allow(clippy::needless_range_loop)] // rank order is the protocol, not an iteration detail
pub fn gather<M: Wire>(ctx: &mut Ctx<M>, root: usize, msg: M) -> Option<Vec<M>> {
    if ctx.rank() == root {
        let mut out: Vec<Option<M>> = (0..ctx.num_ranks()).map(|_| None).collect();
        out[root] = Some(msg);
        for src in 0..ctx.num_ranks() {
            if src != root {
                out[src] = Some(ctx.recv(src));
            }
        }
        Some(out.into_iter().map(|m| m.expect("gather: hole")).collect())
    } else {
        ctx.send(root, msg);
        None
    }
}

/// Scatter from `root`: the root supplies one message per rank (its own
/// element is returned to it directly); every rank returns its element.
/// `mode` selects whether transfers are charged (see [`ScatterMode`]).
///
/// # Panics
/// Panics if the root's vector length differs from the rank count, if
/// the root passes `None`, or if a non-root passes `Some`.
pub fn scatter<M: Wire>(
    ctx: &mut Ctx<M>,
    root: usize,
    items: Option<Vec<M>>,
    mode: ScatterMode,
) -> M {
    if ctx.rank() == root {
        let items = items.expect("scatter: root must supply items");
        assert_eq!(
            items.len(),
            ctx.num_ranks(),
            "scatter: need one item per rank"
        );
        let mut own = None;
        for (dst, item) in items.into_iter().enumerate() {
            if dst == root {
                own = Some(item);
            } else {
                match mode {
                    ScatterMode::Free => ctx.send_free(dst, item),
                    ScatterMode::Charged => ctx.send(dst, item),
                }
            }
        }
        own.expect("scatter: missing root element")
    } else {
        assert!(items.is_none(), "scatter: non-root must pass None");
        ctx.recv(root)
    }
}

/// Barrier: all ranks synchronise their virtual clocks to the latest
/// participant (gather + broadcast of a token built by `make_token`).
pub fn barrier<M: Wire + Clone>(ctx: &mut Ctx<M>, root: usize, make_token: impl Fn() -> M) {
    let _ = gather(ctx, root, make_token());
    let _ = broadcast(
        ctx,
        root,
        if ctx.rank() == root {
            Some(make_token())
        } else {
            None
        },
    );
}

/// Reduce to root with a binary fold: the root returns `Some(fold of all
/// contributions in rank order)`, others `None`.
pub fn reduce<M: Wire>(
    ctx: &mut Ctx<M>,
    root: usize,
    msg: M,
    fold: impl Fn(M, M) -> M,
) -> Option<M> {
    gather(ctx, root, msg).map(|items| {
        let mut it = items.into_iter();
        let first = it.next().expect("reduce: empty gather");
        it.fold(first, fold)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, WireVec};
    use crate::platform::Platform;

    fn engine(p: usize) -> Engine {
        Engine::new(Platform::uniform("t", p, 0.01, 1024, 10.0))
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let report = engine(4).run(|ctx| {
            let msg = broadcast(
                ctx,
                0,
                if ctx.is_root() {
                    Some(WireVec(vec![42u32]))
                } else {
                    None
                },
            );
            msg.0[0]
        });
        assert_eq!(report.results, vec![Some(42); 4]);
    }

    #[test]
    fn gather_preserves_rank_order() {
        let report = engine(5).run(|ctx| gather(ctx, 0, ctx.rank() as u64));
        assert_eq!(*report.result(0), Some(vec![0, 1, 2, 3, 4]));
        for r in 1..5 {
            assert_eq!(*report.result(r), None);
        }
    }

    #[test]
    fn scatter_distributes_one_item_each() {
        let report = engine(3).run(|ctx| {
            let items = if ctx.is_root() {
                Some(vec![10u64, 20, 30])
            } else {
                None
            };
            scatter(ctx, 0, items, ScatterMode::Charged)
        });
        assert_eq!(report.results, vec![Some(10), Some(20), Some(30)]);
    }

    #[test]
    fn scatter_free_cheaper_than_charged() {
        let payloads = || vec![WireVec(vec![0u8; 2_000_000]); 3];
        let t = |mode: ScatterMode| {
            engine(3)
                .run(move |ctx| {
                    let items = if ctx.is_root() {
                        Some(payloads())
                    } else {
                        None
                    };
                    let _ = scatter(ctx, 0, items, mode);
                    ctx.elapsed()
                })
                .total_time
        };
        assert!(t(ScatterMode::Free) < t(ScatterMode::Charged));
    }

    #[test]
    fn barrier_aligns_clocks() {
        let report = engine(3).run(|ctx| {
            // Rank 2 is 3 s behind everyone before the barrier.
            if ctx.rank() == 2 {
                ctx.compute_par(300.0);
            }
            barrier(ctx, 0, || 0u8);
            ctx.elapsed()
        });
        let times: Vec<f64> = (0..3).map(|r| *report.result(r)).collect();
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        for &t in &times {
            assert!(t >= 3.0, "clock {t} not advanced past the slow rank");
            assert!(max - t < 0.1, "clocks should be near-aligned");
        }
    }

    #[test]
    fn reduce_folds_in_rank_order() {
        let report = engine(4).run(|ctx| reduce(ctx, 0, ctx.rank() as u64 + 1, |a, b| a * 10 + b));
        assert_eq!(*report.result(0), Some(((10 + 2) * 10 + 3) * 10 + 4));
    }

    #[test]
    fn broadcast_timing_charges_links() {
        // 4 ranks, 10 ms/Mbit links, 1 Mbit message => each non-root rank
        // pays at least one 10 ms transfer.
        let report = engine(4).run(|ctx| {
            let msg = broadcast(
                ctx,
                0,
                if ctx.is_root() {
                    Some(WireVec(vec![0u8; 125_000]))
                } else {
                    None
                },
            );
            let _ = msg;
            ctx.elapsed()
        });
        for r in 1..4 {
            assert!(*report.result(r) >= 0.01, "rank {r}: {}", report.result(r));
        }
    }
}
