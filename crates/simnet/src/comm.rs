//! Root-mediated collectives over [`Ctx`] — the linear baseline.
//!
//! The paper's algorithms use exactly four collective patterns — scatter
//! the partitions, broadcast the growing endmember matrix `U`, gather
//! per-worker candidates, and barrier-style synchronisation. The
//! functions here are thin wrappers over [`crate::coll`] pinned to the
//! [`crate::coll::CollAlgorithm::Linear`] schedule (a star rooted at
//! `root`), which is also what keeps the virtual timestamps
//! deterministic (see [`crate::contention`]). Pick other schedules — or
//! cost-model-driven selection — by calling [`crate::coll`] directly
//! with a [`CollectiveConfig`].
//!
//! Misuse (a root without a payload, a scatter with the wrong item
//! count) returns a structured [`CollError`] instead of panicking, and
//! a crashed rank's missing gather contribution is an explicit
//! [`GatherEntry::Lost`] hole, not an abort.

use crate::coll::{self, CollectiveConfig};
use crate::engine::{Ctx, Wire};

pub use crate::coll::{CollError, GatherEntry, ScatterMode};

/// Broadcast from `root`: the root passes `Some(msg)`, every other rank
/// passes `None`; all ranks return the message.
///
/// Returns [`CollError`] if the root passes `None` or a non-root passes
/// `Some`.
pub fn broadcast<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    root: usize,
    msg: Option<M>,
) -> Result<M, CollError> {
    let bits = msg.as_ref().map_or(0, |m| m.size_bits());
    coll::broadcast(ctx, &CollectiveConfig::linear(), root, msg, bits)
}

/// Gather to `root`: every rank contributes `msg`; the root returns
/// `Some(entries)` ordered by rank (its own contribution included),
/// everyone else returns `None`. Contributions of failed ranks appear
/// as [`GatherEntry::Lost`] records.
pub fn gather<M: Wire>(ctx: &mut Ctx<M>, root: usize, msg: M) -> Option<Vec<GatherEntry<M>>> {
    let bits = msg.size_bits();
    coll::gather(ctx, &CollectiveConfig::linear(), root, msg, bits)
}

/// Scatter from `root`: the root supplies one message per rank (its own
/// element is returned to it directly); every rank returns its element.
/// `mode` selects whether transfers are charged (see [`ScatterMode`]).
///
/// Returns [`CollError`] if the root's vector length differs from the
/// rank count, the root passes `None`, or a non-root passes `Some`.
pub fn scatter<M: Wire>(
    ctx: &mut Ctx<M>,
    root: usize,
    items: Option<Vec<M>>,
    mode: ScatterMode,
) -> Result<M, CollError> {
    coll::scatter(ctx, root, items, mode)
}

/// Barrier: all ranks synchronise their virtual clocks to the latest
/// participant (gather + broadcast of a token built by `make_token`).
pub fn barrier<M: Wire + Clone>(ctx: &mut Ctx<M>, root: usize, make_token: impl Fn() -> M) {
    coll::barrier(ctx, &CollectiveConfig::linear(), root, make_token);
}

/// Reduce to root with a binary fold: the root returns `Some(fold of
/// the surviving contributions in rank order)`, others `None`.
pub fn reduce<M: Wire>(
    ctx: &mut Ctx<M>,
    root: usize,
    msg: M,
    fold: impl Fn(M, M) -> M,
) -> Option<M> {
    let bits = msg.size_bits();
    coll::reduce(ctx, &CollectiveConfig::linear(), root, msg, fold, bits)
}

/// Allreduce with a binary fold: every rank returns the fold of the
/// surviving contributions in rank order (a linear gather plus a linear
/// broadcast of the result, fused onto one star schedule).
///
/// Like the other wrappers, the `bits_hint` forwarded to [`crate::coll`]
/// is the payload's own size — zero for empty payloads, which `Auto`
/// configurations treat as "no size information" and resolve to
/// `Linear` (moot here, where the schedule is pinned linear anyway).
pub fn allreduce<M: Wire + Clone>(
    ctx: &mut Ctx<M>,
    root: usize,
    msg: M,
    fold: impl Fn(M, M) -> M,
) -> M {
    let bits = msg.size_bits();
    coll::allreduce(ctx, &CollectiveConfig::linear(), root, msg, fold, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, WireVec};
    use crate::platform::Platform;

    fn engine(p: usize) -> Engine {
        Engine::new(Platform::uniform("t", p, 0.01, 1024, 10.0))
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let report = engine(4).run(|ctx| {
            let msg = broadcast(
                ctx,
                0,
                if ctx.is_root() {
                    Some(WireVec(vec![42u32]))
                } else {
                    None
                },
            )
            .expect("valid broadcast");
            msg.0[0]
        });
        assert_eq!(report.results, vec![Some(42); 4]);
    }

    #[test]
    fn gather_preserves_rank_order() {
        let report = engine(5).run(|ctx| {
            gather(ctx, 0, ctx.rank() as u64).map(|entries| {
                entries
                    .into_iter()
                    .filter_map(GatherEntry::into_msg)
                    .collect()
            })
        });
        assert_eq!(*report.result(0), Some(vec![0, 1, 2, 3, 4]));
        for r in 1..5 {
            assert_eq!(*report.result(r), None);
        }
    }

    #[test]
    fn scatter_distributes_one_item_each() {
        let report = engine(3).run(|ctx| {
            let items = if ctx.is_root() {
                Some(vec![10u64, 20, 30])
            } else {
                None
            };
            scatter(ctx, 0, items, ScatterMode::Charged).expect("valid scatter")
        });
        assert_eq!(report.results, vec![Some(10), Some(20), Some(30)]);
    }

    #[test]
    fn scatter_free_cheaper_than_charged() {
        let payloads = || vec![WireVec(vec![0u8; 2_000_000]); 3];
        let t = |mode: ScatterMode| {
            engine(3)
                .run(move |ctx| {
                    let items = if ctx.is_root() {
                        Some(payloads())
                    } else {
                        None
                    };
                    let _ = scatter(ctx, 0, items, mode).expect("valid scatter");
                    ctx.elapsed()
                })
                .total_time
        };
        assert!(t(ScatterMode::Free) < t(ScatterMode::Charged));
    }

    #[test]
    fn barrier_aligns_clocks() {
        let report = engine(3).run(|ctx| {
            // Rank 2 is 3 s behind everyone before the barrier.
            if ctx.rank() == 2 {
                ctx.compute_par(300.0);
            }
            barrier(ctx, 0, || 0u8);
            ctx.elapsed()
        });
        let times: Vec<f64> = (0..3).map(|r| *report.result(r)).collect();
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        for &t in &times {
            assert!(t >= 3.0, "clock {t} not advanced past the slow rank");
            assert!(max - t < 0.1, "clocks should be near-aligned");
        }
    }

    #[test]
    fn reduce_folds_in_rank_order() {
        let report = engine(4).run(|ctx| reduce(ctx, 0, ctx.rank() as u64 + 1, |a, b| a * 10 + b));
        assert_eq!(*report.result(0), Some(((10 + 2) * 10 + 3) * 10 + 4));
    }

    #[test]
    fn allreduce_delivers_rank_order_fold_everywhere() {
        let report =
            engine(4).run(|ctx| allreduce(ctx, 0, ctx.rank() as u64 + 1, |a, b| a * 10 + b));
        for r in 0..4 {
            assert_eq!(*report.result(r), ((10 + 2) * 10 + 3) * 10 + 4, "rank {r}");
        }
    }

    #[test]
    fn broadcast_timing_charges_links() {
        // 4 ranks, 10 ms/Mbit links, 1 Mbit message => each non-root rank
        // pays at least one 10 ms transfer.
        let report = engine(4).run(|ctx| {
            let msg = broadcast(
                ctx,
                0,
                if ctx.is_root() {
                    Some(WireVec(vec![0u8; 125_000]))
                } else {
                    None
                },
            )
            .expect("valid broadcast");
            let _ = msg;
            ctx.elapsed()
        });
        for r in 1..4 {
            assert!(*report.result(r) >= 0.01, "rank {r}: {}", report.result(r));
        }
    }

    #[test]
    fn misuse_returns_structured_errors() {
        use crate::coll::CollOp;
        let report = engine(2).run(|ctx| {
            if ctx.is_root() {
                broadcast::<u64>(ctx, 0, None).err()
            } else {
                broadcast(ctx, 0, Some(1u64)).err()
            }
        });
        assert_eq!(
            *report.result(0),
            Some(CollError::RootMissingPayload {
                op: CollOp::Broadcast
            })
        );
        assert_eq!(
            *report.result(1),
            Some(CollError::NonRootPayload {
                op: CollOp::Broadcast
            })
        );
    }
}
