//! The accelerator device model — the paper's "specialized hardware"
//! future perspective.
//!
//! A [`DeviceSpec`] optionally attached to a
//! [`crate::platform::ProcessorSpec`] turns a node's effective speed
//! into a *host + device pair*: the pixel-parallel kernels may run on
//! the device, paying an explicit launch latency and host↔device
//! transfer cost, while the cluster fabric (links, collectives, fault
//! plans) is entirely device-oblivious — payloads are always staged
//! through host memory.
//!
//! Device execution is **bit-identical** to host execution by
//! construction: the same kernels run in the same order on the host
//! threads; only the virtual-time accounting differs. An offloaded
//! kernel charges
//!
//! ```text
//! T_offload = launch_latency_s
//!           + bytes_h2d / (h2d_gb_per_s · 1e9)     (host → device)
//!           + mflops / throughput_mflops           (device compute)
//!           + bytes_d2h / (d2h_gb_per_s · 1e9)     (device → host)
//! ```
//!
//! through the engine's ordinary compute path, so fault-plan slowdowns
//! and crash truncation compose unchanged (see `Ctx::offload`).
//! [`cost::predict_offload`] evaluates the *same* closed form, which is
//! why prediction matches measured virtual time exactly on fault-free
//! runs — the same replay-equals-measured contract as
//! [`crate::coll::cost`].

/// The kind of accelerator attached to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A commodity graphics processor: high throughput, PCIe-class
    /// transfer bandwidth, tens-of-microseconds launch latency.
    Gpu,
    /// A reconfigurable FPGA board: moderate throughput, lower transfer
    /// bandwidth, near-zero launch latency — the paper's onboard
    /// real-time processing story.
    Fpga,
}

impl DeviceKind {
    /// Short display label (`"GPU"` / `"FPGA"`).
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::Gpu => "GPU",
            DeviceKind::Fpga => "FPGA",
        }
    }
}

/// An accelerator attached to one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// What kind of accelerator this is.
    pub kind: DeviceKind,
    /// Sustained kernel throughput in megaflops per second.
    pub throughput_mflops: f64,
    /// Device memory in MB; an offload whose staged bytes exceed it
    /// must run on the host instead.
    pub mem_mb: u64,
    /// Host→device transfer bandwidth in GB/s.
    pub h2d_gb_per_s: f64,
    /// Device→host transfer bandwidth in GB/s.
    pub d2h_gb_per_s: f64,
    /// Fixed per-launch latency in seconds (driver + kernel dispatch).
    pub launch_latency_s: f64,
}

impl DeviceSpec {
    /// A 2006-era commodity GPU on PCIe: ~20 GFLOP/s sustained on the
    /// streaming kernels, 512 MB of device memory, asymmetric
    /// host↔device bandwidth, 80 µs launch latency.
    pub fn commodity_gpu() -> Self {
        DeviceSpec {
            kind: DeviceKind::Gpu,
            throughput_mflops: 20_000.0,
            mem_mb: 512,
            h2d_gb_per_s: 1.5,
            d2h_gb_per_s: 1.0,
            launch_latency_s: 80.0e-6,
        }
    }

    /// An onboard FPGA accelerator: ~2 GFLOP/s, 256 MB, modest
    /// bandwidth, but near-zero (10 µs) dispatch latency — attractive
    /// for many small kernels.
    pub fn edge_fpga() -> Self {
        DeviceSpec {
            kind: DeviceKind::Fpga,
            throughput_mflops: 2_000.0,
            mem_mb: 256,
            h2d_gb_per_s: 0.4,
            d2h_gb_per_s: 0.4,
            launch_latency_s: 10.0e-6,
        }
    }

    /// Validates the spec (positive throughput, bandwidths and memory,
    /// non-negative latency).
    ///
    /// # Panics
    /// Panics on a non-physical spec; called by `Platform::new` for
    /// every attached device.
    pub fn validate(&self) {
        assert!(
            self.throughput_mflops > 0.0 && self.throughput_mflops.is_finite(),
            "device throughput must be positive and finite"
        );
        assert!(self.mem_mb > 0, "device memory must be positive");
        assert!(
            self.h2d_gb_per_s > 0.0 && self.d2h_gb_per_s > 0.0,
            "device transfer bandwidths must be positive"
        );
        assert!(
            self.launch_latency_s >= 0.0 && self.launch_latency_s.is_finite(),
            "launch latency must be non-negative and finite"
        );
    }

    /// `true` when a kernel staging `bytes_h2d` in and `bytes_d2h` out
    /// fits in device memory.
    #[inline]
    pub fn fits(&self, bytes_h2d: u64, bytes_d2h: u64) -> bool {
        bytes_h2d.saturating_add(bytes_d2h) <= self.mem_mb.saturating_mul(1_000_000)
    }

    /// Virtual-time cost of one offloaded kernel: launch + H2D +
    /// compute + D2H. This closed form is the single source of truth —
    /// the engine charges it and [`cost::predict_offload`] predicts it.
    #[inline]
    pub fn offload_secs(&self, mflops: f64, bytes_h2d: u64, bytes_d2h: u64) -> f64 {
        self.launch_latency_s
            + bytes_h2d as f64 / (self.h2d_gb_per_s * 1.0e9)
            + mflops / self.throughput_mflops
            + bytes_d2h as f64 / (self.d2h_gb_per_s * 1.0e9)
    }
}

/// Deterministic per-rank offload telemetry, recorded in
/// `RunReport::offloads`. Unlike `CopyStats` (host observability), these
/// counters are *simulation state* — a function of the platform model
/// and the offload policy only — and therefore participate in the
/// bit-identity contract (`RunReport::PartialEq` includes them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OffloadStats {
    /// Number of kernels launched on the device.
    pub launches: u64,
    /// Bytes staged host → device across all launches.
    pub bytes_h2d: u64,
    /// Bytes staged device → host across all launches.
    pub bytes_d2h: u64,
    /// Virtual milliseconds spent in offloaded execution (launch +
    /// transfers + device compute, fault dilation included).
    pub device_ms: f64,
    /// Virtual milliseconds spent computing offload-eligible chunks on
    /// the host (the road not taken, or `Never`/no-device ranks).
    pub host_ms: f64,
}

impl OffloadStats {
    /// `true` when this rank never touched a device and did no tracked
    /// host chunk work.
    pub fn is_empty(&self) -> bool {
        self.launches == 0 && self.host_ms == 0.0
    }
}

/// A standalone device simulator: charges launches against a
/// [`DeviceSpec`] and accumulates [`OffloadStats`], without an engine.
/// The engine's `Ctx::offload` performs the same arithmetic inline (plus
/// fault dilation); `DeviceSim` exists for analytic studies and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSim {
    spec: DeviceSpec,
    stats: OffloadStats,
}

impl DeviceSim {
    /// Wraps a validated spec with zeroed stats.
    pub fn new(spec: DeviceSpec) -> Self {
        spec.validate();
        DeviceSim {
            spec,
            stats: OffloadStats::default(),
        }
    }

    /// The wrapped device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Accumulated stats.
    pub fn stats(&self) -> &OffloadStats {
        &self.stats
    }

    /// Simulates one kernel launch: returns its virtual-time cost and
    /// records it in the stats.
    pub fn launch(&mut self, mflops: f64, bytes_h2d: u64, bytes_d2h: u64) -> f64 {
        let secs = self.spec.offload_secs(mflops, bytes_h2d, bytes_d2h);
        self.stats.launches += 1;
        self.stats.bytes_h2d += bytes_h2d;
        self.stats.bytes_d2h += bytes_d2h;
        self.stats.device_ms += secs * 1.0e3;
        secs
    }
}

/// Exact analytic offload costs, mirroring the [`crate::coll::cost`]
/// replay-equals-measured contract.
pub mod cost {
    use super::DeviceSpec;

    /// Predicts the virtual-time cost of offloading one kernel of
    /// `mflops` megaflops staging `bytes_h2d` in and `bytes_d2h` out.
    ///
    /// **Exactness.** This evaluates the same closed form
    /// ([`DeviceSpec::offload_secs`]) that `Ctx::offload` charges, in
    /// the same f64 arithmetic, so for fault-free runs the prediction
    /// equals the measured virtual time *exactly* — asserted by
    /// `tests/accel.rs`. Fault-plan slowdown windows dilate the charge
    /// at execution time and are deliberately not replayed here, same
    /// as the collective cost model.
    #[inline]
    pub fn predict_offload(spec: &DeviceSpec, mflops: f64, bytes_h2d: u64, bytes_d2h: u64) -> f64 {
        spec.offload_secs(mflops, bytes_h2d, bytes_d2h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_secs_components() {
        let gpu = DeviceSpec::commodity_gpu();
        // 1000 Mflop, 1.5 GB in, 1 GB out: 80 µs + 1 s + 0.05 s + 1 s.
        let t = gpu.offload_secs(1000.0, 1_500_000_000, 1_000_000_000);
        assert!((t - (80.0e-6 + 1.0 + 0.05 + 1.0)).abs() < 1e-12, "{t}");
        // Zero-size launch still pays the latency.
        assert_eq!(gpu.offload_secs(0.0, 0, 0), 80.0e-6);
    }

    #[test]
    fn predict_is_the_same_closed_form() {
        let fpga = DeviceSpec::edge_fpga();
        for (m, i, o) in [(1.0, 10u64, 10u64), (512.7, 1 << 20, 1 << 14)] {
            assert_eq!(
                cost::predict_offload(&fpga, m, i, o),
                fpga.offload_secs(m, i, o)
            );
        }
    }

    #[test]
    fn memory_bound() {
        let fpga = DeviceSpec::edge_fpga(); // 256 MB
        assert!(fpga.fits(200_000_000, 50_000_000));
        assert!(!fpga.fits(200_000_000, 60_000_001));
        assert!(!fpga.fits(u64::MAX, 1)); // saturating, no overflow
    }

    #[test]
    fn device_sim_accumulates() {
        let mut sim = DeviceSim::new(DeviceSpec::commodity_gpu());
        let t1 = sim.launch(100.0, 1_000_000, 2_000);
        let t2 = sim.launch(50.0, 500_000, 2_000);
        assert_eq!(sim.stats().launches, 2);
        assert_eq!(sim.stats().bytes_h2d, 1_500_000);
        assert_eq!(sim.stats().bytes_d2h, 4_000);
        assert!((sim.stats().device_ms - (t1 + t2) * 1.0e3).abs() < 1e-12);
        assert!(sim.stats().host_ms == 0.0);
        assert!(!sim.stats().is_empty());
        assert!(OffloadStats::default().is_empty());
    }

    #[test]
    fn kind_labels() {
        assert_eq!(DeviceKind::Gpu.label(), "GPU");
        assert_eq!(DeviceKind::Fpga.label(), "FPGA");
    }

    #[test]
    #[should_panic(expected = "throughput")]
    fn invalid_spec_rejected() {
        DeviceSim::new(DeviceSpec {
            throughput_mflops: 0.0,
            ..DeviceSpec::commodity_gpu()
        });
    }
}
